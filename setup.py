"""Setup shim for environments without wheel support (pip install -e . uses it)."""
from setuptools import setup

setup()
