#!/usr/bin/env python3
"""A guided tour of the Figure-3 pipeline on one small function.

Shows the RTL after each phase: the naive front-end output, the prologue
cleanups, code replication, the scalar optimization loop, register
allocation, and delay-slot filling — the full journey of the paper's §5.1.

Run:  python examples/optimizer_tour.py
"""

from repro.core import replicate_jumps
from repro.frontend import compile_c
from repro.opt import (
    OptimizationConfig,
    branch_chaining,
    combine,
    eliminate_dead_code,
    eliminate_dead_variables,
    fold_constants,
    legalize,
    local_cse,
    loop_invariant_code_motion,
    promote_locals,
    propagate_copies,
    reorder_blocks,
    strength_reduce,
    color_registers,
)
from repro.rtl import format_function
from repro.targets import fill_delay_slots, get_target

SOURCE = """
int data[32];

int main() {
    int i, sum, scale;
    scale = 3;
    sum = 0;
    for (i = 0; i < 32; i++)
        sum += data[i] * scale;
    return sum;
}
"""


def show(stage, func):
    print("=" * 72)
    print(f"--- {stage} ({func.insn_count()} RTLs, {func.jump_count()} jumps)")
    print("=" * 72)
    print(format_function(func))
    print()


def main() -> None:
    target = get_target("sparc")
    program = compile_c(SOURCE)
    func = program.functions["main"]
    show("front-end output (naive, per §3.1 layouts)", func)

    branch_chaining(func)
    eliminate_dead_code(func)
    reorder_blocks(func)
    eliminate_dead_code(func)
    show("after branch chaining / dead code / reordering", func)

    replicate_jumps(func)
    eliminate_dead_code(func)
    show("after code replication (JUMPS)", func)

    fold_constants(func)
    legalize(func, target)
    combine(func, target)
    promote_locals(func)
    legalize(func, target)
    combine(func, target)
    show("after instruction selection + register assignment", func)

    for _ in range(8):
        changed = False
        changed |= local_cse(func, target)
        changed |= propagate_copies(func)
        changed |= fold_constants(func)
        changed |= legalize(func, target)
        changed |= eliminate_dead_variables(func)
        changed |= loop_invariant_code_motion(func)
        changed |= strength_reduce(func)
        changed |= legalize(func, target)
        changed |= combine(func, target)
        changed |= branch_chaining(func)
        changed |= eliminate_dead_code(func)
        if not changed:
            break
    show("after the do-while optimization loop", func)

    color_registers(func, target)
    legalize(func, target)
    eliminate_dead_code(func)
    show("after register allocation by colouring", func)

    fill_delay_slots(func)
    show("after delay-slot filling (final SPARC code)", func)


if __name__ == "__main__":
    main()
