#!/usr/bin/env python3
"""A miniature Table 6: instruction-cache behaviour of one benchmark.

Replication grows the code (worse for tiny caches) but removes executed
instructions (better overall fetch cost once the program fits), which is
exactly the trade-off Table 6 of the paper quantifies.

Run:  python examples/cache_study.py [program]
"""

import sys

from repro.benchsuite import run_benchmark
from repro.cache import PAPER_CACHE_SIZES, CacheConfig, simulate_cache
from repro.report import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compact"
    print(f"program: {name} (SPARC, direct-mapped, 16-byte lines)")

    measurements = {
        config: run_benchmark(name, target="sparc", replication=config, trace=True)
        for config in ("none", "loops", "jumps")
    }
    rows = []
    for size in PAPER_CACHE_SIZES:
        row = [f"{size // 1024}Kb"]
        base = None
        for config in ("none", "loops", "jumps"):
            m = measurements[config]
            r = simulate_cache(m.trace, m.block_fetches, CacheConfig(size=size))
            if base is None:
                base = r.fetch_cost
                row.append(f"{r.miss_ratio * 100:.2f}% / {r.fetch_cost}")
            else:
                delta = (r.fetch_cost - base) / base * 100
                row.append(f"{r.miss_ratio * 100:.2f}% / {delta:+.2f}%")
        rows.append(row)

    print(format_table(
        ["cache", "SIMPLE (miss/cost)", "LOOPS (miss/Δcost)", "JUMPS (miss/Δcost)"],
        rows,
    ))
    simple = measurements["none"].code_bytes
    jumps = measurements["jumps"].code_bytes
    print(f"\ncode size: SIMPLE {simple} bytes -> JUMPS {jumps} bytes "
          f"({(jumps - simple) / simple * 100:+.1f}%)")


if __name__ == "__main__":
    main()
