#!/usr/bin/env python3
"""Table 2 of the paper: replicating the join of an if-then-else.

The then-part ends with an unconditional jump over the else-part to the
shared return.  JUMPS replicates the join (here: the function epilogue),
so the two execution paths return separately and the jump disappears.

Run:  python examples/if_then_else.py
"""

from repro import compile_and_measure
from repro.rtl import format_function

# The paper's Table 2 source.
SOURCE = """
int work(int i, int n) {
    if (i > 5)
        i = i / n;
    else
        i = i * n;
    return i;
}

int main() {
    int k, acc;
    acc = 0;
    for (k = 1; k < 2000; k++)
        acc += work(k, 3);
    printf("acc %d\\n", acc);
    return 0;
}
"""


def main() -> None:
    for replication in ("none", "jumps"):
        result = compile_and_measure(SOURCE, target="m68020", replication=replication)
        work = result.program.functions["work"]
        returns = sum(1 for b in work.blocks if b.ends_in_return())
        print("=" * 70)
        print(f"{replication.upper()}: work() has {returns} return point(s), "
              f"{work.jump_count()} unconditional jump(s)")
        print("=" * 70)
        print(format_function(work))
        m = result.measurement
        print(f"\nwhole program: dynamic {m.dynamic_insns} instructions, "
              f"{m.dynamic_jumps} jumps executed, output {m.output!r}\n")


if __name__ == "__main__":
    main()
