#!/usr/bin/env python3
"""Extension demo: profile-guided code replication.

The paper's JUMPS replicates every unconditional jump (+53 % static code
on average).  Guided by a training run, replication can be restricted to
the jumps that actually execute — most of the speedup for a fraction of
the growth, and cold/error paths keep their compact layout.

Run:  python examples/profile_guided.py [benchmark]
"""

import sys

from repro.benchsuite import PROGRAMS
from repro.core import profile_guided_replication
from repro.ease import measure_program
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.report import format_table, pct
from repro.targets import get_target


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "quicksort"
    bench = PROGRAMS[name]
    target = get_target("sparc")
    print(f"program: {name} (SPARC)")

    rows = []
    baseline = None
    for label, build in [
        ("SIMPLE", lambda: _classic(bench, target, "none")),
        ("JUMPS (all)", lambda: _classic(bench, target, "jumps")),
        ("PGO t=0", lambda: _pgo(bench, target, 0.0)),
        ("PGO t=0.05", lambda: _pgo(bench, target, 0.05)),
        ("PGO t=0.25", lambda: _pgo(bench, target, 0.25)),
    ]:
        m, extra = build()
        if baseline is None:
            baseline = m
        rows.append(
            [
                label,
                m.static_insns,
                pct(m.static_insns, baseline.static_insns),
                m.dynamic_insns,
                pct(m.dynamic_insns, baseline.dynamic_insns),
                extra,
            ]
        )
    print(
        format_table(
            ["config", "static", "Δ", "dynamic", "Δ", "hot/cold jumps"], rows
        )
    )


def _classic(bench, target, replication):
    program = compile_c(bench.source)
    optimize_program(program, target, OptimizationConfig(replication=replication))
    return measure_program(program, target, stdin=bench.stdin), "-"


def _pgo(bench, target, threshold):
    program = compile_c(bench.source)
    result = profile_guided_replication(
        program, target, train_stdin=bench.stdin, threshold=threshold
    )
    m = measure_program(program, target, stdin=bench.stdin)
    return m, f"{result.hot_jumps}/{result.cold_jumps}"


if __name__ == "__main__":
    main()
