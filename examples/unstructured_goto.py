#!/usr/bin/env python3
"""Unstructured control flow: goto-built loops (Figures 1 and 2 flavour).

Front-end replication techniques cannot see these jumps at all; the
paper's point is that a *back-end* algorithm handles "unstructured loops,
which are typically not recognized as loops by an optimizer".  JUMPS
replicates whole natural loops when needed (step 3) and retargets
branches of partially copied loops (step 5), keeping the flow graph
reducible throughout.

Run:  python examples/unstructured_goto.py
"""

from repro import compile_and_measure
from repro.cfg import find_loops, is_reducible
from repro.rtl import format_function

SOURCE = """
int steps;

int collatz_like(int x) {
    steps = 0;
top:
    if (x == 1)
        goto done;
    steps++;
    if (x % 2 == 0) {
        x = x / 2;
        goto top;
    }
    x = 3 * x + 1;
    goto top;
done:
    return steps;
}

int main() {
    int n, longest;
    longest = 0;
    for (n = 1; n <= 150; n++) {
        if (collatz_like(n) > longest)
            longest = collatz_like(n);
    }
    printf("longest chain %d\\n", longest);
    return 0;
}
"""


def main() -> None:
    for replication in ("none", "jumps"):
        result = compile_and_measure(SOURCE, target="sparc", replication=replication)
        func = result.program.functions["collatz_like"]
        loops = find_loops(func)
        m = result.measurement
        print("=" * 70)
        print(f"{replication.upper()}: collatz_like() — "
              f"{func.jump_count()} jumps, {len(loops.loops)} natural loops, "
              f"reducible={is_reducible(func)}")
        print("=" * 70)
        print(format_function(func))
        print(f"\ndynamic {m.dynamic_insns} instructions, "
              f"{m.dynamic_jumps} jumps executed, output {m.output!r}\n")


if __name__ == "__main__":
    main()
