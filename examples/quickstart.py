#!/usr/bin/env python3
"""Quickstart: compile a C function, replicate its jumps, and measure.

Run:  python examples/quickstart.py
"""

from repro import compile_and_measure
from repro.rtl import format_function

SOURCE = """
int total;

int main() {
    int i;
    total = 0;
    for (i = 0; i < 100; i++) {
        if (i % 3 == 0)
            total += i;
        else
            total -= 1;
    }
    printf("total %d\\n", total);
    return 0;
}
"""


def main() -> None:
    print("=" * 70)
    print("SIMPLE (standard optimizations only)")
    print("=" * 70)
    simple = compile_and_measure(SOURCE, target="m68020", replication="none")
    print(format_function(simple.program.functions["main"]))
    print(
        f"\n  static {simple.measurement.static_insns} instructions, "
        f"dynamic {simple.measurement.dynamic_insns}, "
        f"unconditional jumps executed {simple.measurement.dynamic_jumps}"
    )

    print()
    print("=" * 70)
    print("JUMPS (generalized code replication)")
    print("=" * 70)
    jumps = compile_and_measure(SOURCE, target="m68020", replication="jumps")
    print(format_function(jumps.program.functions["main"]))
    print(
        f"\n  static {jumps.measurement.static_insns} instructions, "
        f"dynamic {jumps.measurement.dynamic_insns}, "
        f"unconditional jumps executed {jumps.measurement.dynamic_jumps}"
    )

    assert simple.output == jumps.output
    saved = simple.measurement.dynamic_insns - jumps.measurement.dynamic_insns
    print(f"\nSame output ({simple.output!r}); {saved} fewer instructions executed.")


if __name__ == "__main__":
    main()
