#!/usr/bin/env python3
"""Table 1 of the paper: a loop whose exit condition sits in the middle.

Most compilers rotate simple for/while loops (the LOOPS configuration),
but give up when the exit test is in the *middle* of the loop body.  The
generalized JUMPS algorithm handles it: the test sequence is replicated
at the bottom with the condition reversed, saving one unconditional jump
per iteration.

Run:  python examples/loop_rotation.py
"""

from repro import compile_and_measure
from repro.cfg import build_function
from repro.core import clone_function, replicate_jumps, replicate_loop_tests
from repro.rtl import format_function, parse_insns

# The paper's Table 1 RTLs (68020 notation), verbatim shape:
#   i = 1;
#   while (i <= n) x[i-1] = x[i];
TABLE_1 = """
  d[1]=1;
L15:
  d[0]=d[1];
  a[0]=a[0]+1;
  d[1]=d[1]+1;
  NZ=d[0]?L[_n.];
  PC=NZ>=0,L16;
  B[a[0]]=B[a[0]+1];
  PC=L15;
L16:
  PC=RT;
"""

# The same shape at the C level: the loop exit test is mid-body.
C_VERSION = """
int x[200];
int n;

int main() {
    int i, moved;
    n = 150;
    moved = 0;
    i = 1;
    while (1) {
        if (i > n)
            break;
        x[i - 1] = x[i];
        moved++;
        i++;
    }
    printf("moved %d\\n", moved);
    return 0;
}
"""


def main() -> None:
    print("--- Table 1, RTL level -------------------------------------")
    func = build_function("table1", parse_insns(TABLE_1))
    print("before replication:")
    print(format_function(func))
    rotated = clone_function(func)
    stats = replicate_jumps(rotated)
    print(f"\nafter JUMPS ({stats.jumps_replaced} jump replaced, "
          f"{stats.rtls_replicated} RTLs replicated):")
    print(format_function(rotated))

    print("\n--- The same shape from C ----------------------------------")
    for replication in ("none", "loops", "jumps"):
        result = compile_and_measure(
            C_VERSION, target="m68020", replication=replication
        )
        m = result.measurement
        print(
            f"{replication:>5}: dynamic {m.dynamic_insns:6} instructions, "
            f"{m.dynamic_jumps:4} unconditional jumps executed "
            f"(output {m.output!r})"
        )
    print("\nLOOPS cannot rotate this loop (the test is mid-body); JUMPS can.")


if __name__ == "__main__":
    main()
