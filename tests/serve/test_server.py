"""Daemon lifecycle tests: a real ``repro serve`` process over a Unix socket.

Each scenario of the satellite checklist drives the daemon end-to-end:
startup/shutdown on signal, client disconnect mid-job (the computation
keeps running and its envelope lands in the cache), cancel semantics for
queued vs running jobs, malformed-request tolerance, and the coalescing
contract — N concurrent clients submitting one cell leave
``serve.jobs.coalesced == N - 1``.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec import CellSpec, ResultCache, execute_cell
from repro.serve import PROTOCOL_VERSION, ServeClient, ServeError
from repro.serve.protocol import decode_line, encode_message

#: ~8M dynamic instructions: slow enough (~1s) that concurrent submits
#: reliably land while the cell is in flight, fast enough for CI.
_SLOW = (
    "int main() { int i; i = 0; "
    "while (i < 2000000) { i = i + 1; } return %d; }"
)


def slow_spec(ret: int) -> CellSpec:
    return CellSpec(program=_SLOW % ret)


def quick_spec(ret: int) -> CellSpec:
    return CellSpec(program="int main() { return %d; }" % ret)


class Daemon:
    """A ``repro serve`` subprocess bound to a per-test-session socket."""

    def __init__(self, root: Path, workers: int = 1) -> None:
        self.socket_path = root / "daemon.sock"
        self.cache_dir = root / "cache"
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
        env.pop("REPRO_TRACE", None)
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                str(self.socket_path),
                "--workers",
                str(workers),
                "--cache-dir",
                str(self.cache_dir),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 90.0
        while not self.socket_path.exists():
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon died during startup:\n{self.proc.stdout.read()}"
                )
            if time.monotonic() > deadline:
                self.proc.kill()
                raise RuntimeError("daemon never created its socket")
            time.sleep(0.05)

    def client(self) -> ServeClient:
        return ServeClient(self.socket_path, timeout=120.0)

    def stop(self) -> str:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        return self.proc.stdout.read()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    d = Daemon(tmp_path_factory.mktemp("serve"), workers=1)
    yield d
    d.stop()


# --- basic round trips ---------------------------------------------------------


def test_ping_reports_protocol_version(daemon):
    with daemon.client() as client:
        pong = client.ping()
    assert pong["version"] == PROTOCOL_VERSION
    assert pong["pid"] == daemon.proc.pid
    assert pong["workers"] == 1


def test_submit_result_matches_local_execution(daemon):
    spec = quick_spec(41)
    with daemon.client() as client:
        served = client.run_cell(spec)
    local = execute_cell(spec)
    assert served.ok and local.ok
    for field in (
        "exit_code",
        "output",
        "static_insns",
        "dynamic_insns",
        "dynamic_jumps",
        "dynamic_nops",
        "code_bytes",
    ):
        assert getattr(served.measurement, field) == getattr(
            local.measurement, field
        ), field


def test_second_submit_is_served_from_cache(daemon):
    spec = quick_spec(42)
    with daemon.client() as client:
        client.run_cell(spec)
        descriptor = client.submit(spec)
        assert descriptor["cached"]
        assert descriptor["state"] == "done"
        result = client.result(descriptor["job"])
    assert result.cache_hit
    assert result.measurement.exit_code == 42


def test_matrix_dedupes_and_orders(daemon):
    a, b = quick_spec(43), quick_spec(44)
    with daemon.client() as client:
        summary = client.submit_specs([a, b, a, a])
        jobs = summary["jobs"]
        assert len(jobs) == 4
        assert jobs[0] == jobs[2] == jobs[3]
        assert jobs[1] != jobs[0]
        assert summary["coalesced"] >= 2  # the two in-batch duplicates
        results = [client.result(job) for job in jobs]
    assert [r.measurement.exit_code for r in results] == [43, 44, 43, 43]


def test_run_matrix_returns_input_order(daemon):
    specs = [quick_spec(45), quick_spec(46), quick_spec(45)]
    seen = []
    with daemon.client() as client:
        results = client.run_matrix(specs, on_result=seen.append)
    assert [r.measurement.exit_code for r in results] == [45, 46, 45]
    assert len(seen) == 3


def test_status_and_stats_shapes(daemon):
    spec = quick_spec(47)
    with daemon.client() as client:
        descriptor = client.submit(spec)
        status = client.status(descriptor["job"])
        assert status["state"] in ("queued", "running", "done")
        client.result(descriptor["job"])
        stats = client.stats()
    assert stats["workers"] == 1
    assert stats["jobs"]["submitted"] >= 1
    assert stats["cache"]["root"] == str(daemon.cache_dir)
    assert "serve.jobs.submitted" in stats["metrics"]["counters"]


# --- coalescing ----------------------------------------------------------------


def test_n_clients_coalesce_to_one_computation(daemon):
    """N concurrent submits of one cell: serve.jobs.coalesced == N - 1."""
    n = 4
    spec = slow_spec(11)
    clients = [daemon.client() for _ in range(n)]
    try:
        before = clients[0].stats()["jobs"]
        descriptors = [client.submit(spec) for client in clients]
        job_ids = {d["job"] for d in descriptors}
        assert len(job_ids) == 1  # every client attached to the same job
        assert [d["coalesced"] for d in descriptors] == [False, True, True, True]
        results = [
            client.result(d["job"])
            for client, d in zip(clients, descriptors)
        ]
        after = clients[0].stats()["jobs"]
    finally:
        for client in clients:
            client.close()
    assert after["coalesced"] - before["coalesced"] == n - 1
    assert after["completed"] - before["completed"] == 1
    exits = {r.measurement.exit_code for r in results}
    assert exits == {11}


def test_verify_mode_partitions_job_identity(tmp_path):
    """Dedup identity is the cache key *qualified by* the verify mode."""
    from repro.serve.server import ServeDaemon

    d = ServeDaemon(socket_path=tmp_path / "s.sock", cache_dir=tmp_path / "c")
    plain = quick_spec(48)
    full = CellSpec(program=plain.program, verify="full")
    sanitize = CellSpec(program=plain.program, verify="sanitize")
    base = d.keyer.key(plain)
    # The cache key intentionally ignores verify; the job key must not.
    assert d.keyer.key(full) == base
    assert d._job_key(plain) == base
    assert d._job_key(full) == f"{base}:full"
    assert d._job_key(sanitize) == f"{base}:sanitize"


def test_verifying_submission_never_coalesces_onto_unverified_run(daemon):
    """verify='full' must not attach to an in-flight unverified job."""
    program = _SLOW % 21
    with daemon.client() as client:
        plain = client.submit(CellSpec(program=program))
        verifying = client.submit(CellSpec(program=program, verify="full"))
        assert verifying["job"] != plain["job"]
        assert not verifying["coalesced"]
        assert verifying["key"] != plain["key"]
        # Don't pay for the oracle run: it is still queued (one worker).
        client.cancel(verifying["job"])
        assert client.result(plain["job"], wait=True, timeout=90.0).ok


# --- cancel semantics ----------------------------------------------------------


def test_cancel_queued_job_never_runs(daemon):
    blocker, victim = slow_spec(12), slow_spec(13)
    with daemon.client() as client:
        client.submit(blocker)  # occupies the single worker
        descriptor = client.submit(victim)
        cancelled = client.cancel(descriptor["job"])
        assert cancelled["cancelled"]
        assert client.status(descriptor["job"])["state"] == "cancelled"
        assert client.result(descriptor["job"]) is None
        # Cancelling an already-finished job is a polite no-op.
        done = client.submit(quick_spec(14))
        client.result(done["job"])
        assert not client.cancel(done["job"])["cancelled"]
    # The victim never computed: its envelope never appears in the cache.
    keyer = ResultCache(daemon.cache_dir)
    assert keyer.get_spec(victim) is None


def test_cancel_running_job_still_lands_in_cache(daemon):
    spec = slow_spec(15)
    with daemon.client() as client:
        descriptor = client.submit(spec)
        # Wait for it to leave the queue and start computing.
        deadline = time.monotonic() + 60.0
        while client.status(descriptor["job"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        cancelled = client.cancel(descriptor["job"])
        assert cancelled["cancelled"]
        assert client.result(descriptor["job"]) is None  # waiters released
    # The computation cannot be interrupted: the worker finishes and the
    # envelope still lands in the on-disk cache for the next asker.
    keyer = ResultCache(daemon.cache_dir)
    deadline = time.monotonic() + 90.0
    while keyer.get_spec(spec) is None:
        assert time.monotonic() < deadline, "cancelled job never published"
        time.sleep(0.1)
    assert keyer.get_spec(spec).measurement.exit_code == 15


def test_cancel_running_job_detaches_key_for_new_submits(daemon):
    """A resubmission after cancel starts fresh, never reads 'cancelled'."""
    spec = slow_spec(19)
    with daemon.client() as client:
        before = client.stats()["jobs"]
        first = client.submit(spec)
        deadline = time.monotonic() + 60.0
        while client.status(first["job"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert client.cancel(first["job"])["cancelled"]
        second = client.submit(spec)
        assert second["job"] != first["job"]
        assert not second["coalesced"]
        result = client.result(second["job"], wait=True, timeout=90.0)
        after = client.stats()["jobs"]
    assert result.measurement.exit_code == 19
    assert after["cancelled"] - before["cancelled"] == 1
    # The cancelled-mid-run computation counts only under "cancelled";
    # exactly one of completed/skipped accounts for the resubmission.
    assert (after["completed"] - before["completed"]) + (
        after["skipped"] - before["skipped"]
    ) == 1


# --- disconnect mid-job --------------------------------------------------------


def test_client_disconnect_mid_job_keeps_running(daemon):
    spec = slow_spec(16)
    first = daemon.client()
    descriptor = first.submit(spec)
    first.close()  # walk away with the job in flight
    with daemon.client() as second:
        result = second.result(descriptor["job"], wait=True, timeout=90.0)
    assert result is not None
    assert result.measurement.exit_code == 16
    assert ResultCache(daemon.cache_dir).get_spec(spec) is not None


# --- error handling ------------------------------------------------------------


def test_malformed_requests_keep_connection_usable(daemon):
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.settimeout(30.0)
    raw.connect(str(daemon.socket_path))
    stream = raw.makefile("rwb")
    try:
        for bad in (b"this is not json\n", b"[1,2,3]\n", b'{"op":"bogus"}\n'):
            stream.write(bad)
            stream.flush()
            response = decode_line(stream.readline())
            assert not response["ok"]
            assert "error" in response
        # The connection survived every malformed line.
        stream.write(encode_message({"op": "ping", "id": "after-garbage"}))
        stream.flush()
        response = decode_line(stream.readline())
        assert response["ok"]
        assert response["id"] == "after-garbage"
    finally:
        stream.close()
        raw.close()


def test_malformed_spec_is_rejected(daemon):
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.settimeout(30.0)
    raw.connect(str(daemon.socket_path))
    stream = raw.makefile("rwb")
    try:
        stream.write(
            encode_message({"op": "submit", "spec": {"program": "wc", "evil": 1}})
        )
        stream.flush()
        response = decode_line(stream.readline())
        assert not response["ok"]
        assert "evil" in response["error"]
    finally:
        stream.close()
        raw.close()


def test_unknown_job_id_errors(daemon):
    with daemon.client() as client:
        with pytest.raises(ServeError, match="unknown job"):
            client.status("j999999")
        with pytest.raises(ServeError, match="job"):
            client.result(12)  # type: ignore[arg-type] - wrong type on purpose


def test_result_wait_timeout_is_an_error_response(daemon):
    with daemon.client() as client:
        descriptor = client.submit(slow_spec(17))
        with pytest.raises(ServeError, match="timeout"):
            client.result(descriptor["job"], wait=True, timeout=0.05)
        # The job is unaffected; a patient wait still succeeds.
        result = client.result(descriptor["job"], wait=True, timeout=90.0)
    assert result.measurement.exit_code == 17


# --- socket claiming -----------------------------------------------------------


def test_live_socket_is_not_stolen(daemon):
    from repro.serve.server import ServeDaemon

    rival = ServeDaemon(socket_path=daemon.socket_path)
    with pytest.raises(SystemExit, match="already serving"):
        rival._claim_socket()
    assert daemon.socket_path.exists()


def test_stale_socket_is_cleared(tmp_path):
    from repro.serve.server import ServeDaemon

    stale = tmp_path / "stale.sock"
    leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    leftover.bind(str(stale))
    leftover.close()  # the file outlives the listener
    assert stale.exists()
    ServeDaemon(socket_path=stale)._claim_socket()
    assert not stale.exists()


# --- startup / shutdown on signal ----------------------------------------------


def test_sigterm_shuts_down_cleanly(tmp_path):
    d = Daemon(tmp_path, workers=1)
    with d.client() as client:
        assert client.ping()["ok"]
    d.proc.send_signal(signal.SIGTERM)
    assert d.proc.wait(timeout=30) == 0
    output = d.proc.stdout.read()
    assert "listening" in output
    assert "stopped" in output
    assert not d.socket_path.exists()


def test_shutdown_op_releases_parked_waiters(tmp_path):
    d = Daemon(tmp_path, workers=1)
    try:
        with d.client() as client:
            descriptor = client.submit(slow_spec(18))
            assert client.shutdown()["stopping"]
            assert d.proc.wait(timeout=60) == 0
        assert not d.socket_path.exists()
        # The submitted job was released as cancelled, not left hanging
        # (we can't query it post-mortem; clean exit is the contract).
    finally:
        d.stop()
