"""Unit tests for the in-flight single-flight job table."""

from repro.serve import InFlightTable


def test_claim_creates_then_attaches():
    table = InFlightTable()
    first, created = table.claim("k", lambda: object())
    assert created
    second, created = table.claim("k", lambda: object())
    assert not created
    assert second is first
    assert table.claimed == 1
    assert table.attached == 1


def test_factory_not_called_on_attach():
    table = InFlightTable()
    calls = []

    def factory():
        calls.append(1)
        return "job"

    table.claim("k", factory)
    table.claim("k", factory)
    assert calls == [1]


def test_complete_detaches_key():
    table = InFlightTable()
    job, _ = table.claim("k", lambda: object())
    assert "k" in table
    table.complete("k")
    assert "k" not in table
    assert len(table) == 0
    fresh, created = table.claim("k", lambda: object())
    assert created
    assert fresh is not job


def test_complete_with_value_only_detaches_that_job():
    """A superseded job's late completion must not evict its successor."""
    table = InFlightTable()
    old, _ = table.claim("k", lambda: object())
    table.complete("k", old)  # cancel-while-running detaches eagerly
    assert "k" not in table
    new, created = table.claim("k", lambda: object())
    assert created
    # The old computation finishes later and completes with its own job:
    # the successor stays in flight.
    table.complete("k", old)
    assert table.get("k") is new
    table.complete("k", new)
    assert "k" not in table


def test_complete_is_idempotent():
    table = InFlightTable()
    table.complete("never-claimed")
    table.claim("k", lambda: object())
    table.complete("k")
    table.complete("k")
    assert len(table) == 0


def test_independent_keys_do_not_coalesce():
    table = InFlightTable()
    a, _ = table.claim("a", lambda: object())
    b, _ = table.claim("b", lambda: object())
    assert a is not b
    assert len(table) == 2
    assert table.get("a") is a
    assert table.get("missing") is None
