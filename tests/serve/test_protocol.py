"""Unit tests for the JSON-line wire format."""

import base64
import json

import pytest

from repro.exec import CellResult, CellSpec
from repro.serve import (
    ProtocolError,
    decode_line,
    encode_message,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.serve.protocol import specs_from_wire


def test_message_round_trip():
    message = {"op": "ping", "id": 7, "nested": {"a": [1, 2]}}
    assert decode_line(encode_message(message)) == message


def test_encode_is_one_line():
    line = encode_message({"op": "x", "text": "with\nnewline"})
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1


@pytest.mark.parametrize(
    "line",
    [b"not json\n", b"[1,2,3]\n", b'"string"\n', b"\xff\xfe\n", b"42\n"],
)
def test_decode_rejects_non_objects(line):
    with pytest.raises(ProtocolError):
        decode_line(line)


# --- CellSpec ------------------------------------------------------------------


def test_spec_round_trip_defaults():
    spec = CellSpec(program="wc")
    assert spec_from_wire(spec_to_wire(spec)) == spec


def test_spec_round_trip_full():
    spec = CellSpec(
        program="int main() { return 1; }",
        target="m68020",
        replication="jumps",
        policy="loops",
        max_rtls=32,
        trace=True,
        stdin=b"\x00\x01binary\xff",
        spm_engine="dense",
        verify="off",
        ease_engine="interp",
        tuned=(("helper", "returns", 8, "late"), ("main", "loops", None, "nofinal")),
    )
    wire = spec_to_wire(spec)
    json.dumps(wire)  # JSON-safe by construction
    assert spec_from_wire(wire) == spec


def test_spec_tuned_survives_json_serialization():
    """JSON turns the tuned tuples into arrays; decoding must restore
    the hashable tuple-of-tuples form the cache key relies on."""
    spec = CellSpec(program="wc", tuned=(("main", "returns", None, "standard"),))
    rebuilt = spec_from_wire(json.loads(json.dumps(spec_to_wire(spec))))
    assert rebuilt == spec
    assert isinstance(rebuilt.tuned, tuple)
    assert isinstance(rebuilt.tuned[0], tuple)


def test_spec_wire_encodes_stdin_as_base64():
    wire = spec_to_wire(CellSpec(program="wc", stdin=b"abc"))
    assert "stdin" not in wire
    assert base64.b64decode(wire["stdin_b64"]) == b"abc"


@pytest.mark.parametrize(
    "wire",
    [
        "not a dict",
        {},  # missing program
        {"program": 42},
        {"program": "wc", "bogus_field": 1},
        {"program": "wc", "stdin": "smuggled"},
        {"program": "wc", "trace": "yes"},
        {"program": "wc", "max_rtls": "12"},
        {"program": "wc", "verify": 1},
        {"program": "wc", "stdin_b64": "!!!not base64!!!"},
        {"program": "wc", "stdin_b64": 99},
        {"program": "wc", "tuned": "main"},
        {"program": "wc", "tuned": []},
        {"program": "wc", "tuned": [["main", "returns", None]]},
        {"program": "wc", "tuned": [["main", "returns", None, "standard", 1]]},
        {"program": "wc", "tuned": [[1, "returns", None, "standard"]]},
        {"program": "wc", "tuned": [["main", 2, None, "standard"]]},
        {"program": "wc", "tuned": [["main", "returns", "8", "standard"]]},
        {"program": "wc", "tuned": [["main", "returns", None, 3]]},
    ],
)
def test_spec_from_wire_rejects_malformed(wire):
    with pytest.raises(ProtocolError):
        spec_from_wire(wire)


@pytest.mark.parametrize("items", [None, "x", [], [{"program": "wc"}, "junk"]])
def test_specs_from_wire_rejects_malformed(items):
    with pytest.raises(ProtocolError):
        specs_from_wire(items)


def test_specs_from_wire_accepts_list():
    specs = specs_from_wire([{"program": "wc"}, {"program": "sieve"}])
    assert [s.program for s in specs] == ["wc", "sieve"]


# --- CellResult ----------------------------------------------------------------


def test_result_round_trip():
    from repro.ease.measure import Measurement

    measurement = Measurement()
    measurement.exit_code = 41
    measurement.dynamic_insns = 123
    original = CellResult(spec=CellSpec(program="wc"), measurement=measurement)
    blob = result_to_wire(original)
    json.dumps({"result": blob})  # a plain JSON string field
    restored = result_from_wire(blob)
    assert restored.spec == original.spec
    assert restored.measurement.exit_code == 41
    assert restored.measurement.dynamic_insns == 123


def test_result_from_wire_none_passthrough():
    assert result_from_wire(None) is None


@pytest.mark.parametrize(
    "blob",
    [
        "@@not-base64@@",
        base64.b64encode(b"not a pickle").decode(),
        base64.b64encode(__import__("pickle").dumps({"a": 1})).decode(),
    ],
)
def test_result_from_wire_rejects_garbage(blob):
    with pytest.raises(ProtocolError):
        result_from_wire(blob)
