"""Unit tests for the pure matrix planner (hash-group, skip, chunk)."""

from repro.exec import CellSpec
from repro.serve.scheduler import chunk_work, plan_matrix


def _specs(n):
    return [CellSpec(program=f"int main() {{ return {i}; }}") for i in range(n)]


# --- chunking ------------------------------------------------------------------


def test_chunk_work_empty():
    assert chunk_work([], shards=4) == []


def test_chunk_work_respects_ceiling():
    chunks = chunk_work([f"k{i}" for i in range(10)], shards=2, oversubscribe=2)
    # ceil(10 / 4) = 3 per chunk -> 3+3+3+1
    assert [len(c) for c in chunks] == [3, 3, 3, 1]
    assert [k for chunk in chunks for k in chunk] == [f"k{i}" for i in range(10)]


def test_chunk_work_small_input_one_chunk_each():
    chunks = chunk_work(["a", "b"], shards=8, oversubscribe=2)
    assert chunks == [["a"], ["b"]]


def test_chunk_work_degenerate_shards():
    assert chunk_work(["a", "b", "c"], shards=0, oversubscribe=0) == [
        ["a", "b", "c"]
    ]


# --- planning ------------------------------------------------------------------


def test_plan_dedupes_identical_cells():
    specs = _specs(3)
    batch = [specs[0], specs[1], specs[0], specs[2], specs[1], specs[0]]
    keys = [f"key-{s.program}" for s in batch]
    plan = plan_matrix(batch, keys, have=None, shards=2)
    assert plan.duplicates == 3
    assert len(plan.unique) == 3
    assert plan.scheduled == 3
    assert plan.order == keys  # input order retained, duplicates included


def test_plan_skips_materialized_cells():
    specs = _specs(4)
    keys = [f"key-{i}" for i in range(4)]
    plan = plan_matrix(specs, keys, have=lambda k: k in ("key-1", "key-3"), shards=2)
    assert plan.skipped == ["key-1", "key-3"]
    assert plan.scheduled == 2
    scheduled = [k for chunk in plan.chunks for k in chunk]
    assert scheduled == ["key-0", "key-2"]


def test_plan_without_probe_schedules_everything():
    specs = _specs(5)
    keys = [f"key-{i}" for i in range(5)]
    plan = plan_matrix(specs, keys, have=None, shards=1, oversubscribe=1)
    assert plan.skipped == []
    assert plan.scheduled == 5
    assert len(plan.chunks) == 1  # 1 shard x 1 oversubscribe = 1 slot


def test_plan_probes_each_unique_key_once():
    specs = _specs(2)
    batch = [specs[0], specs[1], specs[0]]
    keys = ["key-0", "key-1", "key-0"]
    probed = []

    def have(key):
        probed.append(key)
        return False

    plan_matrix(batch, keys, have, shards=2)
    assert probed == ["key-0", "key-1"]  # duplicates never re-probed


def test_plan_all_cached_means_no_chunks():
    specs = _specs(3)
    keys = [f"key-{i}" for i in range(3)]
    plan = plan_matrix(specs, keys, have=lambda k: True, shards=4)
    assert plan.chunks == []
    assert plan.scheduled == 0
    assert len(plan.skipped) == 3
