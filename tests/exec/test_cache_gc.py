"""Unit tests for result-cache maintenance: disk_stats and gc."""

import os
import time

from repro.exec import CellResult, CellSpec, ResultCache


def _result(tag: str) -> CellResult:
    from repro.ease.measure import Measurement

    spec = CellSpec(program=f"int main() {{ return {tag}; }}")
    measurement = Measurement()
    measurement.exit_code = 0
    return CellResult(spec=spec, measurement=measurement)


def _fill(cache: ResultCache, count: int, base_age: float = 0.0):
    """``count`` entries whose mtimes step one minute apart (0 = oldest)."""
    now = time.time()
    paths = []
    for i in range(count):
        key = cache.key(CellSpec(program=f"int main() {{ return {i}; }}"))
        cache.put(key, _result(str(i)))
        path = cache._path(key)
        mtime = now - base_age - (count - i) * 60.0
        os.utime(path, (mtime, mtime))
        paths.append((key, path))
    return paths


def test_disk_stats_empty(tmp_path):
    info = ResultCache(tmp_path).disk_stats()
    assert info["entries"] == 0
    assert info["bytes"] == 0
    assert info["oldest_mtime"] is None
    assert info["versions"] == {}


def test_disk_stats_counts_all_versions(tmp_path):
    current = ResultCache(tmp_path)
    old = ResultCache(tmp_path, schema_version=1)
    _fill(current, 2)
    _fill(old, 3)
    info = current.disk_stats()
    assert info["entries"] == 5
    assert info["bytes"] > 0
    assert info["versions"][f"v{current.schema_version}"]["entries"] == 2
    assert info["versions"]["v1"]["entries"] == 3
    assert info["oldest_mtime"] <= info["newest_mtime"]


def test_gc_max_age_evicts_only_old_entries(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 4)  # ages: 4, 3, 2, 1 minutes
    report = cache.gc(max_age=150.0)  # keep the two newest (< 2.5 min)
    assert report["removed"] == 2
    assert report["remaining_entries"] == 2
    survivors = {p for _, p in paths if p.exists()}
    assert survivors == {paths[2][1], paths[3][1]}


def test_gc_max_bytes_evicts_lru_order(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 5)
    sizes = [p.stat().st_size for _, p in paths]
    budget = sizes[-1] + sizes[-2]  # room for exactly the two newest
    report = cache.gc(max_bytes=budget)
    assert report["removed"] == 3
    # Oldest-first: the survivors are the most recently used entries.
    assert [p.exists() for _, p in paths] == [False, False, False, True, True]
    assert report["remaining_bytes"] <= budget
    reasons = {item["reason"] for item in report["entries"]}
    assert reasons == {"bytes"}


def test_gc_age_then_bytes_compose(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 6)
    size = paths[0][1].stat().st_size
    report = cache.gc(max_age=210.0, max_bytes=size)  # age kills 3, budget 2 more
    assert report["removed"] == 5
    assert [p.exists() for _, p in paths] == [False] * 5 + [True]
    by_reason = {}
    for item in report["entries"]:
        by_reason[item["reason"]] = by_reason.get(item["reason"], 0) + 1
    assert by_reason == {"age": 3, "bytes": 2}


def test_gc_dry_run_removes_nothing(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 3)
    report = cache.gc(max_age=0.0, dry_run=True)
    assert report["dry_run"]
    assert report["removed"] == 3
    assert all(p.exists() for _, p in paths)
    assert cache.evictions == 0


def test_gc_sweeps_older_schema_versions(tmp_path):
    current = ResultCache(tmp_path)
    old = ResultCache(tmp_path, schema_version=1)
    _fill(current, 1)
    old_paths = _fill(old, 2, base_age=7200.0)
    report = current.gc(max_age=3600.0)
    assert report["removed"] == 2
    assert not any(p.exists() for _, p in old_paths)
    assert len(current) == 1


def test_gc_tolerates_corrupted_entries(tmp_path):
    """Garbage bytes in an entry slot are swept like any other entry."""
    cache = ResultCache(tmp_path)
    _fill(cache, 2)
    bad = tmp_path / f"v{cache.schema_version}" / "zz" / ("f" * 64 + ".pkl")
    bad.parent.mkdir(parents=True)
    bad.write_bytes(b"\x00not a pickle")
    old = time.time() - 7200.0
    os.utime(bad, (old, old))
    report = cache.gc(max_age=3600.0)
    assert report["removed"] == 1
    assert not bad.exists()
    assert report["unlink_failures"] == 0


def test_gc_cleans_orphaned_tmp_files(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 1)
    shard = next(iter((tmp_path / f"v{cache.schema_version}").iterdir()))
    stale_tmp = shard / ".deadbeef-x.tmp"
    stale_tmp.write_bytes(b"partial write")
    old = time.time() - 7200.0
    os.utime(stale_tmp, (old, old))
    fresh_tmp = shard / ".cafebabe-y.tmp"
    fresh_tmp.write_bytes(b"in flight")
    report = cache.gc(max_age=86400.0)
    assert report["tmp_removed"] == 1
    assert not stale_tmp.exists()
    assert fresh_tmp.exists()  # could still be a live writer


def test_gc_without_policies_is_a_census(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 3)
    report = cache.gc()
    assert report["removed"] == 0
    assert report["examined"] == 3
    assert all(p.exists() for _, p in paths)


def test_gc_missing_root(tmp_path):
    report = ResultCache(tmp_path / "never-created").gc(max_age=1.0)
    assert report["examined"] == 0
    assert report["removed"] == 0
