"""Unit + regression tests for cross-process single-flight deduplication."""

import os
import subprocess
import sys
import threading
import time

from repro.exec import CellResult, CellSpec, ResultCache, SingleFlight, single_flight
from repro.exec.cache import CACHE_SCHEMA_VERSION

SPEC = CellSpec(program="int main() { return 7; }", target="sparc")


def small_result(spec=SPEC) -> CellResult:
    from repro.ease.measure import Measurement

    measurement = Measurement()
    measurement.exit_code = 7
    return CellResult(spec=spec, measurement=measurement)


# --- lock primitives -----------------------------------------------------------


def test_acquire_is_exclusive(tmp_path):
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)
    assert not flight.try_acquire(key)
    assert flight.holder_active(key)
    flight.release(key)
    assert not flight.holder_active(key)
    assert flight.try_acquire(key)
    flight.release(key)


def test_release_is_idempotent(tmp_path):
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache)
    key = cache.key(SPEC)
    flight.release(key)  # never acquired: no error
    assert flight.try_acquire(key)
    flight.release(key)
    flight.release(key)


def test_stale_lock_is_broken_and_reclaimed(tmp_path):
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache, stale_after=10.0)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)
    # Back-date the lock beyond the staleness timeout (a crashed owner).
    lock = flight._lock_path(key)
    old = time.time() - 60.0
    os.utime(lock, (old, old))
    assert flight.try_acquire(key)  # broke the stale lock, owns a fresh one
    flight.release(key)


def test_wait_for_returns_published_entry(tmp_path):
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache, poll=0.01)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)

    def publish():
        time.sleep(0.15)
        cache.put(key, small_result())
        flight.release(key)

    thread = threading.Thread(target=publish)
    thread.start()
    try:
        waited = flight.wait_for(key, timeout=10.0)
    finally:
        thread.join()
    assert waited is not None
    assert waited.measurement.exit_code == 7


def test_wait_for_gives_up_when_owner_vanishes_without_entry(tmp_path):
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache, poll=0.01)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)

    def abandon():
        time.sleep(0.1)
        flight.release(key)  # owner dies without publishing

    thread = threading.Thread(target=abandon)
    thread.start()
    try:
        assert flight.wait_for(key, timeout=10.0) is None
    finally:
        thread.join()


def test_wait_for_counts_a_single_miss(tmp_path):
    """Polling probes the entry file; it must not inflate miss stats."""
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache, poll=0.01)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)
    try:
        assert flight.wait_for(key, timeout=0.3) is None  # ~30 polls
    finally:
        flight.release(key)
    assert cache.misses == 1


def test_wait_for_times_out(tmp_path):
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache, poll=0.01)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)
    try:
        assert flight.wait_for(key, timeout=0.05) is None
    finally:
        flight.release(key)


# --- the single_flight protocol ------------------------------------------------


def test_single_flight_computes_and_publishes(tmp_path):
    cache = ResultCache(tmp_path)
    calls = []

    def compute(spec):
        calls.append(spec)
        return small_result(spec)

    result, fresh = single_flight(cache, SPEC, compute)
    assert fresh and result.ok and len(calls) == 1
    assert cache.get_spec(SPEC) is not None
    assert not SingleFlight(cache).holder_active(cache.key(SPEC))


def test_single_flight_without_cache_just_computes():
    result, fresh = single_flight(None, SPEC, small_result)
    assert fresh and result.ok


def test_single_flight_never_publishes_failures(tmp_path):
    cache = ResultCache(tmp_path)

    def fail(spec):
        return CellResult(spec=spec, error="boom")

    result, fresh = single_flight(cache, SPEC, fail)
    assert fresh and not result.ok
    assert cache.get_spec(SPEC) is None
    # And the lock is released so the next caller isn't parked.
    assert not SingleFlight(cache).holder_active(cache.key(SPEC))


def test_single_flight_adopts_already_published_entry(tmp_path):
    """Double-check under the lock: a published entry is never recomputed."""
    cache = ResultCache(tmp_path)
    cache.put_spec(SPEC, small_result())
    result, fresh = single_flight(
        cache, SPEC, lambda spec: (_ for _ in ()).throw(AssertionError)
    )
    assert not fresh
    assert result.cache_hit
    assert result.measurement.exit_code == 7


def test_single_flight_waiter_adopts_owners_envelope(tmp_path):
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache, poll=0.01)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)  # simulate a concurrent owner

    def owner():
        time.sleep(0.15)
        cache.put(key, small_result())
        flight.release(key)

    thread = threading.Thread(target=owner)
    thread.start()
    try:
        result, fresh = single_flight(
            cache,
            SPEC,
            lambda spec: (_ for _ in ()).throw(AssertionError("recomputed")),
            flight=SingleFlight(cache, poll=0.01),
        )
    finally:
        thread.join()
    assert not fresh
    assert result.cache_hit
    assert result.measurement.exit_code == 7


# --- the regression: two deliberately racing processes -------------------------

_RACER = """
import sys, time
from repro.exec import CellSpec, ResultCache
from repro.exec.singleflight import SingleFlight, single_flight

cache_dir, marker_dir, tag = sys.argv[1], sys.argv[2], sys.argv[3]
cache = ResultCache(cache_dir)
spec = CellSpec(program="int main() { return 7; }", target="sparc")

def compute(spec):
    # Record that THIS process did the work, slowly enough that the
    # other process is guaranteed to arrive while the lock is held.
    with open(f"{marker_dir}/computed-{tag}", "w") as fh:
        fh.write(tag)
    time.sleep(1.0)
    from repro.exec import execute_cell
    return execute_cell(spec)

result, fresh = single_flight(
    cache, spec, compute, flight=SingleFlight(cache, poll=0.01)
)
assert result.ok, result.error
print(f"{tag} fresh={fresh} exit={result.measurement.exit_code}")
"""


def test_two_racing_processes_compute_once(tmp_path):
    """Two processes race on the same cold key; exactly one computes."""
    cache_dir = tmp_path / "cache"
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _RACER, str(cache_dir), str(marker_dir), tag],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for tag in ("a", "b")
    ]
    outputs = [proc.communicate(timeout=120) for proc in procs]
    for proc, (out, err) in zip(procs, outputs):
        assert proc.returncode == 0, err
    markers = sorted(p.name for p in marker_dir.iterdir())
    assert len(markers) == 1, (
        f"both processes computed: {markers}\n"
        + "\n".join(out for out, _ in outputs)
    )
    # Both got a usable envelope: one fresh, one adopted.
    freshness = sorted(out.split("fresh=")[1].split()[0] for out, _ in outputs)
    assert freshness == ["False", "True"]
    assert ResultCache(cache_dir).get_spec(SPEC) is not None


def test_lock_files_live_beside_entries(tmp_path):
    """Locks land in the entry's shard dir, never mistaken for entries."""
    cache = ResultCache(tmp_path)
    flight = SingleFlight(cache)
    key = cache.key(SPEC)
    assert flight.try_acquire(key)
    lock = flight._lock_path(key)
    assert lock.parent == cache._path(key).parent
    assert lock.suffix == ".lock"
    assert len(cache) == 0  # a lock is not an entry
    assert cache.disk_stats()["entries"] == 0
    flight.release(key)
