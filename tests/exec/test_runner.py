"""Unit tests for the parallel matrix runner and its failure capture."""

import pytest

from repro.benchsuite import clear_cache, run_benchmark, run_matrix
from repro.exec import CellResult, CellSpec, ParallelRunner, ResultCache, execute_cell

GOOD = CellSpec(program="int main() { return 41; }")
CRASHING = CellSpec(program="int main( {")  # syntax error
GOOD2 = CellSpec(program="int main() { return 43; }")


# --- execute_cell -----------------------------------------------------------------


def test_execute_cell_success_envelope():
    result = execute_cell(CellSpec(program="wc", replication="jumps"))
    assert result.ok
    assert result.measurement.dynamic_jumps == 0
    assert result.replication_stats["jumps_replaced"] > 0
    assert result.passes, "per-pass instrumentation should be recorded"
    assert result.optimize_seconds > 0 and result.measure_seconds > 0
    assert "wc/sparc/jumps" in result.summary()


def test_execute_cell_reference_run():
    result = execute_cell(CellSpec(program="int main() { return 5; }", optimize=False))
    assert result.ok
    assert result.measurement.exit_code == 5
    assert result.replication_stats is None and not result.passes


def test_execute_cell_records_ease_engine():
    compiled = execute_cell(CellSpec(program="wc", ease_engine="compiled"))
    interp = execute_cell(CellSpec(program="wc", ease_engine="interp"))
    assert compiled.ok and interp.ok
    assert compiled.measurement.ease_engine == "compiled"
    assert interp.measurement.ease_engine == "interp"
    # Engine choice is provenance, not semantics: identical counts.
    assert (
        compiled.measurement.dynamic_insns == interp.measurement.dynamic_insns
    )
    assert compiled.measurement.output == interp.measurement.output


def test_execute_cell_captures_failure():
    result = execute_cell(CRASHING)
    assert not result.ok
    assert "CompileError" in result.error
    assert result.measurement is None
    assert "FAILED" in result.summary()


# --- ParallelRunner ---------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_runner_preserves_order_and_isolates_failures(workers):
    specs = [GOOD, CRASHING, GOOD2]
    results = ParallelRunner(workers=workers).run(specs)
    assert [r.spec for r in results] == specs
    assert results[0].ok and results[0].measurement.exit_code == 41
    assert not results[1].ok and "CompileError" in results[1].error
    assert results[2].ok and results[2].measurement.exit_code == 43


def test_runner_uses_and_fills_cache(tmp_path):
    cache = ResultCache(tmp_path)
    specs = [GOOD, CRASHING]
    cold = ParallelRunner(workers=1, cache=cache).run(specs)
    assert not any(r.cache_hit for r in cold)
    assert len(cache) == 1  # failures are never cached

    warm_cache = ResultCache(tmp_path)
    warm = ParallelRunner(workers=1, cache=warm_cache).run(specs)
    assert warm[0].cache_hit and warm[0].measurement.exit_code == 41
    assert not warm[1].cache_hit and not warm[1].ok  # recomputed, fails again
    assert warm_cache.hits == 1


def test_runner_on_result_callback():
    seen = []
    ParallelRunner(workers=1).run([GOOD, GOOD2], on_result=seen.append)
    assert len(seen) == 2 and all(isinstance(r, CellResult) for r in seen)


def test_runner_parallel_matches_serial():
    specs = [
        CellSpec(program="wc", target=target, replication=config)
        for target in ("sparc", "m68020")
        for config in ("none", "jumps")
    ]
    serial = ParallelRunner(workers=1).run(specs)
    parallel = ParallelRunner(workers=2).run(specs)
    for s, p in zip(serial, parallel):
        assert s.spec == p.spec
        assert s.measurement.static_insns == p.measurement.static_insns
        assert s.measurement.dynamic_insns == p.measurement.dynamic_insns
        assert s.measurement.output == p.measurement.output


# --- the benchsuite facade --------------------------------------------------------


def test_run_matrix_shape_and_memo(tmp_path):
    clear_cache()
    try:
        matrix = run_matrix(
            names=["wc"], targets=["sparc"], configs=["none", "jumps"], workers=1
        )
        assert set(matrix) == {("sparc", "none", "wc"), ("sparc", "jumps", "wc")}
        # The matrix seeded the in-process memo: run_benchmark is now free
        # and returns the very same Measurement objects.
        assert run_benchmark("wc", "sparc", "jumps") is matrix[("sparc", "jumps", "wc")]
    finally:
        clear_cache()


def test_run_matrix_reports_failures(monkeypatch):
    import repro.benchsuite.runner as runner_module

    def explode(spec):
        return CellResult(spec=spec, error="boom")

    monkeypatch.setattr(runner_module, "execute_cell", explode)
    monkeypatch.setattr(
        "repro.exec.runner.execute_cell", explode
    )
    clear_cache()
    try:
        with pytest.raises(RuntimeError, match="matrix cell"):
            run_matrix(names=["wc"], targets=["sparc"], configs=["none"], workers=1)
    finally:
        clear_cache()


def test_run_benchmark_uses_persistent_cache(tmp_path):
    clear_cache()
    try:
        cache = ResultCache(tmp_path)
        first = run_benchmark("wc", "sparc", "jumps", cache=cache)
        clear_cache()  # drop the in-process memo, keep the disk
        again = run_benchmark("wc", "sparc", "jumps", cache=cache)
        assert cache.hits == 1
        assert again.dynamic_insns == first.dynamic_insns
    finally:
        clear_cache()


def test_run_benchmark_unknown_name():
    with pytest.raises(KeyError, match="unknown benchmark"):
        run_benchmark("nonesuch")
