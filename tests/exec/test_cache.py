"""Unit tests for the content-addressed on-disk result cache."""

import multiprocessing
import pickle
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.ease.measure import Measurement
from repro.exec import CellResult, CellSpec, ResultCache, execute_cell

SPEC = CellSpec(program="int main() { return 7; }", target="sparc")


def small_result(spec=SPEC) -> CellResult:
    measurement = Measurement()
    measurement.static_insns = 3
    measurement.exit_code = 7
    return CellResult(spec=spec, measurement=measurement)


# --- keying --------------------------------------------------------------------


def test_key_is_stable_within_process(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.key(SPEC) == cache.key(SPEC)
    assert cache.key(SPEC) == cache.key(replace(SPEC))


def test_key_is_stable_across_processes(tmp_path):
    """SHA-256 of canonical content — no per-process hash randomization."""
    script = (
        "from repro.exec import CellSpec, ResultCache;"
        "print(ResultCache('x').key("
        "CellSpec(program='int main() { return 7; }', target='sparc')))"
    )
    keys = {
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        for _ in range(2)
    }
    assert len(keys) == 1
    assert keys.pop() == ResultCache(tmp_path).key(SPEC)


def test_key_ignores_cache_root(tmp_path):
    assert ResultCache(tmp_path / "a").key(SPEC) == ResultCache(tmp_path / "b").key(
        SPEC
    )


@pytest.mark.parametrize(
    "variant",
    [
        {"program": "int main() { return 8; }"},
        {"target": "m68020"},
        {"replication": "jumps"},
        {"policy": "returns"},
        {"max_rtls": 12},
        {"trace": True},
        {"optimize": False},
        {"stdin": b"abc"},
        {"ease_engine": "interp"},
        {"tuned": (("main", "returns", None, "standard"),)},
        {"tuned": (("main", "shortest", 8, "late"),)},
    ],
)
def test_key_changes_when_config_changes(tmp_path, variant, monkeypatch):
    monkeypatch.delenv("REPRO_EASE_ENGINE", raising=False)
    cache = ResultCache(tmp_path)
    assert cache.key(replace(SPEC, **variant)) != cache.key(SPEC)


def test_key_hashes_resolved_ease_engine(tmp_path, monkeypatch):
    """The key carries the *resolved* engine: a spec left at the default
    and one pinned to the default engine are the same cell, while an
    environment-variable switch must not serve stale entries."""
    monkeypatch.delenv("REPRO_EASE_ENGINE", raising=False)
    cache = ResultCache(tmp_path)
    assert cache.key(SPEC) == cache.key(replace(SPEC, ease_engine="compiled"))
    monkeypatch.setenv("REPRO_EASE_ENGINE", "interp")
    env_key = cache.key(SPEC)
    assert env_key == cache.key(replace(SPEC, ease_engine="interp"))
    assert env_key != cache.key(replace(SPEC, ease_engine="compiled"))


def test_key_distinguishes_tuned_rows(tmp_path):
    """Different per-function overrides are different cells; the sorted
    tuple form is canonical, so equal choices share one entry."""
    cache = ResultCache(tmp_path)
    rows_a = (("f", "loops", None, "standard"), ("main", "returns", 4, "late"))
    rows_b = (("f", "loops", 16, "standard"), ("main", "returns", 4, "late"))
    untuned = cache.key(SPEC)
    assert cache.key(replace(SPEC, tuned=rows_a)) != untuned
    assert cache.key(replace(SPEC, tuned=rows_a)) != cache.key(
        replace(SPEC, tuned=rows_b)
    )
    assert cache.key(replace(SPEC, tuned=rows_a)) == cache.key(
        replace(SPEC, tuned=rows_a)
    )


def test_key_resolves_benchmark_source():
    """Named benchmarks hash by content, not by name alone."""
    from repro.benchsuite import PROGRAMS

    by_name = ResultCache("x").key(CellSpec(program="wc"))
    by_source = ResultCache("x").key(
        CellSpec(program=PROGRAMS["wc"].source, stdin=PROGRAMS["wc"].stdin)
    )
    assert by_name == by_source


def test_validate_cfg_does_not_change_key(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.key(replace(SPEC, validate_cfg=True)) == cache.key(SPEC)


def test_schema_version_changes_key_and_namespace(tmp_path):
    v1 = ResultCache(tmp_path, schema_version=1)
    v2 = ResultCache(tmp_path, schema_version=2)
    assert v1.key(SPEC) != v2.key(SPEC)
    v1.put_spec(SPEC, small_result())
    assert v2.get_spec(SPEC) is None  # schema bump invalidates everything
    assert len(v1) == 1 and len(v2) == 0


# --- round trips ----------------------------------------------------------------


def test_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get_spec(SPEC) is None
    cache.put_spec(SPEC, small_result())
    loaded = cache.get_spec(SPEC)
    assert loaded is not None
    assert loaded.measurement.exit_code == 7
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert cache.stats()["writes"] == 1


def test_executed_cell_round_trips_with_instrumentation(tmp_path):
    cache = ResultCache(tmp_path)
    spec = CellSpec(program="wc", replication="jumps")
    result = execute_cell(spec)
    assert result.ok
    cache.put_spec(spec, result)
    loaded = ResultCache(tmp_path).get_spec(spec)  # fresh instance, same disk
    assert loaded.measurement.dynamic_insns == result.measurement.dynamic_insns
    assert loaded.replication_stats == result.replication_stats
    assert loaded.passes == result.passes and loaded.passes


def test_cached_envelope_carries_ease_engine(tmp_path):
    """The engine that produced a measurement rides in the cached
    envelope, so ``repro bench --json`` can report it for cache hits."""
    cache = ResultCache(tmp_path)
    spec = CellSpec(program="wc", ease_engine="interp")
    result = execute_cell(spec)
    assert result.ok and result.measurement.ease_engine == "interp"
    cache.put_spec(spec, result)
    loaded = ResultCache(tmp_path).get_spec(spec)
    assert loaded.measurement.ease_engine == "interp"


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put_spec(SPEC, small_result())
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get_spec(SPEC) is None


# --- corruption recovery ----------------------------------------------------------


@pytest.mark.parametrize(
    "garbage",
    [b"", b"not a pickle", pickle.dumps({"wrong": "type"})],
    ids=["truncated", "garbage", "foreign-object"],
)
def test_corrupted_entry_is_evicted_and_recomputed(tmp_path, garbage):
    cache = ResultCache(tmp_path)
    cache.put_spec(SPEC, small_result())
    path = cache._path(cache.key(SPEC))
    path.write_bytes(garbage)
    assert cache.get_spec(SPEC) is None  # corrupted = miss
    assert cache.evictions == 1
    assert not path.exists()  # evicted from disk
    cache.put_spec(SPEC, small_result())  # caller heals the cache
    assert cache.get_spec(SPEC) is not None


# --- concurrent writers -----------------------------------------------------------


def _hammer(args):
    root, index = args
    cache = ResultCache(root)
    spec = CellSpec(program=f"int main() {{ return {index % 3}; }}")
    for _ in range(20):
        cache.put_spec(spec, small_result(spec))
        loaded = cache.get_spec(spec)
        # Entries are published atomically: a reader either misses (its
        # writer not yet done) or sees a complete, consistent envelope.
        assert loaded is None or loaded.spec == spec
    return cache.evictions


def test_concurrent_writers_never_corrupt(tmp_path):
    with multiprocessing.Pool(4) as pool:
        evictions = pool.map(_hammer, [(str(tmp_path), i) for i in range(8)])
    assert sum(evictions) == 0  # nobody ever observed a torn entry
    cache = ResultCache(tmp_path)
    assert len(cache) == 3
    for index in range(3):
        spec = CellSpec(program=f"int main() {{ return {index}; }}")
        assert cache.get_spec(spec) is not None
    # No temporary files leaked by the atomic-rename protocol.
    assert not list(tmp_path.rglob("*.tmp"))
