"""Verbatim reproductions of the paper's Tables 1 and 2.

Both tables show 68020 RTLs before and after code replication.  These
tests rebuild the "without replication" column in the paper's own
notation, run the relevant part of the pipeline, and assert the
distinctive features of the "with replication" column.
"""

from repro.cfg import build_function, check_function, find_loops
from repro.core import replicate_jumps
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_function
from repro.rtl import Compare, CondBranch, Jump, Return, parse_insns
from repro.targets import get_target


class TestTable1:
    """i = 1; while (i <= n) x[i-1] = x[i]; — exit test mid-loop."""

    WITHOUT = """
      d[1]=1;
    L15:
      d[0]=d[1];
      a[0]=a[0]+1;
      d[1]=d[1]+1;
      NZ=d[0]?L[_n.];
      PC=NZ>=0,L16;
      B[a[0]]=B[a[0]+1];
      PC=L15;
    L16:
      PC=RT;
    """

    def _replicated(self):
        func = build_function("t1", parse_insns(self.WITHOUT))
        replicate_jumps(func)
        check_function(func)
        return func

    def test_jump_per_iteration_eliminated(self):
        func = self._replicated()
        assert func.jump_count() == 0

    def test_test_sequence_duplicated(self):
        # The compare of d[0] against n now appears twice: once at the
        # original loop head, once in the replicated copy at the bottom.
        func = self._replicated()
        compares = [i for i in func.insns() if isinstance(i, Compare)]
        assert len(compares) == 2
        assert repr(compares[0]) == repr(compares[1])

    def test_replicated_branch_reversed(self):
        # Paper: "PC=NZ>=0,L16" becomes "PC=NZ<0,L000" in the copy.
        func = self._replicated()
        relations = sorted(
            i.rel for i in func.insns() if isinstance(i, CondBranch)
        )
        assert relations == ["<", ">="]

    def test_new_loop_has_no_jump(self):
        # After replication the loop is rotated: the back edge is the
        # reversed conditional branch, not an unconditional jump.
        func = self._replicated()
        info = find_loops(func)
        assert len(info.loops) == 1
        (loop,) = info.loops
        for tail, header in loop.back_edges:
            assert isinstance(tail.terminator, CondBranch)


class TestTable2:
    """if (i>5) i=i/n; else i=i*n; return i; — jump over the else-part."""

    SOURCE = """
    int work(int i, int n) {
        if (i > 5)
            i = i / n;
        else
            i = i * n;
        return i;
    }
    int main() { return work(9, 2); }
    """

    def _work(self, replication):
        program = compile_c(self.SOURCE)
        target = get_target("m68020")
        optimize_function(
            program.functions["work"],
            target,
            OptimizationConfig(replication=replication),
        )
        return program.functions["work"]

    def test_without_replication_one_return_one_jump(self):
        func = self._work("none")
        returns = sum(1 for i in func.insns() if isinstance(i, Return))
        assert returns == 1
        assert func.jump_count() == 1

    def test_with_replication_paths_return_separately(self):
        func = self._work("jumps")
        returns = sum(1 for i in func.insns() if isinstance(i, Return))
        assert returns == 2
        assert func.jump_count() == 0

    def test_both_divide_and_multiply_paths_survive(self):
        func = self._work("jumps")
        texts = [repr(i) for i in func.insns()]
        assert any("'/'" in t for t in texts)
        assert any("'*'" in t for t in texts)
