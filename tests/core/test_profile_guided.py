"""Profile-guided replication tests."""

import pytest

from repro.cfg import check_function
from repro.core import profile_guided_replication
from repro.ease import Interpreter, measure_program
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

# A program with one hot loop jump and one cold (error-path) jump.
SOURCE = """
int errors;

int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 200; i++) {
        s += i;
    }
    if (s < 0) {
        errors = errors + 1;
        while (errors < 3)
            errors = errors + 1;
    }
    printf("%d\\n", s);
    return 0;
}
"""


def reference():
    return Interpreter(compile_c(SOURCE)).run()


class TestProfileGuided:
    @pytest.mark.parametrize("target_name", ["m68020", "sparc"])
    @pytest.mark.parametrize("threshold", [0.0, 0.1, 1.0])
    def test_behaviour_preserved(self, target_name, threshold):
        ref = reference()
        program = compile_c(SOURCE)
        target = get_target(target_name)
        profile_guided_replication(program, target, threshold=threshold)
        for func in program.functions.values():
            check_function(func)
        got = Interpreter(program).run()
        assert got.output == ref.output
        assert got.exit_code == ref.exit_code

    def test_cold_jumps_kept(self):
        program = compile_c(SOURCE)
        target = get_target("sparc")
        result = profile_guided_replication(program, target, threshold=0.0)
        # The never-executed error path keeps its jump(s); the hot loop
        # jump was replaced.
        assert result.hot_jumps >= 1
        assert result.cold_jumps >= 1
        assert result.stats.jumps_replaced >= 1
        assert program.jump_count() >= 1  # cold code still has jumps

    def test_threshold_one_replicates_nothing_cold(self):
        program = compile_c(SOURCE)
        target = get_target("sparc")
        result = profile_guided_replication(program, target, threshold=1.1)
        assert result.hot_jumps == 0
        assert result.stats.jumps_replaced == 0

    def test_dynamic_savings_close_to_full_jumps(self):
        target = get_target("sparc")
        full = compile_c(SOURCE)
        optimize_program(full, target, OptimizationConfig(replication="jumps"))
        full_m = measure_program(full, target)

        pgo = compile_c(SOURCE)
        profile_guided_replication(pgo, target, threshold=0.0)
        pgo_m = measure_program(pgo, target)

        simple = compile_c(SOURCE)
        optimize_program(simple, target, OptimizationConfig(replication="none"))
        simple_m = measure_program(simple, target)

        full_saving = simple_m.dynamic_insns - full_m.dynamic_insns
        pgo_saving = simple_m.dynamic_insns - pgo_m.dynamic_insns
        assert full_saving > 0
        # PGO captures the lion's share of the hot-path savings.
        assert pgo_saving >= 0.6 * full_saving

    def test_profile_covers_all_blocks(self):
        program = compile_c(SOURCE)
        target = get_target("sparc")
        result = profile_guided_replication(program, target, threshold=0.5)
        assert result.profile  # (function, label) -> count
        assert all(count >= 0 for count in result.profile.values())
