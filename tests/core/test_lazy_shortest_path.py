"""Differential tests: the lazy Dijkstra engine vs the dense matrix.

Decision parity is the load-bearing property of this PR: the lazy engine
must answer every step-1 query *identically* to the Floyd/Warshall
oracle — not merely with equal costs, but with the very same canonical
paths and sequences — so the replication engine makes byte-identical
decisions regardless of which engine ran.  These tests compare the two
engines query-by-query on fuzzer CFGs and check the lazy distances
against networkx as an independent oracle.
"""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core import (
    LazyShortestPaths,
    ShortestPathMatrix,
    make_shortest_paths,
)
from repro.core.shortest_path import ENGINE_ENV
from repro.obs import observing
from tests.cfg.test_dominators import build_graph, random_edge_lists
from tests.conftest import function_from_text


def _labels(seq):
    return None if seq is None else [b.label for b in seq]


class TestLazyAgainstDense:
    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_all_pairs_distances_agree(self, data):
        n, edges = data
        func = build_graph(edges, n)
        dense = ShortestPathMatrix(func)
        lazy = LazyShortestPaths(func)
        for src in func.blocks:
            for dst in func.blocks:
                assert lazy.dist(src, dst) == dense.dist(src, dst), (
                    src.label,
                    dst.label,
                )

    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_all_pairs_paths_are_identical(self, data):
        # Stronger than equal cost: the canonical reconstruction makes
        # the chosen path a pure function of the distance values, so the
        # engines must return the *same block sequence*.
        n, edges = data
        func = build_graph(edges, n)
        dense = ShortestPathMatrix(func)
        lazy = LazyShortestPaths(func)
        for src in func.blocks:
            for dst in func.blocks:
                if dst is src:
                    continue
                assert _labels(lazy.path(src, dst)) == _labels(
                    dense.path(src, dst)
                ), (src.label, dst.label)

    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_step2_sequences_are_identical(self, data):
        n, edges = data
        func = build_graph(edges, n)
        dense = ShortestPathMatrix(func)
        lazy = LazyShortestPaths(func)
        for start in func.blocks:
            assert _labels(lazy.shortest_sequence_to_return(start)) == _labels(
                dense.shortest_sequence_to_return(start)
            ), start.label
            for follow in func.blocks:
                if follow is start:
                    continue
                assert _labels(
                    lazy.shortest_sequence_to_fallthrough(start, follow)
                ) == _labels(
                    dense.shortest_sequence_to_fallthrough(start, follow)
                ), (start.label, follow.label)


class TestLazyAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(random_edge_lists())
    def test_distances_match_dijkstra(self, data):
        n, edges = data
        func = build_graph(edges, n)
        engine = LazyShortestPaths(func)

        graph = nx.DiGraph()
        for block in func.blocks:
            graph.add_node(block.label)
        for block in func.blocks:
            for succ in block.succs:
                if succ is not block:
                    graph.add_edge(block.label, succ.label, weight=succ.size())

        for src in func.blocks:
            lengths = nx.single_source_dijkstra_path_length(graph, src.label)
            for dst in func.blocks:
                if dst is src:
                    continue
                mine = engine.dist(src, dst)
                if dst.label in lengths:
                    assert mine == lengths[dst.label] + src.size()
                else:
                    assert mine == float("inf")


class TestEngineSelection:
    def _func(self):
        return function_from_text("f", "PC=L1;\nL1:\n  PC=RT;")

    def test_factory_resolves_explicit_engine(self):
        assert isinstance(make_shortest_paths(self._func(), "dense"), ShortestPathMatrix)
        assert isinstance(make_shortest_paths(self._func(), "lazy"), LazyShortestPaths)

    def test_factory_defaults_to_lazy(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert isinstance(make_shortest_paths(self._func()), LazyShortestPaths)

    def test_factory_reads_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "dense")
        assert isinstance(make_shortest_paths(self._func()), ShortestPathMatrix)
        # An explicit argument beats the environment.
        assert isinstance(
            make_shortest_paths(self._func(), "lazy"), LazyShortestPaths
        )

    def test_factory_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="lazy/dense"):
            make_shortest_paths(self._func(), "quantum")

    def test_engine_choice_is_counted(self):
        with observing(spans=False) as obs:
            make_shortest_paths(self._func(), "lazy")
            make_shortest_paths(self._func(), "dense")
        assert obs.metrics.counters["sssp.engine.lazy"] == 1
        assert obs.metrics.counters["sssp.engine.dense"] == 1


class TestLaziness:
    def test_only_queried_sources_run_dijkstra(self):
        # A diamond with several blocks: querying two sources must run
        # exactly two Dijkstras (memoized on repeat), not one per block.
        func = function_from_text(
            "f",
            """
            PC=L2;
            L1:
              d[0]=1;
            L2:
              d[1]=2;
            L3:
              PC=RT;
            """,
        )
        with observing(spans=False) as obs:
            engine = LazyShortestPaths(func)
            a, b = func.blocks[0], func.blocks[1]
            engine.dist(a, func.blocks[-1])
            engine.dist(a, func.blocks[2])  # memoized row — no new run
            engine.shortest_sequence_to_return(b)
        runs = obs.metrics.counters["sssp.dijkstra_runs"]
        assert runs == 2
        assert obs.metrics.counters["sssp.relaxations"] >= runs
