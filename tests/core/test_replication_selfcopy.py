"""Replicating a jump whose sequence contains the jump block itself.

The step-1 shortest-path matrix is deliberately kept across replacements
within a sweep ("the matrix stays valid... recorded shortest paths
remain intact"), and step-3 loop completion splices whole natural loops
into a sequence.  Between the two, the selected sequence can end up
containing ``jump_block`` itself — the fuzz corpus produces the shape
(seed 71 of the unbounded campaign), where the completed outer loop's
members include the very block whose back-edge jump is being replaced.

The copy of ``jump_block`` must then replicate the jump like any other
block's terminator.  The engine once consumed the jump *before* building
the copies, which turned that copy into a terminator-less block: its
copied back edge silently vanished, the replicated inner loop ran once
instead of to completion, and execution fell through into unrelated code
— a miscompile the old ``max_rtls=64`` fuzz workaround happened to mask.
These tests pin ``_apply``'s contract directly with such a sequence.
"""

from repro.cfg import Program, check_function, compute_flow
from repro.cfg.analyses import get_analyses
from repro.cfg.block import BasicBlock, Function
from repro.core import CodeReplicator, Policy, ReplicationMode, clone_function
from repro.ease import Interpreter
from repro.rtl import (
    Assign,
    BinOp,
    Compare,
    CondBranch,
    Const,
    Jump,
    Reg,
    Return,
)

OUTER = Reg("d", 0)
INNER = Reg("d", 1)
ACC = Reg("d", 2)

#: 3 outer iterations x 3 inner iterations of ``acc += outer + inner``.
EXPECTED = sum(f + i for f in (3, 2, 1) for i in (0, 1, 2))


def nested_while_function() -> Function:
    """3 outer iterations, each running a 3-iteration inner while loop.

    ``B: Jump T`` is the inner back edge; the inner loop ``{T, B}`` is
    the natural loop whose completion splices ``B`` into a sequence
    starting at ``T``.
    """
    func = Function("main")
    init = BasicBlock("INIT")
    h = BasicBlock("H")
    t = BasicBlock("T")
    b = BasicBlock("B")
    e = BasicBlock("E")
    out = BasicBlock("OUT")
    func.blocks = [init, h, t, b, e, out]

    init.insns += [Assign(OUTER, Const(3)), Assign(ACC, Const(0))]
    # H: reset the inner counter, exit when the outer counter runs out.
    h.insns += [
        Assign(INNER, Const(0)),
        Compare(OUTER, Const(0)),
        CondBranch("<=", "OUT"),
    ]
    # T: the inner while test — falls into the body, exits to E.
    t.insns += [Compare(INNER, Const(3)), CondBranch(">=", "E")]
    # B: the inner body, closed by the jump under replication.
    b.insns += [
        Assign(ACC, BinOp("+", ACC, OUTER)),
        Assign(ACC, BinOp("+", ACC, INNER)),
        Assign(INNER, BinOp("+", INNER, Const(1))),
        Jump("T"),
    ]
    e.insns += [Assign(OUTER, BinOp("-", OUTER, Const(1))), Jump("H")]
    out.insns += [Assign(Reg("rv", 0), ACC), Return()]
    compute_flow(func)
    return func


def run(func: Function) -> int:
    program = Program()
    program.add_function(func)
    return Interpreter(program, max_steps=100_000).run().exit_code


def apply_self_copy(func: Function):
    """Drive ``_apply`` with the completed-loop sequence ``[T, B]``.

    This is exactly what step 3 hands step 4 when completion pulls the
    jump block's loop into the sequence: replicate ``B``'s ``Jump T``
    along the sequence ``T, B`` with fall-through follow ``E``.
    """
    replicator = CodeReplicator(mode=ReplicationMode.JUMPS, policy=Policy.SHORTEST)
    t = func.block_by_label("T")
    b = func.block_by_label("B")
    e = func.block_by_label("E")
    loops = get_analyses(func).loops()
    return replicator._apply(
        func,
        b,
        [t, b],
        e,
        True,
        loops,
        ("B", "T"),
    )


class TestJumpBlockInOwnSequence:
    def test_jump_block_copy_keeps_its_back_edge(self):
        func = nested_while_function()
        apply_self_copy(func)
        check_function(func)

        [b_copy] = [bl for bl in func.blocks if bl.replica_origin == "B"]
        term = b_copy.terminator
        assert isinstance(term, Jump), (
            f"copy of B lost its back edge (terminator={term!r})"
        )
        # ...and the copied back edge targets the in-sequence copy of T,
        # not the original (which would re-enter the uncopied loop).
        [t_copy] = [bl for bl in func.blocks if bl.replica_origin == "T"]
        assert term.target == t_copy.label
        # The jump block itself lost its jump and now falls through into
        # the copied loop.
        b = func.block_by_label("B")
        assert b.terminator is None
        assert func.next_block(b) is t_copy

    def test_self_copy_preserves_behaviour(self):
        func = nested_while_function()
        assert run(func) == EXPECTED
        apply_self_copy(func)
        check_function(func)
        # The pop-before-copy bug made the copied inner loop fall through
        # to E after one iteration instead of looping: acc lost the
        # third inner term of every outer iteration.
        assert run(func) == EXPECTED

    def test_undo_restores_the_function_exactly(self):
        func = nested_while_function()
        reference_labels = [bl.label for bl in func.blocks]
        undo, _created = apply_self_copy(func)
        undo()
        assert [bl.label for bl in func.blocks] == reference_labels
        b = func.block_by_label("B")
        assert isinstance(b.terminator, Jump)
        assert b.terminator.target == "T"
        assert run(func) == EXPECTED

    def test_full_jumps_preserves_behaviour_unbounded(self):
        # End to end: the whole engine, no RTL bound, no valve pressure.
        func = nested_while_function()
        replicated = clone_function(func)
        stats = CodeReplicator(
            mode=ReplicationMode.JUMPS, policy=Policy.SHORTEST
        ).run(replicated)
        check_function(replicated)
        assert run(replicated) == EXPECTED
        assert stats.valve_trips == 0
