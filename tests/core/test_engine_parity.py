"""End-to-end decision parity: lazy and dense engines, same decisions.

The acceptance bar for the lazy step-1 engine is not "equally good"
replication but *the same* replication: identical decision logs (every
candidate jump examined, in order, with the same outcome, sequence kind
and sizes) and identical final RTL.  This is checked on the adversarial
random-CFG fuzzer (unstructured graphs: backward branches, multiple
returns) and on random mini-C programs (while / do-while / bounded
forward goto — the shapes the paper is about), through the full
optimizer pipeline.
"""

from hypothesis import HealthCheck, given, settings

from repro.cfg import check_function
from repro.core import CodeReplicator, Policy, ReplicationMode, clone_function
from repro.obs import observing
from repro.rtl import format_function
from tests.core.test_random_cfgs import random_functions
from tests.integration.test_random_programs import programs


def _bounded(engine):
    return CodeReplicator(
        mode=ReplicationMode.JUMPS,
        policy=Policy.SHORTEST,
        max_replications_per_function=60,
        max_function_blocks=120,
        engine=engine,
    )


def _run_engine(func, engine):
    """(decision rows, final RTL text) of one bounded JUMPS run."""
    work = clone_function(func)
    with observing(spans=False) as obs:
        _bounded(engine).run(work)
    check_function(work)
    return obs.decisions.as_dicts(), format_function(work)


class TestFuzzedCFGParity:
    @settings(max_examples=50, deadline=None)
    @given(random_functions())
    def test_identical_decision_log_and_rtl(self, func):
        lazy_decisions, lazy_rtl = _run_engine(func, "lazy")
        dense_decisions, dense_rtl = _run_engine(func, "dense")
        assert lazy_decisions == dense_decisions
        assert lazy_rtl == dense_rtl

    @settings(max_examples=30, deadline=None)
    @given(random_functions())
    def test_loops_mode_parity(self, func):
        results = {}
        for engine in ("lazy", "dense"):
            work = clone_function(func)
            with observing(spans=False) as obs:
                CodeReplicator(
                    mode=ReplicationMode.LOOPS,
                    policy=Policy.FAVOR_LOOPS,
                    engine=engine,
                ).run(work)
            results[engine] = (obs.decisions.as_dicts(), format_function(work))
        assert results["lazy"] == results["dense"]


class TestMiniCPipelineParity:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(programs())
    def test_full_pipeline_identical_output(self, source):
        from repro.frontend import compile_c
        from repro.opt import OptimizationConfig, optimize_program
        from repro.targets import get_target

        results = {}
        for engine in ("lazy", "dense"):
            program = compile_c(source)
            with observing(spans=False) as obs:
                optimize_program(
                    program,
                    get_target("sparc"),
                    OptimizationConfig(replication="jumps", spm_engine=engine),
                )
            rtl = "\n\n".join(
                format_function(f) for f in program.functions.values()
            )
            results[engine] = (obs.decisions.as_dicts(), rtl)
        assert results["lazy"][0] == results["dense"][0], source
        assert results["lazy"][1] == results["dense"][1], source
