"""ReplicationStats merge: every field must participate.

The regression these tests pin down: ``optimize_program`` merges one
``ReplicationStats`` per function into a program-wide total.  A field
added to the dataclass but forgotten by ``merge`` would silently report
zero across the suite, so the tests iterate ``dataclasses.fields``
instead of naming fields — adding a field automatically extends them.
"""

import dataclasses

from repro.core.replication import ReplicationStats


class TestMergeCoversEveryField:
    def test_every_field_is_an_int_counter_with_zero_default(self):
        for spec in dataclasses.fields(ReplicationStats):
            assert spec.type in ("int", int), f"{spec.name} must be a counter"
            assert spec.default == 0, f"{spec.name} must default to zero"

    def test_merge_adds_every_field(self):
        ones = ReplicationStats(
            **{spec.name: 1 for spec in dataclasses.fields(ReplicationStats)}
        )
        total = ReplicationStats(
            **{spec.name: 1 for spec in dataclasses.fields(ReplicationStats)}
        )
        total.merge(ones)
        for spec in dataclasses.fields(ReplicationStats):
            assert getattr(total, spec.name) == 2, (
                f"merge() dropped field {spec.name!r}"
            )

    def test_merge_with_distinct_values_per_field(self):
        field_names = [spec.name for spec in dataclasses.fields(ReplicationStats)]
        a = ReplicationStats(**{n: i + 1 for i, n in enumerate(field_names)})
        b = ReplicationStats(**{n: 10 * (i + 1) for i, n in enumerate(field_names)})
        a.merge(b)
        for i, name in enumerate(field_names):
            assert getattr(a, name) == 11 * (i + 1)

    def test_merge_leaves_other_untouched(self):
        a = ReplicationStats(jumps_replaced=1)
        b = ReplicationStats(jumps_replaced=2)
        a.merge(b)
        assert b.jumps_replaced == 2

    def test_as_dict_covers_every_field(self):
        stats = ReplicationStats()
        field_names = {
            spec.name for spec in dataclasses.fields(ReplicationStats)
        }
        keys = set(stats.as_dict())
        assert field_names <= keys
        # The only non-field key is the derived valve-trip total.
        assert keys - field_names == {"valve_trips"}

    def test_valve_trips_derives_from_split_counters(self):
        stats = ReplicationStats(valve_block_trips=2, valve_budget_trips=5)
        assert stats.valve_trips == 7
        assert stats.as_dict()["valve_trips"] == 7

    def test_repr_stays_informative(self):
        text = repr(ReplicationStats(jumps_replaced=3, rtls_replicated=9))
        assert "replaced=3" in text and "rtls=9" in text
