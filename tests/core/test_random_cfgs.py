"""Property-based testing of the replication engine on random CFGs.

Random *unstructured* flow graphs — backward conditional branches, forward
jumps, multiple returns — exercise the loop-completion, retargeting and
reducibility machinery (steps 3–6) far beyond what structured C programs
produce.  Termination is guaranteed by construction: every block burns one
unit of fuel and conditional branches stop being taken once the fuel is
gone, while unconditional jumps only go forward.

Checked properties, per generated function:

* the engine output is structurally well-formed;
* observable behaviour (the returned register value) is unchanged;
* JUMPS leaves no replaceable unconditional jumps behind (some may remain
  flagged — infinite-loop or irreducibility cases);
* a reducible input stays reducible (step 6).
"""

from hypothesis import given, settings, strategies as st

from repro.cfg import Program, check_function, compute_flow, is_reducible
from repro.cfg.block import BasicBlock, Function
from repro.core import (
    CodeReplicator,
    Policy,
    ReplicationMode,
    clone_function,
    replicate_loop_tests,
)
from repro.ease import Interpreter
from repro.rtl import (
    Assign,
    BinOp,
    Compare,
    CondBranch,
    Const,
    Jump,
    Reg,
    Return,
)

FUEL = Reg("d", 6)
ACC = Reg("d", 0)


@st.composite
def random_functions(draw):
    n_blocks = draw(st.integers(min_value=3, max_value=9))
    func = Function("main")
    # A dedicated entry block initializes the fuel and the registers; it
    # is never a branch target, so the fuel cannot be re-armed by a
    # backward branch (which would break the termination argument).
    entry = BasicBlock("INIT")
    entry.insns.append(Assign(FUEL, Const(draw(st.integers(20, 120)))))
    for k in range(4):
        entry.insns.append(Assign(Reg("d", k), Const(draw(st.integers(-9, 9)))))
    blocks = [BasicBlock(f"N{i}") for i in range(n_blocks)]
    func.blocks = [entry] + blocks

    for index, block in enumerate(blocks):
        # Burn fuel.
        block.insns.append(Assign(FUEL, BinOp("-", FUEL, Const(1))))
        # A few register computations.
        for _ in range(draw(st.integers(0, 2))):
            dst = Reg("d", draw(st.integers(0, 3)))
            op = draw(st.sampled_from(["+", "-", "*", "^", "&", "|"]))
            left = Reg("d", draw(st.integers(0, 3)))
            right = draw(
                st.one_of(
                    st.integers(-7, 7).map(Const),
                    st.integers(0, 3).map(lambda k: Reg("d", k)),
                )
            )
            block.insns.append(Assign(dst, BinOp(op, left, right)))

        is_last = index == n_blocks - 1
        kind = draw(st.sampled_from(["fall", "jump", "return", "cond", "cond"]))
        if is_last or kind == "return":
            block.insns.append(Assign(Reg("rv", 0), ACC))
            block.insns.append(Return())
        elif kind == "jump":
            target = draw(st.integers(index + 1, n_blocks - 1))
            block.insns.append(Jump(f"N{target}"))
        elif kind == "cond":
            # A conditional branch anywhere (possibly backward), taken only
            # while fuel remains; otherwise falls through.
            target = draw(st.integers(0, n_blocks - 1))
            if target != index:
                block.insns.append(Compare(FUEL, Const(0)))
                block.insns.append(CondBranch(">", f"N{target}"))
        # "fall": implicit fall-through to the next block.
    compute_flow(func)
    return func


def bounded_jumps(func: Function) -> None:
    """JUMPS with small budgets: adversarial graphs can cascade."""
    CodeReplicator(
        mode=ReplicationMode.JUMPS,
        policy=Policy.SHORTEST,
        max_replications_per_function=60,
        max_function_blocks=120,
    ).run(func)


def run(func: Function) -> int:
    program = Program()
    program.add_function(func)
    return Interpreter(program, max_steps=2_000_000).run().exit_code


class TestEngineOnRandomCFGs:
    @settings(max_examples=40, deadline=None)
    @given(random_functions())
    def test_jumps_preserves_behaviour(self, func):
        reference = run(func)
        was_reducible = is_reducible(func)
        replicated = clone_function(func)
        bounded_jumps(replicated)
        check_function(replicated)
        assert run(replicated) == reference
        if was_reducible:
            assert is_reducible(replicated)

    @settings(max_examples=50, deadline=None)
    @given(random_functions())
    def test_loops_mode_preserves_behaviour(self, func):
        reference = run(func)
        replicated = clone_function(func)
        replicate_loop_tests(replicated)
        check_function(replicated)
        assert run(replicated) == reference

    @settings(max_examples=40, deadline=None)
    @given(random_functions())
    def test_remaining_jumps_are_flagged(self, func):
        replicated = clone_function(func)
        bounded_jumps(replicated)
        for insn in replicated.insns():
            if isinstance(insn, Jump):
                target = replicated.block_by_label(insn.target)
                # Every surviving jump is either flagged unreplaceable or a
                # genuine self-loop.
                assert insn.no_replicate or target.insns[0] is insn or True
                assert insn.no_replicate or any(
                    b for b in replicated.blocks if b.insns and b.insns[-1] is insn and b is target
                )

    @settings(max_examples=60, deadline=None)
    @given(random_functions())
    def test_instruction_multiset_only_grows(self, func):
        original = [
            repr(i)
            for b in func.blocks
            for i in b.insns
            if not i.is_transfer()
        ]
        replicated = clone_function(func)
        bounded_jumps(replicated)
        grown = [
            repr(i)
            for b in replicated.blocks
            for i in b.insns
            if not i.is_transfer()
        ]
        for text in set(original):
            assert grown.count(text) >= original.count(text)
