"""The JUMPS safety valves on cascading flow graphs.

Fuzzed goto/switch-into-loop shapes can make unbounded replication
cascade: every sweep's copies manufacture fresh unconditional jumps for
the next sweep ("replication ad infinitum", §5.2).  Two valves bound the
growth — the ``max_function_blocks`` cap and the per-run replication
budget — and :class:`repro.core.replication.ReplicationStats` counts
their trips in ``valve_trips`` so callers can tell a bounded-growth
leftover from an algorithmic one.

The fuzz campaign (``repro fuzz``) runs with the §6 ``max_rtls=64``
bound precisely to stay clear of the valve on such shapes; the tests
here pin both halves of that contract.
"""

from repro.core.replication import (
    CodeReplicator,
    Policy,
    ReplicationMode,
    ReplicationStats,
    clone_function,
)
from repro.frontend.codegen import compile_c
from repro.opt.driver import OptimizationConfig, optimize_program
from repro.targets.machine import get_target

# ``repro.verify.fuzz.generate_program(10)``: a switch inside a nested
# loop followed by a guarded goto.  Unbounded JUMPS replication cascades
# on this shape; the §6 bound converges quickly.
CASCADING_SOURCE = """int main() {
    int a, b, c, d;
    int i0;
    int i1;
    int i2;
    a = 6;
    b = -18;
    c = -20;
    d = 8;
    d = 9;
    i0 = 0;
    do {
        i0 = i0 + 1;
        break;
    } while (i0 < 3);
    d += 45;
    for (i1 = 0; i1 < 1; i1++) {
        i2 = 0;
        while (i2 < 2) {
            i2 = i2 + 1;
            switch (c & 7) {
            case 0:
                c = (c | b);
                break;
            case 1:
                d = -33;
                break;
            case 2:
                c = (d & c);
                break;
            default:
                b = (-12 << 1);
            }
        }
    }
    if (!((b > b) || ((((b | b) * (c >> 6)) * a) > (b & b)))) {
        goto L0;
    }
        b = b;
    L0: a = a;
    printf("%d %d %d %d\\n", a, b, c, d);
    return (a ^ b ^ c ^ d) & 255;
}
"""

# The hypothesis-found goto-into-do-while shape whose cascade exhausts
# the replication *budget* (not the block cap) inside the full pipeline.
BUDGET_CASCADE_SOURCE = """int main() {
    int a, b, c, d;
    int i0;
    int i1;
    a = 10;
    b = 19;
    c = -9;
    d = -18;
    for (i0 = 0; i0 < 5; i0++) {
        i1 = 0;
        do {
            i1 = i1 + 1;
            if (((d * -40) == 32) || (!(-43 > -18))) {
                goto L0;
            }
                d = -31;
            L0: c = c;
        } while (i1 < 3);
    }
    printf("%d %d %d %d\\n", a, b, c, d);
    return (a ^ b ^ c ^ d) & 255;
}
"""


def _main_function(source):
    program = compile_c(source)
    return program.functions["main"]


class TestBlockValve:
    def test_unbounded_replication_trips_the_block_valve(self):
        # A reduced cap keeps the test fast; the code path is the same
        # one the 4000-block production valve takes.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            policy=Policy.SHORTEST,
            max_rtls=None,
            max_function_blocks=400,
        )
        stats = replicator.run(func)
        assert stats.valve_trips >= 1
        assert len(func.blocks) >= 400

    def test_campaign_max_rtls_bound_avoids_the_valve(self):
        # The fuzz campaign's §6 bound: same shape, same cap, but the
        # sequence-length limit converges well under the valve.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            policy=Policy.SHORTEST,
            max_rtls=64,
            max_function_blocks=400,
        )
        stats = replicator.run(func)
        assert stats.valve_trips == 0
        assert len(func.blocks) < 400

    def test_valve_stops_growth_not_correctness(self):
        # The valve may leave unconditional jumps behind; it must never
        # corrupt the graph.  The tripped function still has every jump
        # target resolvable.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            max_rtls=None,
            max_function_blocks=400,
        )
        replicator.run(func)
        from repro.rtl.insn import Jump

        for block in func.blocks:
            term = block.terminator
            if isinstance(term, Jump):
                func.block_by_label(term.target)  # raises KeyError if broken


class TestBudgetValve:
    def test_pipeline_budget_valve_reports_in_stats(self):
        # Through the full optimizer: each replication pass invocation
        # re-arms the budget, and the cascade exhausts it repeatedly.
        # The merged stats must say so — this is what lets the fuzz
        # property suite distinguish a valve leftover from a JUMPS bug.
        program = compile_c(BUDGET_CASCADE_SOURCE)
        stats = optimize_program(
            program,
            get_target("sparc"),
            OptimizationConfig(replication="jumps"),
        )
        assert stats.valve_trips >= 1

    def test_budget_exhaustion_counts_once_per_run(self):
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            max_rtls=None,
            max_replications_per_function=10,
        )
        stats = replicator.run(func)
        assert stats.jumps_replaced == 10
        assert stats.valve_trips == 1

    def test_fixpoint_run_has_no_valve_trips(self):
        # A benign program reaches the fixpoint without tripping.
        func = _main_function(
            "int main() { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) { s = s + i; }"
            " return s; }"
        )
        replicator = CodeReplicator(mode=ReplicationMode.JUMPS)
        stats = replicator.run(func)
        assert stats.valve_trips == 0


class TestStatsPlumbing:
    def test_valve_trips_merges(self):
        a = ReplicationStats(valve_trips=2)
        b = ReplicationStats(valve_trips=3)
        a.merge(b)
        assert a.valve_trips == 5

    def test_valve_trips_in_as_dict(self):
        assert ReplicationStats().as_dict()["valve_trips"] == 0

    def test_clone_preserves_cascade_determinism(self):
        # Valve behavior is deterministic: two clones of the same
        # function trip identically.
        func = _main_function(CASCADING_SOURCE)
        runs = []
        for _ in range(2):
            clone = clone_function(func)
            replicator = CodeReplicator(
                mode=ReplicationMode.JUMPS,
                max_rtls=None,
                max_function_blocks=400,
            )
            stats = replicator.run(clone)
            runs.append(
                (stats.valve_trips, stats.jumps_replaced, len(clone.blocks))
            )
        assert runs[0] == runs[1]
