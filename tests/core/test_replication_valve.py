"""Convergence guard vs. safety valves on cascading flow graphs.

Fuzzed goto/switch-into-loop shapes used to make unbounded replication
cascade: completed-loop copies keep an explicit back-edge jump, the next
sweep replicates that jump, copying the loop again — "replication ad
infinitum" (§5.2).  The root fix is the *convergence guard*: every
replica block records the identities (origin-label pairs) of the jumps
whose replication created it, and the engine refuses to replicate a jump
whose identity already appears in its own block's ancestry.  Identities
are drawn from the finite set of original label pairs and ancestry
strictly grows along creation chains, so every run reaches a fixpoint.

The two valves — the ``max_function_blocks`` cap and the per-run
replication budget — remain as backstops only, with their trips counted
separately (``valve_block_trips`` / ``valve_budget_trips``) so callers
can tell "the function exploded" from "the run was cut short".  The
tests here pin both halves: guard on ⇒ convergence without valves;
guard off ⇒ the valves still catch the historical cascade.
"""

from repro.core.replication import (
    CodeReplicator,
    Policy,
    ReplicationMode,
    ReplicationStats,
    clone_function,
)
from repro.frontend.codegen import compile_c
from repro.opt.driver import OptimizationConfig, optimize_program
from repro.targets.machine import get_target

# ``repro.verify.fuzz.generate_program(10)``: a switch inside a nested
# loop followed by a guarded goto.  Unbounded JUMPS replication cascaded
# on this shape before the convergence guard.
CASCADING_SOURCE = """int main() {
    int a, b, c, d;
    int i0;
    int i1;
    int i2;
    a = 6;
    b = -18;
    c = -20;
    d = 8;
    d = 9;
    i0 = 0;
    do {
        i0 = i0 + 1;
        break;
    } while (i0 < 3);
    d += 45;
    for (i1 = 0; i1 < 1; i1++) {
        i2 = 0;
        while (i2 < 2) {
            i2 = i2 + 1;
            switch (c & 7) {
            case 0:
                c = (c | b);
                break;
            case 1:
                d = -33;
                break;
            case 2:
                c = (d & c);
                break;
            default:
                b = (-12 << 1);
            }
        }
    }
    if (!((b > b) || ((((b | b) * (c >> 6)) * a) > (b & b)))) {
        goto L0;
    }
        b = b;
    L0: a = a;
    printf("%d %d %d %d\\n", a, b, c, d);
    return (a ^ b ^ c ^ d) & 255;
}
"""

# The hypothesis-found goto-into-do-while shape whose cascade exhausted
# the replication *budget* (not the block cap) inside the full pipeline
# before the convergence guard.
BUDGET_CASCADE_SOURCE = """int main() {
    int a, b, c, d;
    int i0;
    int i1;
    a = 10;
    b = 19;
    c = -9;
    d = -18;
    for (i0 = 0; i0 < 5; i0++) {
        i1 = 0;
        do {
            i1 = i1 + 1;
            if (((d * -40) == 32) || (!(-43 > -18))) {
                goto L0;
            }
                d = -31;
            L0: c = c;
        } while (i1 < 3);
    }
    printf("%d %d %d %d\\n", a, b, c, d);
    return (a ^ b ^ c ^ d) & 255;
}
"""


def _main_function(source):
    program = compile_c(source)
    return program.functions["main"]


class TestConvergenceGuard:
    def test_cascading_shape_converges_unbounded(self):
        # The historical non-termination reproducer: unbounded max_rtls,
        # no valve needed — the guard cuts the cascade at its root and
        # the run reaches a genuine fixpoint well under the block cap.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            policy=Policy.SHORTEST,
            max_rtls=None,
            max_function_blocks=400,
        )
        stats = replicator.run(func)
        assert stats.valve_trips == 0
        assert stats.guard_stops >= 1
        assert len(func.blocks) < 400

    def test_budget_cascade_converges_through_pipeline(self):
        # Through the full optimizer with the guard on: every replication
        # pass invocation reaches a fixpoint; no valve trips anywhere.
        program = compile_c(BUDGET_CASCADE_SOURCE)
        stats = optimize_program(
            program,
            get_target("sparc"),
            OptimizationConfig(replication="jumps"),
        )
        assert stats.valve_trips == 0
        assert stats.guard_stops >= 1

    def test_guard_leaves_graph_well_formed(self):
        # Guarded jumps stay behind as ordinary kept jumps; every jump
        # target must still resolve.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            max_rtls=None,
        )
        replicator.run(func)
        from repro.rtl.insn import Jump

        for block in func.blocks:
            term = block.terminator
            if isinstance(term, Jump):
                func.block_by_label(term.target)  # raises KeyError if broken

    def test_guard_deterministic_across_clones(self):
        # Guard decisions hang off block provenance, which cloning must
        # preserve: two clones of the same function converge identically.
        func = _main_function(CASCADING_SOURCE)
        runs = []
        for _ in range(2):
            clone = clone_function(func)
            replicator = CodeReplicator(
                mode=ReplicationMode.JUMPS,
                max_rtls=None,
            )
            stats = replicator.run(clone)
            runs.append(
                (
                    stats.guard_stops,
                    stats.jumps_replaced,
                    stats.valve_trips,
                    len(clone.blocks),
                )
            )
        assert runs[0] == runs[1]

    def test_guard_idle_on_benign_program(self):
        # A benign program reaches the fixpoint without the guard ever
        # firing — the guard only bites on self-similar expansion.
        func = _main_function(
            "int main() { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) { s = s + i; }"
            " return s; }"
        )
        replicator = CodeReplicator(mode=ReplicationMode.JUMPS)
        stats = replicator.run(func)
        assert stats.valve_trips == 0
        assert stats.guard_stops == 0


class TestBlockValveBackstop:
    def test_unbounded_replication_trips_the_block_valve(self):
        # With the guard disabled, the historical cascade still exists
        # and the block valve must catch it — this pins the backstop
        # code path (a reduced cap keeps the test fast; it is the same
        # path the 4000-block production valve takes).
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            policy=Policy.SHORTEST,
            max_rtls=None,
            max_function_blocks=400,
            convergence_guard=False,
        )
        stats = replicator.run(func)
        assert stats.valve_block_trips >= 1
        assert stats.valve_budget_trips == 0
        assert len(func.blocks) >= 400

    def test_campaign_max_rtls_bound_avoids_the_valve(self):
        # The §6 sequence-length bound alone (the fuzz campaign's old
        # workaround) converges well under the valve even guard-less.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            policy=Policy.SHORTEST,
            max_rtls=64,
            max_function_blocks=400,
            convergence_guard=False,
        )
        stats = replicator.run(func)
        assert stats.valve_trips == 0
        assert len(func.blocks) < 400

    def test_valve_stops_growth_not_correctness(self):
        # The valve may leave unconditional jumps behind; it must never
        # corrupt the graph.  The tripped function still has every jump
        # target resolvable.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            max_rtls=None,
            max_function_blocks=400,
            convergence_guard=False,
        )
        replicator.run(func)
        from repro.rtl.insn import Jump

        for block in func.blocks:
            term = block.terminator
            if isinstance(term, Jump):
                func.block_by_label(term.target)  # raises KeyError if broken


class TestBudgetValveBackstop:
    def test_budget_exhaustion_counts_once_per_run(self):
        # A tiny budget cut short mid-cascade reports exactly one
        # budget trip and zero block trips — the causes are separate.
        func = _main_function(CASCADING_SOURCE)
        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            max_rtls=None,
            max_replications_per_function=10,
            convergence_guard=False,
        )
        stats = replicator.run(func)
        assert stats.jumps_replaced == 10
        assert stats.valve_budget_trips == 1
        assert stats.valve_block_trips == 0
        assert stats.valve_trips == 1

    def test_pipeline_valve_backstop_reports_in_stats(self):
        # With the guard disabled the goto-into-do-while cascade still
        # runs away inside the full pipeline (every do-while iteration
        # re-arms replication) and the valves must catch it; merged
        # stats report the trips with their cause attributed.
        program = compile_c(BUDGET_CASCADE_SOURCE)
        config = OptimizationConfig(replication="jumps", convergence_guard=False)
        stats = optimize_program(program, get_target("sparc"), config)
        assert stats.valve_trips >= 1
        assert stats.valve_trips == (
            stats.valve_block_trips + stats.valve_budget_trips
        )


class TestStatsPlumbing:
    def test_valve_trips_is_derived_total(self):
        stats = ReplicationStats(valve_block_trips=2, valve_budget_trips=3)
        assert stats.valve_trips == 5

    def test_valve_counters_merge(self):
        a = ReplicationStats(valve_block_trips=2, valve_budget_trips=1)
        b = ReplicationStats(valve_block_trips=3, guard_stops=4)
        a.merge(b)
        assert a.valve_block_trips == 5
        assert a.valve_budget_trips == 1
        assert a.guard_stops == 4
        assert a.valve_trips == 6

    def test_as_dict_includes_derived_and_split_counters(self):
        data = ReplicationStats(valve_budget_trips=1, guard_stops=2).as_dict()
        assert data["valve_trips"] == 1
        assert data["valve_budget_trips"] == 1
        assert data["valve_block_trips"] == 0
        assert data["guard_stops"] == 2
