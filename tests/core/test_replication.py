"""Behavioural tests of the replication engine (JUMPS and LOOPS)."""

import pytest

from repro.cfg import check_function, compute_flow, find_loops, is_reducible
from repro.core import (
    CodeReplicator,
    Policy,
    ReplicationMode,
    clone_function,
    replicate_jumps,
    replicate_loop_tests,
)
from repro.rtl import Jump
from tests.conftest import function_from_text


MID_EXIT_LOOP = """
  d[1]=1;
L15:
  d[0]=d[1];
  a[0]=a[0]+1;
  d[1]=d[1]+1;
  NZ=d[0]?L[_n.];
  PC=NZ>=0,L16;
  B[a[0]]=B[a[0]+1];
  PC=L15;
L16:
  PC=RT;
"""

IF_THEN_ELSE = """
  NZ=L[FP+i.]?5;
  PC=NZ<=0,L22;
  d[0]=L[FP+i.];
  d[0]=d[0]/L[FP+n.];
  L[FP+i.]=d[0];
  PC=L23;
L22:
  d[0]=L[FP+i.];
  d[0]=d[0]*L[FP+n.];
  L[FP+i.]=d[0];
L23:
  a[6]=L[FP+old.];
  PC=RT;
"""

FOR_LOOP = """
  d[0]=0;
  PC=L2;
L1:
  d[1]=d[1]+d[0];
  d[0]=d[0]+1;
L2:
  NZ=d[0]?10;
  PC=NZ<0,L1;
  PC=RT;
"""

WHILE_LOOP = """
L1:
  NZ=d[0]?10;
  PC=NZ>=0,L2;
  d[0]=d[0]+1;
  PC=L1;
L2:
  PC=RT;
"""


class TestJumps:
    @pytest.mark.parametrize(
        "text", [MID_EXIT_LOOP, IF_THEN_ELSE, FOR_LOOP, WHILE_LOOP]
    )
    def test_all_jumps_eliminated(self, text):
        func = function_from_text("f", text)
        stats = replicate_jumps(func)
        check_function(func)
        assert func.jump_count() == 0
        assert stats.jumps_replaced >= 1
        assert is_reducible(func)

    def test_table2_paths_return_separately(self):
        func = function_from_text("f", IF_THEN_ELSE)
        replicate_jumps(func)
        returns = [b for b in func.blocks if b.ends_in_return()]
        assert len(returns) == 2

    def test_mid_exit_loop_rotated(self):
        # Table 1: the copied test branches *back into* the loop with the
        # relation reversed, and the loop loses its per-iteration jump.
        func = function_from_text("f", MID_EXIT_LOOP)
        before_relations = [
            insn.rel for insn in func.insns() if hasattr(insn, "rel")
        ]
        replicate_jumps(func)
        after_relations = [
            insn.rel for insn in func.insns() if hasattr(insn, "rel")
        ]
        assert before_relations == [">="]
        assert sorted(after_relations) == ["<", ">="]
        loops = find_loops(func)
        assert len(loops.loops) == 1
        # The loop no longer contains an unconditional jump.
        for block in loops.loops[0].blocks:
            assert not block.ends_in_jump()

    def test_jump_to_next_block_simply_removed(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L1;
            L1:
              PC=RT;
            """,
        )
        stats = replicate_jumps(func)
        assert stats.jumps_replaced == 1
        assert stats.rtls_replicated == 0
        assert func.jump_count() == 0

    def test_infinite_loop_jump_kept(self):
        func = function_from_text(
            "f",
            """
            L1:
              d[0]=d[0]+1;
              PC=L1;
            """,
        )
        replicate_jumps(func)
        assert func.jump_count() == 1  # nothing can replace it (§5.2)

    def test_jump_to_indirect_jump_kept(self):
        # Paths containing indirect jumps are excluded from replication.
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L5;
            d[1]=2;
            L5:
              PC=L[a[0]]<L6,L7>;
            L6:
              PC=RT;
            L7:
              PC=RT;
            """,
        )
        stats = replicate_jumps(func)
        assert func.jump_count() == 1
        assert stats.jumps_kept >= 1

    def test_max_rtls_limits_replication(self):
        # §6 future work: bounding the replication sequence length.
        func = function_from_text("f", IF_THEN_ELSE)
        stats = replicate_jumps(func, max_rtls=1)
        assert stats.jumps_replaced == 0
        assert func.jump_count() == 1

    def test_semantic_instruction_multiset_grows_only(self):
        # Replication may only *copy* instructions, never remove non-jump
        # ones: every non-transfer RTL of the original must still be there.
        func = function_from_text("f", MID_EXIT_LOOP)
        original = clone_function(func)
        replicate_jumps(func)
        original_texts = [
            repr(i) for b in original.blocks for i in b.insns if not i.is_transfer()
        ]
        new_texts = [
            repr(i) for b in func.blocks for i in b.insns if not i.is_transfer()
        ]
        for text in set(original_texts):
            assert new_texts.count(text) >= original_texts.count(text)

    def test_policy_favor_returns_prefers_return_sequences(self):
        # A jump whose target can either reach a return (long) or fall into
        # the follow block (short): FAVOR_RETURNS picks the return even
        # though it replicates more RTLs.
        text = """
        d[0]=0;
        PC=L2;
        L1:
          d[1]=d[1]+d[0];
          d[0]=d[0]+1;
        L2:
          NZ=d[0]?10;
          PC=NZ<0,L1;
          d[7]=1;
          d[7]=2;
          d[7]=3;
          PC=RT;
        """
        func_loops = function_from_text("f", text)
        func_returns = function_from_text("f", text)
        stats_loops = replicate_jumps(func_loops, policy=Policy.FAVOR_LOOPS)
        stats_returns = replicate_jumps(func_returns, policy=Policy.FAVOR_RETURNS)
        assert stats_returns.rtls_replicated > stats_loops.rtls_replicated

    def test_replication_count_capped(self):
        replicator = CodeReplicator(max_replications_per_function=1)
        func = function_from_text("f", IF_THEN_ELSE)
        func2 = function_from_text("g", MID_EXIT_LOOP)
        stats = replicator.run(func)
        assert stats.jumps_replaced <= 1
        stats2 = replicator.run(func2)
        assert stats2.jumps_replaced <= 1


class TestLoopsMode:
    def test_for_loop_rotation(self):
        func = function_from_text("f", FOR_LOOP)
        stats = replicate_loop_tests(func)
        check_function(func)
        assert stats.jumps_replaced == 1
        assert func.jump_count() == 0
        # The test block now appears twice: before the body and at the end.
        compares = sum(1 for i in func.insns() if type(i).__name__ == "Compare")
        assert compares == 2

    def test_while_loop_backjump_replaced(self):
        func = function_from_text("f", WHILE_LOOP)
        stats = replicate_loop_tests(func)
        assert stats.jumps_replaced == 1
        assert func.jump_count() == 0

    def test_if_then_else_not_touched_by_loops_mode(self):
        # LOOPS only replicates loop termination conditions; the jump over
        # an else-part stays.
        func = function_from_text("f", IF_THEN_ELSE)
        stats = replicate_loop_tests(func)
        assert stats.jumps_replaced == 0
        assert func.jump_count() == 1

    def test_loops_mode_is_subset_of_jumps_mode(self):
        for text in (MID_EXIT_LOOP, IF_THEN_ELSE, FOR_LOOP, WHILE_LOOP):
            via_loops = function_from_text("f", text)
            via_jumps = function_from_text("f", text)
            loops_stats = replicate_loop_tests(via_loops)
            jumps_stats = replicate_jumps(via_jumps)
            assert loops_stats.jumps_replaced <= jumps_stats.jumps_replaced


class TestStructuralInvariants:
    @pytest.mark.parametrize(
        "text", [MID_EXIT_LOOP, IF_THEN_ELSE, FOR_LOOP, WHILE_LOOP]
    )
    def test_reducibility_preserved(self, text):
        func = function_from_text("f", text)
        replicate_jumps(func)
        assert is_reducible(func)

    @pytest.mark.parametrize(
        "text", [MID_EXIT_LOOP, IF_THEN_ELSE, FOR_LOOP, WHILE_LOOP]
    )
    def test_wellformed_after_replication(self, text):
        func = function_from_text("f", text)
        replicate_jumps(func)
        check_function(func)

    def test_no_replicate_flag_respected(self):
        func = function_from_text("f", IF_THEN_ELSE)
        for insn in func.insns():
            if isinstance(insn, Jump):
                insn.no_replicate = True
        stats = replicate_jumps(func)
        assert stats.jumps_replaced == 0
        assert func.jump_count() == 1

    def test_allow_irreducible_retries_flagged_jumps(self):
        func = function_from_text("f", IF_THEN_ELSE)
        for insn in func.insns():
            if isinstance(insn, Jump):
                insn.no_replicate = True
        stats = replicate_jumps(func, allow_irreducible=True)
        assert stats.jumps_replaced == 1
        assert func.jump_count() == 0


class TestIndirectJumpsInLoops:
    def test_loop_containing_indirect_jump_replicates(self):
        # A switch dispatch inside a loop: loop completion (step 3) pulls
        # the indirect-jump block into the replication sequence; the copy
        # must map the jump table's labels like any other targets (§6).
        func = function_from_text(
            "f",
            """
            d[1]=0;
            PC=L4;
            d[9]=9;
            L4:
              d[0]=d[1]&3;
              PC=L[d[0]]<L5,L6,L7,L7>;
            L5:
              d[2]=d[2]+1;
              PC=L8;
            L6:
              d[2]=d[2]+2;
              PC=L8;
            L7:
              d[2]=d[2]+3;
            L8:
              d[1]=d[1]+1;
              NZ=d[1]?10;
              PC=NZ<0,L4;
            rv[0]=d[2];
            PC=RT;
            """,
        )
        replicate_jumps(func)
        check_function(func)
        assert is_reducible(func)

    def test_jump_targeting_indirect_block_directly_kept(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            PC=L4;
            d[9]=1;
            L4:
              PC=L[d[0]]<L5,L6>;
            L5:
              PC=RT;
            L6:
              PC=RT;
            """,
        )
        stats = replicate_jumps(func)
        # The jump's target *is* the indirect-jump block and no path exists
        # through it; the jump stays (as in the paper's implementation).
        assert func.jump_count() >= 1
