"""Tests for the Floyd/Warshall shortest-path matrix (step 1 of JUMPS)."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core import ShortestPathMatrix
from tests.cfg.test_dominators import build_graph, random_edge_lists
from tests.conftest import function_from_text


class TestMatrixBasics:
    def test_direct_edge_distance_counts_both_blocks(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            d[1]=2;
            PC=L1;
            L1:
              d[2]=3;
              PC=RT;
            """,
        )
        matrix = ShortestPathMatrix(func)
        b1, l1 = func.blocks
        assert matrix.dist(b1, l1) == b1.size() + l1.size() == 5

    def test_no_path_is_infinite(self):
        func = function_from_text(
            "f",
            """
            PC=RT;
            L1:
              PC=RT;
            """,
        )
        matrix = ShortestPathMatrix(func)
        a, b = func.blocks
        assert matrix.dist(a, b) == float("inf")
        assert matrix.path(a, b) is None

    def test_self_distance_excluded(self):
        func = function_from_text(
            "f",
            """
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
              PC=RT;
            """,
        )
        matrix = ShortestPathMatrix(func)
        l1 = func.blocks[0]
        assert matrix.dist(l1, l1) == float("inf")

    def test_shortest_of_two_paths_chosen(self):
        # Entry branches to a short path (1 insn) and long path (3 insns),
        # both reaching the same join.
        func = function_from_text(
            "f",
            """
            NZ=d[0]?0;
            PC=NZ==0,Llong;
            d[1]=1;
            PC=Ljoin;
            Llong:
              d[1]=1;
              d[2]=2;
              d[3]=3;
            Ljoin:
              PC=RT;
            """,
        )
        matrix = ShortestPathMatrix(func)
        entry = func.blocks[0]
        join = func.block_by_label("Ljoin")
        path = matrix.path(entry, join)
        assert path is not None
        labels = [b.label for b in path]
        assert "Llong" not in labels

    def test_indirect_jump_block_has_no_out_paths(self):
        func = function_from_text(
            "f",
            """
            PC=L[a[0]]<L1,L2>;
            L1:
              PC=RT;
            L2:
              PC=RT;
            """,
        )
        matrix = ShortestPathMatrix(func)
        src = func.blocks[0]
        assert matrix.dist(src, func.block_by_label("L1")) == float("inf")
        assert matrix.dist(src, func.block_by_label("L2")) == float("inf")

    def test_sequence_to_return(self):
        func = function_from_text(
            "f",
            """
            PC=L1;
            L1:
              d[0]=1;
            L2:
              PC=RT;
            """,
        )
        matrix = ShortestPathMatrix(func)
        l1 = func.block_by_label("L1")
        seq = matrix.shortest_sequence_to_return(l1)
        assert seq is not None
        assert [b.label for b in seq] == ["L1", "L2"]

    def test_sequence_to_return_when_start_returns(self):
        func = function_from_text("f", "PC=L1;\nL1:\n  PC=RT;")
        matrix = ShortestPathMatrix(func)
        l1 = func.block_by_label("L1")
        seq = matrix.shortest_sequence_to_return(l1)
        assert seq is not None and [b.label for b in seq] == ["L1"]

    def test_sequence_to_fallthrough_excludes_follow(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            PC=L2;
            L1:
              d[1]=d[1]+d[0];
            L2:
              NZ=d[0]?10;
              PC=NZ<0,L1;
              PC=RT;
            """,
        )
        matrix = ShortestPathMatrix(func)
        l2 = func.block_by_label("L2")
        l1 = func.block_by_label("L1")
        seq = matrix.shortest_sequence_to_fallthrough(l2, l1)
        assert seq is not None
        assert [b.label for b in seq] == ["L2"]


class TestDifferentialAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_distances_match_dijkstra(self, data):
        n, edges = data
        func = build_graph(edges, n)
        matrix = ShortestPathMatrix(func)

        graph = nx.DiGraph()
        for block in func.blocks:
            graph.add_node(block.label)
        for block in func.blocks:
            for succ in block.succs:
                if succ is not block:
                    # Node-weighted shortest path: model as edge weight of
                    # the successor's size.
                    graph.add_edge(block.label, succ.label, weight=succ.size())

        for src in func.blocks:
            lengths = nx.single_source_dijkstra_path_length(graph, src.label)
            for dst in func.blocks:
                if dst is src:
                    continue
                mine = matrix.dist(src, dst)
                if dst.label in lengths:
                    expected = lengths[dst.label] + src.size()
                    assert mine == expected, (src.label, dst.label)
                else:
                    assert mine == float("inf")

    @settings(max_examples=40, deadline=None)
    @given(random_edge_lists())
    def test_paths_are_consistent_with_distances(self, data):
        n, edges = data
        func = build_graph(edges, n)
        matrix = ShortestPathMatrix(func)
        for src in func.blocks:
            for dst in func.blocks:
                if dst is src:
                    continue
                path = matrix.path(src, dst)
                if path is None:
                    assert matrix.dist(src, dst) == float("inf")
                    continue
                assert path[0] is src and path[-1] is dst
                # Path must follow real CFG edges and its cost must equal
                # the reported distance.
                for a, b in zip(path, path[1:]):
                    assert b in a.succs
                assert sum(b.size() for b in path) == matrix.dist(src, dst)


class TestSequenceProperties:
    """Validity of the step-2 sequences on random control-flow graphs."""

    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_return_sequences_are_connected_paths(self, data):
        n, edges = data
        func = build_graph(edges, n)
        matrix = ShortestPathMatrix(func)
        for start in func.blocks:
            seq = matrix.shortest_sequence_to_return(start)
            if seq is None:
                continue
            assert seq[0] is start
            assert seq[-1].ends_in_return()
            for a, b in zip(seq, seq[1:]):
                assert b in a.succs

    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_fallthrough_sequences_end_adjacent_to_follow(self, data):
        n, edges = data
        func = build_graph(edges, n)
        matrix = ShortestPathMatrix(func)
        for start in func.blocks:
            for follow in func.blocks:
                if follow is start:
                    continue
                seq = matrix.shortest_sequence_to_fallthrough(start, follow)
                if seq is None:
                    continue
                assert seq[0] is start
                assert follow not in seq or seq[-1] is not follow
                assert follow in seq[-1].succs
                for a, b in zip(seq, seq[1:]):
                    assert b in a.succs

    @settings(max_examples=40, deadline=None)
    @given(random_edge_lists())
    def test_sequences_are_no_longer_than_any_alternative(self, data):
        # The chosen return sequence is minimal among return blocks.
        n, edges = data
        func = build_graph(edges, n)
        matrix = ShortestPathMatrix(func)
        for start in func.blocks:
            seq = matrix.shortest_sequence_to_return(start)
            if seq is None or len(seq) == 1:
                continue
            cost = sum(b.size() for b in seq)
            for other in func.blocks:
                if other is start or not other.ends_in_return():
                    continue
                alt = matrix.dist(start, other)
                assert cost <= alt
