"""Structural reproductions of Figures 1 and 2 of the paper.

Figure 1: an unconditional jump into a natural loop that has another entry
must replicate the *whole* loop ("loop replication"), because a partial copy
would leave the original loop with two entry points (unstructured).

Figure 2: when replication is initiated from inside a loop and copies part
of that loop, conditional branches of uncopied members that target copied
blocks are retargeted to the copies, avoiding partially overlapping loops.
"""

from repro.cfg import check_function, find_loops, is_reducible
from repro.core import replicate_jumps
from tests.conftest import function_from_text

# Figure 1's control flow: blocks 1..7 with a loop {4,5,6}, an unconditional
# jump 2 -> 4, and a second loop entry through block 3.
FIGURE_1 = """
  NZ=d[0]?0;
  PC=NZ==0,L3;
  d[1]=1;
  PC=L4;
L3:
  d[1]=2;
L4:
  d[2]=d[2]+d[1];
  NZ=d[2]?100;
  PC=NZ>=0,L7;
  d[2]=d[2]*2;
  PC=L4;
L7:
  PC=RT;
"""

# Figure 2's control flow: a loop {1,2,3} whose back edge is an unconditional
# jump 3 -> 1, where block 2 branches conditionally back to block 1 as well.
FIGURE_2 = """
L1:
  d[0]=d[0]+1;
  NZ=d[0]?100;
  PC=NZ>=0,L4;
  NZ=d[0]?3;
  PC=NZ==0,L1;
  d[1]=d[1]+1;
  PC=L1;
L4:
  PC=RT;
"""


class TestFigure1:
    def test_whole_loop_replicated(self):
        func = function_from_text("fig1", FIGURE_1)
        info_before = find_loops(func)
        assert len(info_before.loops) == 1
        loop_size_before = len(info_before.loops[0].blocks)

        stats = replicate_jumps(func)
        check_function(func)
        assert func.jump_count() == 0
        assert is_reducible(func)

        # The replication must not have left a loop with two entry points:
        # every loop header is the only member with external predecessors.
        info_after = find_loops(func)
        for loop in info_after.loops:
            for member in loop.blocks:
                external = [p for p in member.preds if p not in loop.blocks]
                if member is not loop.header:
                    assert external == [], (
                        f"loop member {member.label} has external preds "
                        f"{[p.label for p in external]} — a second entry"
                    )

        # The loop body instructions were duplicated (whole-loop copy), so
        # the multiplication instruction of the loop appears at least twice.
        multiplies = [
            insn
            for insn in func.insns()
            if "BinOp('*'" in repr(insn)
        ]
        assert len(multiplies) >= 2
        assert loop_size_before >= 2

    def test_single_entry_jump_rotates_instead_of_replicating_loop(self):
        # Contrast case: the loop header's only external predecessor is the
        # jump itself (a plain for-loop) — the loop rotates, it is not
        # duplicated wholesale.
        func = function_from_text(
            "rot",
            """
            d[0]=0;
            PC=L2;
            L1:
              d[1]=d[1]+d[0];
              d[0]=d[0]+1;
            L2:
              NZ=d[0]?10;
              PC=NZ<0,L1;
              PC=RT;
            """,
        )
        stats = replicate_jumps(func)
        assert stats.jumps_replaced == 1
        # Only the two-RTL test was copied, not the loop body.
        assert stats.rtls_replicated == 2


class TestFigure2:
    def test_no_partially_overlapping_loops(self):
        func = function_from_text("fig2", FIGURE_2)
        replicate_jumps(func)
        check_function(func)
        assert is_reducible(func)
        assert func.jump_count() == 0

        # Natural loops must be properly nested or disjoint — never
        # partially overlapping.
        info = find_loops(func)
        for a in info.loops:
            for b in info.loops:
                if a is b:
                    continue
                inter = a.blocks & b.blocks
                assert (
                    not inter
                    or a.blocks <= b.blocks
                    or b.blocks <= a.blocks
                ), (
                    f"loops {a} and {b} partially overlap"
                )

    def test_uncopied_member_branch_retargeted(self):
        func = function_from_text("fig2", FIGURE_2)
        # Identify the conditional branch of "block 2" (the NZ==0 branch
        # back to L1) before replication.
        before_targets = [
            insn.target
            for insn in func.insns()
            if type(insn).__name__ == "CondBranch"
        ]
        assert "L1" in before_targets
        replicate_jumps(func)
        # After replication at least one conditional branch that used to
        # target L1 now targets a replicated block instead, and the result
        # stays reducible (the point of step 5).
        assert is_reducible(func)
