"""Benchmark-suite plumbing tests."""

import pytest

from repro.benchsuite import (
    PROGRAMS,
    compile_benchmark,
    program_names,
    run_benchmark,
)
from repro.targets import get_target


class TestCatalog:
    def test_fourteen_programs(self):
        assert len(PROGRAMS) == 14
        assert len(program_names()) == 14
        assert set(program_names()) == set(PROGRAMS)

    def test_categories_match_table3(self):
        categories = {p.category for p in PROGRAMS.values()}
        assert categories == {"Utilities", "Benchmarks", "User code"}
        utilities = [p for p in PROGRAMS.values() if p.category == "Utilities"]
        assert len(utilities) == 8

    def test_workloads_deterministic(self):
        from repro.benchsuite.programs import _lcg_text

        assert _lcg_text(5, 100) == _lcg_text(5, 100)
        assert _lcg_text(5, 100) != _lcg_text(6, 100)


class TestRunner:
    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            run_benchmark("doom")

    def test_compile_benchmark_returns_program(self):
        program = compile_benchmark("wc", get_target("sparc"), "none")
        assert "main" in program.functions

    def test_memoization_returns_same_object(self):
        a = run_benchmark("wc", target="sparc", replication="none")
        b = run_benchmark("wc", target="sparc", replication="none")
        assert a is b

    def test_cache_bypass(self):
        a = run_benchmark("wc", target="sparc", replication="none")
        b = run_benchmark("wc", target="sparc", replication="none", use_cache=False)
        assert a is not b
        assert a.dynamic_insns == b.dynamic_insns

    @pytest.mark.parametrize("name", ["wc", "sieve", "queens"])
    def test_known_outputs(self, name):
        expected = {
            "wc": b"    362    1469    9000\n",
            "sieve": b"564 primes\n",
            "queens": b"92 solutions\n",
        }
        m = run_benchmark(name, target="m68020", replication="jumps")
        assert m.output == expected[name]
