"""The shared Table-5/6 scoring library.

Parity is the point: the ablation benches and the autotuner must compute
identical scores, and the library's percent rendering must match the
legacy ``repro.report.pct`` path the benches used before the refactor.
"""

from dataclasses import dataclass

from repro.benchsuite.scoring import (
    aggregate_scores,
    candidate_key,
    format_change,
    relative_change,
    score_measurement,
)
from repro.report import mean, pct


@dataclass
class _FakeMeasurement:
    static_insns: int
    dynamic_insns: int
    code_bytes: int


def _m(static, dynamic, code_bytes=0):
    return _FakeMeasurement(static, dynamic, code_bytes)


class TestRelativeChange:
    def test_matches_legacy_pct_rendering(self):
        # The benches used repro.report.pct before the refactor; the
        # library's formatting must agree on every nonzero base.
        for new, base in [(105, 100), (95, 100), (100, 100), (7, 3), (0, 5)]:
            assert format_change(relative_change(new, base)) == pct(new, base)

    def test_zero_base_is_zero_not_crash(self):
        assert relative_change(5, 0) == 0.0

    def test_sign_conventions(self):
        assert relative_change(110, 100) > 0  # growth is positive
        assert relative_change(90, 100) < 0  # savings are negative


class TestScoreMeasurement:
    def test_scores_against_baseline(self):
        score = score_measurement("wc", _m(110, 900, 440), _m(100, 1000, 400))
        assert score.program == "wc"
        assert score.static_insns == 110
        assert score.dynamic_insns == 900
        assert score.code_bytes == 440
        assert abs(score.static_change - 0.10) < 1e-12
        assert abs(score.dynamic_change - (-0.10)) < 1e-12

    def test_formatted_pair_matches_pct(self):
        score = score_measurement("wc", _m(110, 900, 0), _m(100, 1000, 0))
        assert score.formatted() == (pct(110, 100), pct(900, 1000))


class TestCandidateKey:
    def test_dynamic_dominates(self):
        fast = score_measurement("p", _m(999, 100, 9), _m(100, 1000, 1))
        slow = score_measurement("p", _m(50, 200, 1), _m(100, 1000, 1))
        assert candidate_key(fast) < candidate_key(slow)

    def test_static_breaks_dynamic_ties(self):
        small = score_measurement("p", _m(90, 100, 9), _m(100, 1000, 1))
        big = score_measurement("p", _m(110, 100, 1), _m(100, 1000, 1))
        assert candidate_key(small) < candidate_key(big)

    def test_code_bytes_break_remaining_ties(self):
        lean = score_measurement("p", _m(100, 100, 10), _m(100, 1000, 1))
        fat = score_measurement("p", _m(100, 100, 20), _m(100, 1000, 1))
        assert candidate_key(lean) < candidate_key(fat)


class TestAggregate:
    def test_matches_legacy_mean_of_fractions(self):
        # The maxlen bench averaged per-program fractional changes with
        # repro.report.mean; the library aggregate must agree.
        cells = [
            (_m(110, 900, 0), _m(100, 1000, 0)),
            (_m(130, 1900, 0), _m(120, 2000, 0)),
            (_m(75, 480, 0), _m(80, 500, 0)),
        ]
        scores = [
            score_measurement(f"p{i}", m, base)
            for i, (m, base) in enumerate(cells)
        ]
        aggregate = aggregate_scores(scores)
        legacy_static = mean(
            [(m.static_insns - b.static_insns) / b.static_insns for m, b in cells]
        )
        legacy_dynamic = mean(
            [
                (m.dynamic_insns - b.dynamic_insns) / b.dynamic_insns
                for m, b in cells
            ]
        )
        assert abs(aggregate.static_change_mean - legacy_static) < 1e-12
        assert abs(aggregate.dynamic_change_mean - legacy_dynamic) < 1e-12
        assert aggregate.programs == 3
        assert aggregate.static_insns_total == 110 + 130 + 75
        assert aggregate.dynamic_insns_total == 900 + 1900 + 480

    def test_empty_aggregate(self):
        aggregate = aggregate_scores([])
        assert aggregate.programs == 0
        assert aggregate.static_change_mean == 0.0
        assert aggregate.as_dict()["dynamic_change_mean"] == 0.0
