"""Each Table-3 program must exercise the construct it stands for.

The paper chose its test set to cover text filters, sorts, numeric
kernels, recursion and table-driven code; these tests pin the structural
character of our re-implementations so future edits cannot quietly turn
e.g. the recursive queens into an iterative one.
"""

import pytest

from repro.benchsuite import PROGRAMS
from repro.frontend import compile_c
from repro.frontend.parser import parse
from repro.frontend import ast_nodes as ast
from repro.rtl import Call, IndirectJump


def ast_of(name):
    return parse(PROGRAMS[name].source)


def walk_statements(node):
    """Yield every statement node reachable from a function body."""
    stack = [node]
    while stack:
        item = stack.pop()
        yield item
        for attr in ("body", "then", "otherwise", "init", "stmt"):
            child = getattr(item, attr, None)
            if isinstance(child, list):
                stack.extend(child)
            elif child is not None and isinstance(child, ast.Stmt):
                stack.append(child)
        for case in getattr(item, "cases", []) or []:
            stack.extend(case.body)


class TestStructuralCharacter:
    def test_queens_is_recursive(self):
        program = compile_c(PROGRAMS["queens"].source)
        place = program.functions["place"]
        assert any(
            isinstance(i, Call) and i.func == "place" for i in place.insns()
        )

    def test_grep_is_mutually_recursive(self):
        program = compile_c(PROGRAMS["grep"].source)
        here = program.functions["match_here"]
        star = program.functions["match_star"]
        assert any(isinstance(i, Call) and i.func == "match_star" for i in here.insns())
        assert any(isinstance(i, Call) and i.func == "match_here" for i in star.insns())

    def test_quicksort_is_iterative(self):
        # Table 3 says "sort numbers (iterative)": no self-calls allowed.
        program = compile_c(PROGRAMS["quicksort"].source)
        for func in program.functions.values():
            assert not any(
                isinstance(i, Call) and i.func == func.name for i in func.insns()
            )

    def test_mincost_has_nested_quadratic_loops(self):
        unit = ast_of("mincost")
        cut = next(f for f in unit.functions if f.name == "cut_cost")
        fors = [
            s for s in walk_statements(cut.body) if isinstance(s, ast.For)
        ]
        assert len(fors) >= 2  # the i/j double loop over the netlist

    def test_text_utilities_read_stdin(self):
        for name in ("wc", "deroff", "od", "grep", "sort", "compact"):
            assert b"" != PROGRAMS[name].stdin or name == "cal"
            assert "getchar" in PROGRAMS[name].source

    def test_deroff_workload_contains_nroff_requests(self):
        stdin = PROGRAMS["deroff"].stdin
        # Request lines (".XX" at line start) and font escapes both occur.
        assert any(line.startswith(b".") for line in stdin.splitlines())
        assert b"\\fB" in stdin and b"\\fP" in stdin

    def test_matmult_uses_two_dimensional_arrays(self):
        assert "[24][24]" in PROGRAMS["matmult"].source

    def test_goto_free_except_by_design(self):
        # None of the 14 programs needs goto — the unstructured cases are
        # covered by dedicated tests and examples instead.
        for program in PROGRAMS.values():
            assert "goto" not in program.source


class TestWorkloadScale:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_every_program_compiles(self, name):
        program = compile_c(PROGRAMS[name].source)
        assert "main" in program.functions

    def test_workloads_are_modest(self):
        # Keep the suite interpretable in seconds: inputs under 16 KB.
        for program in PROGRAMS.values():
            assert len(program.stdin) < 16384
