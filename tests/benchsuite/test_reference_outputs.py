"""Absolute output validation against independent Python references.

Differential testing proves optimized == unoptimized; these tests prove
the unoptimized interpretation itself computes the *right* answers, by
re-deriving each expected output in plain Python.
"""

import pytest

from repro.benchsuite import PROGRAMS
from repro.ease import Interpreter
from repro.frontend import compile_c

_cache = {}


def output_of(name):
    if name not in _cache:
        bench = PROGRAMS[name]
        result = Interpreter(compile_c(bench.source)).run(stdin=bench.stdin)
        _cache[name] = result.output
    return _cache[name]


def lcg_stream(seed):
    while True:
        seed = (seed * 1103515245 + 12345) & 0xFFFFFFFF
        if seed >= 0x80000000:
            seed -= 0x100000000
        yield seed


class TestNumericReferences:
    def test_wc(self):
        data = PROGRAMS["wc"].stdin
        lines = data.count(b"\n")
        words = len(data.split())
        expected = f"{lines:7d} {words:7d} {len(data):7d}\n".encode()
        assert output_of("wc") == expected

    def test_sieve(self):
        flags = [True] * 4096
        count = 0
        for i in range(2, 4096):
            if flags[i]:
                count += 1
                for k in range(i + i, 4096, i):
                    flags[k] = False
        assert output_of("sieve") == f"{count} primes\n".encode()

    def test_queens(self):
        # The eight-queens problem famously has 92 solutions.
        assert output_of("queens") == b"92 solutions\n"

    def test_matmult_trace_is_zero(self):
        # trace(A·B) with A symmetric (i+j) and B antisymmetric (i-j)
        # is Σ (k²-i²) over the square index range = 0.
        assert output_of("matmult") == b"trace 0\n"

    def test_bubblesort(self):
        gen = lcg_stream(12345)
        data = [(next(gen) >> 8) & 32767 for _ in range(450)]
        swaps = 0
        arr = list(data)
        for i in range(len(arr) - 1):
            for j in range(len(arr) - 1 - i):
                if arr[j] > arr[j + 1]:
                    arr[j], arr[j + 1] = arr[j + 1], arr[j]
                    swaps += 1
        expected = (
            f"sorted {len(arr)} numbers, {swaps} swaps, "
            f"min {arr[0]} max {arr[-1]}\n"
        ).encode()
        assert output_of("bubblesort") == expected

    def test_quicksort(self):
        gen = lcg_stream(99)
        data = sorted((next(gen) >> 7) & 65535 for _ in range(1400))
        expected = f"sorted 1400 numbers, median {data[700]}\n".encode()
        assert output_of("quicksort") == expected


class TestTextReferences:
    def test_sort_output_is_sorted_lines(self):
        out = output_of("sort").decode("latin-1").splitlines()
        assert out == sorted(out)
        # Every input line (truncation limits aside) appears in the output.
        source_lines = PROGRAMS["sort"].stdin.decode("latin-1").split("\n")
        assert len(out) <= len(source_lines)

    def test_od_reference(self):
        data = PROGRAMS["od"].stdin
        lines = []
        offset = 0
        for start in range(0, len(data), 8):
            chunk = data[start : start + 8]
            cells = " ".join(f"{b:03o}" for b in chunk)
            lines.append(f"{offset:07o}  {cells}")
            offset += len(chunk)
        lines.append(f"{offset:07o}")
        expected = ("\n".join(lines) + "\n").encode()
        assert output_of("od") == expected

    def test_deroff_reference(self):
        # Python reimplementation of the deroff filter semantics.
        data = PROGRAMS["deroff"].stdin
        out = bytearray()
        i = 0
        at_start = True
        n = len(data)
        while i < n:
            c = data[i]
            if at_start and c == ord("."):
                while i < n and data[i] != ord("\n"):
                    i += 1
                i += 1  # swallow the newline too
                at_start = True
                continue
            if c == ord("\\") and i + 1 < n and data[i + 1] == ord("f"):
                i += 3  # backslash, 'f', font letter
                at_start = False
                continue
            if c == ord("\\"):
                out.append(ord("\\"))
                i += 1
                if i < n:
                    out.append(data[i])
                    at_start = data[i] == ord("\n")
                    i += 1
                continue
            out.append(c)
            at_start = c == ord("\n")
            i += 1
        assert output_of("deroff") == bytes(out)

    def test_grep_reference(self):
        import re as regex

        data = PROGRAMS["grep"].stdin
        newline = data.index(b"\n")
        pattern = data[:newline].decode("latin-1")
        body = data[newline + 1 :].decode("latin-1")
        # Our grep dialect: ^ $ . * (with * binding to the previous char).
        compiled = regex.compile(pattern)
        matches = []
        for number, line in enumerate(body.split("\n")[:-1] if body.endswith("\n") else body.split("\n"), 1):
            if compiled.search(line[:255]):
                matches.append(f"{number}:{line[:255]}")
        expected = ("\n".join(matches) + ("\n" if matches else "")).encode()
        expected += f"{len(matches)} matching lines\n".encode()
        assert output_of("grep") == expected

    def test_compact_reports_plausible_compression(self):
        out = output_of("compact")
        assert out.startswith(b"in 6000 bytes out ")
        # The MTF coder's output size is positive and bounded.
        size = int(out.split(b"out ")[1].split(b" bytes")[0])
        assert 0 < size < 12000

    def test_cal_contains_all_months_and_correct_weekday(self):
        out = output_of("cal").decode()
        for month in ("January", "June", "December"):
            assert f"{month} 1992" in out
            assert f"{month} 1993" in out
        # 1 Jan 1992 was a Wednesday: the first calendar line of days
        # starts under We (three 3-char cells of padding).
        first_line = out.split("Su Mo Tu We Th Fr Sa\n")[1].split("\n")[0]
        assert first_line.startswith(" " * 9 + " 1")

    def test_banner_renders_five_rows(self):
        out = output_of("banner").decode()
        rows = [r for r in out.split("\n") if r]
        assert len(rows) == 5
