"""Unit coverage for the structural sanitizer."""

import pytest

from repro.cfg.graph import compute_flow
from repro.frontend import compile_c
from repro.rtl.expr import Const, Reg
from repro.rtl.insn import Assign, CondBranch, Jump
from repro.verify import SanitizeError, check_sanitized, sanitize_function
from tests.conftest import function_from_text

LOOP = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 5; i++) { s = s + i; }
    printf("%d\\n", s);
    return 0;
}
"""


def _main():
    program = compile_c(LOOP)
    return program, program.functions["main"]


class TestCleanFunctions:
    def test_frontend_output_is_clean(self):
        program, func = _main()
        assert sanitize_function(func, program) == []

    def test_optimized_output_is_clean(self):
        from repro.opt import OptimizationConfig, optimize_program
        from repro.targets import get_target

        program, func = _main()
        optimize_program(
            program, get_target("sparc"), OptimizationConfig(replication="jumps")
        )
        assert sanitize_function(func, program, post_regalloc=True) == []

    def test_sanitizer_does_not_mutate(self):
        program, func = _main()
        editions = func.cfg_edition
        succs = [list(b.succs) for b in func.blocks]
        sanitize_function(func, program)
        assert func.cfg_edition == editions
        assert [list(b.succs) for b in func.blocks] == succs


class TestCfgViolations:
    def test_stale_successors(self):
        _, func = _main()
        func.blocks[0].succs.clear()
        problems = sanitize_function(func)
        assert any("stale successors" in p for p in problems)

    def test_broken_label_table(self):
        _, func = _main()
        for block in func.blocks:
            term = block.terminator
            if isinstance(term, (Jump, CondBranch)):
                term.retarget(term.branch_targets()[0], "L_nowhere")
                break
        problems = sanitize_function(func)
        assert any("resolves to no block" in p for p in problems)

    def test_duplicate_labels(self):
        _, func = _main()
        func.blocks[-1].label = func.blocks[0].label
        assert any(
            "duplicate label" in p for p in sanitize_function(func)
        )

    def test_transfer_in_mid_block(self):
        _, func = _main()
        block = func.blocks[0]
        block.insns.insert(0, Jump(func.blocks[-1].label))
        assert any(
            "not at block end" in p for p in sanitize_function(func)
        )

    def test_final_block_fallthrough(self):
        _, func = _main()
        last = func.blocks[-1]
        assert last.insns
        last.insns.pop()  # drop the Return
        assert any(
            "falls off the end" in p for p in sanitize_function(func)
        )

    def test_check_sanitized_raises_with_stage(self):
        _, func = _main()
        func.blocks[0].succs.clear()
        with pytest.raises(SanitizeError) as exc:
            check_sanitized(func, "unit-test-stage")
        assert exc.value.function == "main"
        assert exc.value.stage == "unit-test-stage"
        assert exc.value.violations


class TestRtlViolations:
    def test_unknown_register_bank(self):
        _, func = _main()
        func.blocks[0].insns.insert(0, Assign(Reg("z", 0), Const(1)))
        assert any(
            "unknown register bank" in p for p in sanitize_function(func)
        )

    def test_sym_without_global(self):
        from repro.rtl.expr import Sym

        program, func = _main()
        func.blocks[0].insns.insert(0, Assign(Reg("d", 0), Sym("no_such")))
        assert any(
            "names no program global" in p
            for p in sanitize_function(func, program)
        )
        # Without program context the check is skipped, not wrong.
        assert not any(
            "names no program global" in p for p in sanitize_function(func)
        )

    def test_vreg_survives_regalloc(self):
        _, func = _main()
        func.blocks[0].insns.insert(0, Assign(Reg("v", 7), Const(1)))
        clean = sanitize_function(func, post_regalloc=False)
        assert not any("survived register allocation" in p for p in clean)
        dirty = sanitize_function(func, post_regalloc=True)
        assert any("survived register allocation" in p for p in dirty)

    def test_vreg_use_no_def_on_any_path(self):
        func = function_from_text(
            "f",
            """
            d[0]=v[3];
            PC=RT;
            """,
        )
        # v[3] is never defined anywhere: exempt (zero-initialised source
        # variable semantics).
        assert sanitize_function(func) == []
        # But once *a* definition exists that cannot reach the use, flag it.
        func.blocks[0].insns.append(Assign(Reg("v", 3), Const(1)))
        func.blocks[0].insns[-1], func.blocks[0].insns[-2] = (
            func.blocks[0].insns[-2],
            func.blocks[0].insns[-1],
        )
        # Block is now: d[0]=v[3]; v[3]=1; PC=RT; — the def follows the use.
        compute_flow(func)
        assert any(
            "used before any definition" in p for p in sanitize_function(func)
        )

    def test_vreg_use_in_unreachable_block_is_vacuous(self):
        func = function_from_text(
            "f",
            """
            v[1]=1;
            PC=L9;
            L2:
              d[0]=v[2];
              PC=L9;
            L9:
              v[2]=2;
              PC=RT;
            """,
        )
        # L2 (the use of v[2] before its def) is unreachable from entry:
        # fold_branches strands blocks like this until the next dead-code
        # sweep, and the sanitizer must not cry wolf over them.
        assert sanitize_function(func) == []
