"""Mode resolution and how verification threads through the layers:
the high-level API, the exec layer's cache hygiene, and the CLI flag.
"""

import pytest

from repro.exec import CellSpec, CellResult, ParallelRunner, ResultCache
from repro.verify import MiscompileError, Verifier
from repro.verify.verifier import resolve_mode

SRC = "int main() { int a; a = 6; return a * 7; }"


class TestResolveMode:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "full")
        assert resolve_mode("off") == "off"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "sanitize")
        assert resolve_mode(None) == "sanitize"
        monkeypatch.delenv("REPRO_VERIFY")
        assert resolve_mode(None) == "off"

    def test_env_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "  FULL ")
        assert resolve_mode(None) == "full"
        monkeypatch.setenv("REPRO_VERIFY", "")
        assert resolve_mode(None) == "off"

    def test_bad_mode_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_mode("paranoid")
        monkeypatch.setenv("REPRO_VERIFY", "paranoid")
        with pytest.raises(ValueError):
            resolve_mode(None)


class TestApiWiring:
    def test_report_attached(self):
        from repro.api import compile_and_measure

        result = compile_and_measure(SRC, replication="jumps", verify="full")
        assert result.exit_code == 42
        assert result.verification is not None
        assert result.verification["mode"] == "full"
        assert result.verification["oracle_runs"] >= 2

    def test_off_means_no_report(self):
        from repro.api import compile_and_measure

        result = compile_and_measure(SRC, replication="jumps")
        assert result.verification is None

    def test_miscompile_propagates(self, monkeypatch):
        import repro.opt.driver as driver
        from repro.api import compile_and_measure
        from repro.rtl.insn import CondBranch

        real = driver.strength_reduce

        def evil(func):
            changed = real(func)
            for block in func.blocks:
                term = block.terminator
                if isinstance(term, CondBranch) and term.rel == "<":
                    term.rel = "<="
                    return True
            return changed

        monkeypatch.setattr(driver, "strength_reduce", evil)
        source = """
        int main() {
            int i; int s;
            s = 0;
            for (i = 0; i < 5; i++) { s = s + i; }
            return s;
        }
        """
        with pytest.raises(MiscompileError):
            compile_and_measure(source, replication="jumps", verify="full")


class TestExecCacheHygiene:
    def _runner(self, tmp_path):
        return ParallelRunner(workers=1, cache=ResultCache(tmp_path / "cache"))

    def test_verified_cell_bypasses_cache_both_ways(self, tmp_path):
        runner = self._runner(tmp_path)
        spec = CellSpec(program=SRC, replication="jumps", verify="full")
        first = runner.run([spec])[0]
        assert first.ok and not first.cache_hit
        assert first.verification is not None
        # Nothing was written: a second verified run is also fresh.
        second = runner.run([spec])[0]
        assert not second.cache_hit
        # And a clean run of the same cell doesn't see a verified entry.
        clean = runner.run([CellSpec(program=SRC, replication="jumps")])[0]
        assert not clean.cache_hit
        assert clean.verification is None

    def test_clean_cell_still_caches(self, tmp_path):
        runner = self._runner(tmp_path)
        spec = CellSpec(program=SRC, replication="jumps")
        assert not runner.run([spec])[0].cache_hit
        assert runner.run([spec])[0].cache_hit

    def test_env_mode_bypasses_cache(self, tmp_path, monkeypatch):
        runner = self._runner(tmp_path)
        spec = CellSpec(program=SRC, replication="jumps")
        runner.run([spec])  # seed the cache with a clean entry
        monkeypatch.setenv("REPRO_VERIFY", "sanitize")
        result = runner.run([spec])[0]
        assert not result.cache_hit
        assert result.verification is not None
        monkeypatch.delenv("REPRO_VERIFY")
        assert runner.run([spec])[0].cache_hit

    def test_invalid_env_mode_fails_the_run_not_the_cache(
        self, tmp_path, monkeypatch
    ):
        runner = self._runner(tmp_path)
        spec = CellSpec(program=SRC, replication="jumps")
        runner.run([spec])
        monkeypatch.setenv("REPRO_VERIFY", "bogus")
        result = runner.run([spec])[0]
        # The configuration error surfaces from an actual run (captured
        # in the envelope) instead of being masked by a stale cache hit.
        assert not result.cache_hit
        assert not result.ok
        assert "bogus" in (result.error or "")


class TestVerifierReportShape:
    def test_report_keys(self):
        verifier = Verifier("sanitize")
        report = verifier.report()
        assert set(report) == {
            "mode",
            "pass_invocations",
            "sanitize_checks",
            "oracle_runs",
            "bisect_steps",
        }
