"""The fuzz campaign, the delta minimizer, and their cooperation."""

from repro.verify import (
    generate_program,
    minimize_source,
    run_campaign,
    verify_source,
)
from repro.verify.minimize import ddmin_lines


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_program(7) == generate_program(7)
        assert generate_program(7) != generate_program(8)

    def test_generated_programs_compile_and_run(self):
        from tests.conftest import run_c

        for seed in range(5):
            output, exit_code = run_c(generate_program(seed))
            assert output.endswith(b"\n")
            assert 0 <= exit_code <= 255


class TestVerifySource:
    def test_clean_program_full_mode(self):
        report = verify_source(
            "int main() { int a; a = 3; return a * 2; }",
            replication="jumps",
            mode="full",
        )
        assert "failure" not in report
        assert report["oracle_runs"] >= 2

    def test_campaign_small_slice_is_clean(self):
        # Unbounded by default: the max_rtls=64 workaround is gone now
        # that the convergence guard stops the §5.2 cascade at its root.
        result = run_campaign(4, seed=0)
        assert result.ok
        assert result.programs_run == 4
        assert result.totals["pass_invocations"] > 0
        assert result.totals["oracle_runs"] >= 8
        assert result.totals["valve_trips"] == 0

    def test_unbounded_campaign_covers_cascading_seed(self):
        # Seed 10 is the historical switch-into-loop cascade shape; an
        # unbounded campaign over it must converge guard-stopped, with
        # the backstop valves silent.
        result = run_campaign(1, seed=10, minimize=False)
        assert result.ok
        assert result.totals["valve_trips"] == 0
        assert result.totals["valve_block_trips"] == 0
        assert result.totals["valve_budget_trips"] == 0

    def test_report_carries_valve_accounting(self):
        report = verify_source(
            "int main() { int a; a = 3; return a * 2; }",
            replication="jumps",
            mode="sanitize",
        )
        for key in (
            "valve_trips",
            "valve_block_trips",
            "valve_budget_trips",
            "guard_stops",
        ):
            assert report[key] == 0


class TestDdmin:
    def test_minimizes_to_single_culprit_line(self):
        lines = [f"line{i}" for i in range(16)]

        def fails(candidate):
            return "line11" in candidate

        kept = ddmin_lines(lines, fails)
        assert kept == ["line11"]

    def test_two_interacting_lines_both_kept(self):
        lines = [f"line{i}" for i in range(10)]

        def fails(candidate):
            return "line2" in candidate and "line7" in candidate

        kept = ddmin_lines(lines, fails)
        assert kept == ["line2", "line7"]

    def test_probe_budget_respected(self):
        calls = []

        def fails(candidate):
            calls.append(1)
            return "x" in candidate

        minimize_source("\n".join(["a"] * 50 + ["x"] + ["b"] * 50), fails,
                        max_probes=20)
        assert len(calls) <= 21  # budget plus the initial sanity probe

    def test_invalid_candidates_are_just_nonfailing(self):
        # A candidate that would crash the compiler counts as "does not
        # fail" — the predicate wrapper absorbs it (mirrors _still_fails).
        lines = ["keep", "noise1", "noise2"]

        def fails(candidate):
            if "noise1" in candidate and "keep" not in candidate:
                raise RuntimeError("broken candidate")
            return "keep" in candidate

        def safe(candidate):
            try:
                return fails(candidate)
            except RuntimeError:
                return False

        assert ddmin_lines(lines, safe) == ["keep"]
