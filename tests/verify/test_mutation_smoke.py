"""Mutation smoke: inject known-bad transforms, prove the validator bites.

Each test monkeypatches one pass *in the driver's namespace* (the
driver's step lambdas resolve names at call time) with a wrapper that
runs the real pass and then corrupts the function in a deterministic,
one-directional way.  The full-mode verifier must (a) raise, (b) name
the corruption, and — for behavioural mutations — (c) bisect to the
guilty pass.  Mutations must be one-directional (never undo themselves
on a later invocation) and actually behaviour-changing on the test
input, otherwise the oracle is *correctly* silent.
"""

import pytest

import repro.opt.driver as driver
from repro.frontend import compile_c
from repro.opt.driver import OptimizationConfig, optimize_program
from repro.rtl.expr import Const
from repro.rtl.insn import Assign, CondBranch
from repro.targets import get_target
from repro.verify import MiscompileError, SanitizeError, Verifier

LOOP_SUM = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 5; i++) { s = s + (i * 3); }
    printf("%d\\n", s);
    return 0;
}
"""

CONST_OUT = """
int main() {
    int a;
    a = 7;
    printf("%d\\n", a);
    return 0;
}
"""


def _verify(source, mode="full", bisect=True):
    program = compile_c(source)
    verifier = Verifier(mode, inputs=[b""], bisect=bisect)
    optimize_program(
        program,
        get_target("sparc"),
        OptimizationConfig(replication="jumps"),
        verifier=verifier,
    )
    return verifier


def _flip_first_lt_branch(func) -> bool:
    """One-directional off-by-one: the first ``<`` branch becomes ``<=``."""
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, CondBranch) and term.rel == "<":
            term.rel = "<="
            return True
    return False


class TestOracleCatchesMiscompiles:
    def test_clean_pipeline_verifies(self):
        verifier = _verify(LOOP_SUM)
        report = verifier.report()
        assert "failure" not in report
        assert report["oracle_runs"] >= 2
        assert report["pass_invocations"] > 0

    def test_mutated_strength_reduction_caught_and_bisected(self, monkeypatch):
        real = driver.strength_reduce

        def evil(func):
            changed = real(func)
            return _flip_first_lt_branch(func) or changed

        monkeypatch.setattr(driver, "strength_reduce", evil)
        with pytest.raises(MiscompileError) as exc:
            _verify(LOOP_SUM)
        assert exc.value.guilty_pass == "main:strength_reduction"
        bisection = exc.value.report["failure"]["bisection"]
        assert bisection["reproduced"]
        assert bisection["k_bad"] == bisection["k_good"] + 1

    def test_mutated_copy_prop_caught_and_bisected(self, monkeypatch):
        real = driver.propagate_copies

        def evil(func):
            changed = real(func)
            for block in func.blocks:
                for insn in block.insns:
                    if isinstance(insn, Assign) and isinstance(insn.src, Const):
                        # Monotone corruption: the constant only ever grows,
                        # so repeated invocations never restore behaviour.
                        insn.src = Const(insn.src.value + 1)
                        return True
            return changed

        monkeypatch.setattr(driver, "propagate_copies", evil)
        with pytest.raises(MiscompileError) as exc:
            _verify(CONST_OUT)
        assert exc.value.guilty_pass == "main:copy_prop"

    def test_bisect_false_still_detects(self, monkeypatch):
        real = driver.strength_reduce

        def evil(func):
            changed = real(func)
            return _flip_first_lt_branch(func) or changed

        monkeypatch.setattr(driver, "strength_reduce", evil)
        with pytest.raises(MiscompileError) as exc:
            _verify(LOOP_SUM, bisect=False)
        assert exc.value.guilty_pass is None
        assert exc.value.report["failure"]["kind"] == "miscompile"

    def test_sanitize_mode_misses_pure_behaviour_bugs(self, monkeypatch):
        # A structurally-valid miscompile is exactly what "sanitize"
        # cannot see — documents the mode ladder rather than a defect.
        real = driver.strength_reduce

        def evil(func):
            changed = real(func)
            return _flip_first_lt_branch(func) or changed

        monkeypatch.setattr(driver, "strength_reduce", evil)
        verifier = _verify(LOOP_SUM, mode="sanitize")
        assert "failure" not in verifier.report()


class TestSanitizerCatchesStructuralDamage:
    def test_broken_branch_target_caught_at_the_pass(self, monkeypatch):
        real = driver.fold_constants

        def evil(func):
            changed = real(func)
            for block in func.blocks:
                term = block.terminator
                if isinstance(term, CondBranch):
                    term.target = "L_nowhere"
                    return True
            return changed

        monkeypatch.setattr(driver, "fold_constants", evil)
        with pytest.raises(SanitizeError) as exc:
            _verify(LOOP_SUM)
        assert exc.value.function == "main"
        assert exc.value.stage == "const_fold"
        assert any("resolves to no block" in v for v in exc.value.violations)

    def test_stale_edges_caught_at_the_pass(self, monkeypatch):
        real = driver.local_cse

        def evil(func, target):
            changed = real(func, target)
            for block in func.blocks:
                if block.succs:
                    block.succs.clear()
                    return True
            return changed

        monkeypatch.setattr(driver, "local_cse", evil)
        with pytest.raises(SanitizeError) as exc:
            _verify(LOOP_SUM)
        assert exc.value.stage == "local_cse"
        assert any("stale" in v for v in exc.value.violations)


class TestObservability:
    def test_metrics_and_decision_log_on_miscompile(self, monkeypatch):
        from repro.obs import Observer, deactivate, install

        real = driver.strength_reduce

        def evil(func):
            changed = real(func)
            return _flip_first_lt_branch(func) or changed

        monkeypatch.setattr(driver, "strength_reduce", evil)
        observer = Observer()
        install(observer)
        try:
            with pytest.raises(MiscompileError):
                _verify(LOOP_SUM)
        finally:
            deactivate()
        snapshot = observer.snapshot()
        counters = snapshot["metrics"]["counters"]
        assert counters.get("verify.miscompiles") == 1
        assert counters.get("verify.oracle.runs", 0) >= 1
        assert counters.get("verify.bisect.steps", 0) >= 1
        assert counters.get("verify.sanitize.pass", 0) > 0
        decisions = snapshot["decisions"]
        assert any(
            d.get("outcome") == "verify_miscompile" for d in decisions
        )

    def test_metrics_on_clean_run(self):
        from repro.obs import Observer, deactivate, install

        observer = Observer()
        install(observer)
        try:
            _verify(LOOP_SUM)
        finally:
            deactivate()
        counters = observer.snapshot()["metrics"]["counters"]
        assert counters.get("verify.sanitize.fail", 0) == 0
        assert counters.get("verify.miscompiles", 0) == 0
        assert counters.get("verify.oracle.runs", 0) >= 2
