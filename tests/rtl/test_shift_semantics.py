"""The canonical shift-count model: counts reduced modulo 32.

One model, everywhere: :func:`repro.rtl.arith.eval_binop` masks shift
counts with ``SHIFT_MASK`` (31), and every consumer — the front-end's
literal folder, ``const_fold``, CSE, the EASE interpreter — calls that
one function, so compile-time folding and run-time evaluation agree by
construction.  These tests pin the model itself, pin the machine
descriptions to it, and cross-check folder-vs-interpreter on whole
programs where one side folds at compile time and the other shifts at
run time.
"""

import pytest

from repro.rtl.arith import SHIFT_MASK, eval_binop
from repro.targets import get_target
from tests.conftest import run_c

COUNTS = [0, 1, 5, 31, 32, 33, 40, 63, 64, 65]


class TestModel:
    def test_mask_is_mod_32(self):
        assert SHIFT_MASK == 31

    @pytest.mark.parametrize("count", COUNTS)
    def test_left_shift_wraps_count(self, count):
        assert eval_binop("<<", 1, count) == eval_binop("<<", 1, count & 31)

    @pytest.mark.parametrize("count", COUNTS)
    def test_right_shift_wraps_count(self, count):
        assert eval_binop(">>", -8, count) == eval_binop(">>", -8, count & 31)

    def test_canonical_values(self):
        assert eval_binop("<<", 1, 32) == 1  # not 0: mod-32, not mod-64
        assert eval_binop("<<", 1, 33) == 2
        assert eval_binop("<<", 3, 31) == -0x80000000  # sign-bit wrap
        assert eval_binop(">>", -8, 1) == -4  # arithmetic, not logical
        assert eval_binop(">>", -1, 63) == -1
        assert eval_binop("<<", 1, -1) == eval_binop("<<", 1, 31)

    @pytest.mark.parametrize("target", ["sparc", "m68020"])
    def test_machines_declare_the_shared_model(self, target):
        # A target diverging from arith's model (e.g. a true mod-64
        # 68020) must parametrize eval_binop first; until then the
        # declaration and the implementation must match.
        assert get_target(target).shift_mask == SHIFT_MASK


def _const_source(count: int) -> str:
    # Both operands literal: folded at compile time (front end or
    # const_fold, depending on the pipeline).
    return (
        "int main() {\n"
        f"    return ((5 << {count}) ^ ((0 - 7) >> {count})) & 255;\n"
        "}\n"
    )


_OPAQUE_SOURCE = """
int main() {
    int c;
    c = getchar();
    return ((5 << c) ^ ((0 - 7) >> c)) & 255;
}
"""


class TestFolderInterpreterAgree:
    @pytest.mark.parametrize("count", COUNTS)
    @pytest.mark.parametrize("target", ["sparc", "m68020"])
    def test_constant_fold_matches_runtime_shift(self, count, target):
        # Constant counts fold at compile time; the opaque count arrives
        # via stdin and is shifted by the interpreter at run time.  The
        # exit codes must agree — this is exactly the divergence a
        # mismatched folder/interpreter shift model would produce.
        folded = run_c(_const_source(count), target=target)
        runtime = run_c(_OPAQUE_SOURCE, stdin=bytes([count]), target=target)
        reference = run_c(_OPAQUE_SOURCE, stdin=bytes([count]))
        assert folded[1] == runtime[1] == reference[1]

    @pytest.mark.parametrize("count", [31, 32, 33, 64])
    def test_replicated_pipeline_agrees_too(self, count):
        folded = run_c(_const_source(count), target="sparc", replication="jumps")
        reference = run_c(_OPAQUE_SOURCE, stdin=bytes([count]))
        assert folded[1] == reference[1]
