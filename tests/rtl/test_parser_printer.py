"""Round-trip tests between the RTL parser and printer."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl import (
    Assign,
    BinOp,
    Call,
    Compare,
    CondBranch,
    Const,
    IndirectJump,
    Jump,
    Local,
    Mem,
    Nop,
    Reg,
    Return,
    RTLSyntaxError,
    Sym,
    UnOp,
    format_expr,
    format_insn,
    parse_expr,
    parse_insn,
    parse_insns,
)


class TestExprRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "1",
            "d[0]",
            "a[6]",
            "NZ",
            "x.",
            "FP+i.",
            "L[a[6]+4]",
            "B[a[0]+1]",
            "d[0]+d[1]*2",
            "(d[0]+d[1])*2",
            "d[0]<<2",
            "d[0]&255",
            "-d[3]",
            "~d[3]",
        ],
    )
    def test_round_trip(self, text):
        expr = parse_expr(text)
        assert parse_expr(format_expr(expr)) == expr

    def test_precedence_parsing(self):
        expr = parse_expr("1+2*3")
        assert expr == BinOp("+", Const(1), BinOp("*", Const(2), Const(3)))

    def test_parentheses_override_precedence(self):
        expr = parse_expr("(1+2)*3")
        assert expr == BinOp("*", BinOp("+", Const(1), Const(2)), Const(3))

    def test_memory_width(self):
        assert parse_expr("B[a[0]]") == Mem(Reg("a", 0), "B")
        assert parse_expr("W[a[0]]") == Mem(Reg("a", 0), "W")
        assert parse_expr("L[a[0]]") == Mem(Reg("a", 0), "L")

    def test_symbol_and_local(self):
        assert parse_expr("_n.") == Sym("_n")
        assert parse_expr("FP+count.") == Local("count")

    def test_negative_constant_folds(self):
        assert parse_expr("-5") == Const(-5)

    def test_bad_input_raises(self):
        with pytest.raises(RTLSyntaxError):
            parse_expr("d[")
        with pytest.raises(RTLSyntaxError):
            parse_expr("foo")  # bare name without dot
        with pytest.raises(RTLSyntaxError):
            parse_expr("1 2")


class TestInsnRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "d[0]=d[0]+1;",
            "L[a[6]+8]=d[0];",
            "B[a[0]]=B[a[0]+1];",
            "NZ=d[0]?L[_n.];",
            "PC=NZ>=0,L16;",
            "PC=NZ<0,L15;",
            "PC=NZ==0,L1;",
            "PC=NZ!=0,L1;",
            "PC=L15;",
            "PC=RT;",
            "NOP;",
            "CALL _printf,2;",
        ],
    )
    def test_round_trip(self, text):
        insn = parse_insn(text)
        printed = format_insn(insn)
        reparsed = parse_insn(printed)
        assert format_insn(reparsed) == printed

    def test_parse_assign(self):
        insn = parse_insn("d[0]=d[1]+2;")
        assert isinstance(insn, Assign)
        assert insn.dst == Reg("d", 0)
        assert insn.src == BinOp("+", Reg("d", 1), Const(2))

    def test_parse_compare(self):
        insn = parse_insn("NZ=d[0]?10;")
        assert isinstance(insn, Compare)
        assert insn.left == Reg("d", 0)
        assert insn.right == Const(10)

    def test_parse_cond_branch(self):
        insn = parse_insn("PC=NZ<=0,L22;")
        assert isinstance(insn, CondBranch)
        assert insn.rel == "<="
        assert insn.target == "L22"

    def test_parse_jump_and_return(self):
        assert isinstance(parse_insn("PC=L5;"), Jump)
        assert isinstance(parse_insn("PC=RT;"), Return)

    def test_parse_indirect_jump(self):
        insn = parse_insn("PC=L[a[0]]<L1,L2,L3>;")
        assert isinstance(insn, IndirectJump)
        assert insn.targets == ["L1", "L2", "L3"]

    def test_parse_call(self):
        insn = parse_insn("CALL _strlen,1;")
        assert isinstance(insn, Call)
        assert insn.func == "strlen"
        assert insn.nargs == 1

    def test_parse_nop(self):
        assert isinstance(parse_insn("NOP;"), Nop)


class TestListings:
    def test_labels_attach_to_following_insn(self):
        pairs = parse_insns(
            """
            d[0]=1;
            L1:
              d[0]=d[0]+1;
              PC=L1;
            """
        )
        labels = [label for label, _ in pairs]
        assert labels == [None, "L1", None]

    def test_comments_are_ignored(self):
        pairs = parse_insns("d[0]=1;  # init\n# whole line\nPC=RT;")
        assert len(pairs) == 2

    def test_multiple_insns_per_line(self):
        pairs = parse_insns("d[0]=1; d[1]=2; PC=RT;")
        assert len(pairs) == 3

    def test_trailing_label_raises(self):
        with pytest.raises(RTLSyntaxError):
            parse_insns("d[0]=1;\nL9:")


# --- property-based round trip ---------------------------------------------

_leaf = st.one_of(
    st.integers(min_value=0, max_value=1 << 20).map(Const),
    st.builds(Reg, st.sampled_from(["d", "a", "r", "v"]), st.integers(0, 31)),
    st.sampled_from(["x", "y", "_n", "buf"]).map(Sym),
    st.sampled_from(["i", "j", "count"]).map(Local),
)


def _extend(children):
    return st.one_of(
        st.builds(BinOp, st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"]), children, children),
        st.builds(UnOp, st.sampled_from(["-", "~"]), children),
        st.builds(Mem, children, st.sampled_from(["B", "W", "L"])),
    )


_exprs = st.recursive(_leaf, _extend, max_leaves=12)


class TestPropertyRoundTrip:
    @given(_exprs)
    def test_format_parse_format_is_stable(self, expr):
        printed = format_expr(expr)
        reparsed = parse_expr(printed)
        assert format_expr(reparsed) == printed

    @given(_exprs)
    def test_parse_of_format_preserves_semantics_structurally(self, expr):
        # Unary minus of a constant folds during parsing; normalize both
        # sides through one print/parse cycle and compare.
        once = parse_expr(format_expr(expr))
        twice = parse_expr(format_expr(once))
        assert once == twice


class TestFunctionRoundTrip:
    def test_format_parse_function_round_trip(self):
        from repro.rtl import format_function, parse_function_text
        from tests.conftest import function_from_text

        func = function_from_text(
            "roundtrip",
            """
            d[0]=0;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        printed = format_function(func)
        reparsed = parse_function_text(printed)
        assert reparsed.name == "roundtrip"
        assert format_function(reparsed) == printed

    def test_params_preserved(self):
        from repro.rtl import format_function, parse_function_text
        from repro.cfg import Function, build_function
        from repro.rtl import parse_insns

        func = build_function("f", parse_insns("rv[0]=arg[0];\nPC=RT;"), ["x", "y"])
        printed = format_function(func)
        assert "function f(x, y)" in printed
        reparsed = parse_function_text(printed)
        assert reparsed.params == ["x", "y"]

    def test_bad_header_rejected(self):
        from repro.rtl import RTLSyntaxError, parse_function_text
        import pytest

        with pytest.raises(RTLSyntaxError):
            parse_function_text("nonsense here\nPC=RT;")
        with pytest.raises(RTLSyntaxError):
            parse_function_text("")

    def test_replicated_function_round_trips(self):
        from repro.core import replicate_jumps
        from repro.rtl import format_function, parse_function_text
        from tests.conftest import function_from_text

        func = function_from_text(
            "g",
            """
            d[0]=0;
            PC=L2;
            L1:
              d[0]=d[0]+1;
            L2:
              NZ=d[0]?10;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        replicate_jumps(func)
        printed = format_function(func)
        assert format_function(parse_function_text(printed)) == printed
