"""32-bit arithmetic semantics tests (shared by folding and interpreter)."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl.arith import compare_relation, eval_binop, eval_unop, wrap32

i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestWrap:
    def test_identity_in_range(self):
        assert wrap32(0) == 0
        assert wrap32(2**31 - 1) == 2**31 - 1
        assert wrap32(-(2**31)) == -(2**31)

    def test_overflow_wraps(self):
        assert wrap32(2**31) == -(2**31)
        assert wrap32(2**32) == 0
        assert wrap32(-(2**31) - 1) == 2**31 - 1

    @given(st.integers(-(2**40), 2**40))
    def test_always_in_range(self, value):
        assert -(2**31) <= wrap32(value) <= 2**31 - 1

    @given(st.integers(-(2**40), 2**40))
    def test_congruent_mod_2_32(self, value):
        assert (wrap32(value) - value) % (2**32) == 0


class TestBinops:
    def test_division_truncates_toward_zero(self):
        assert eval_binop("/", 7, 2) == 3
        assert eval_binop("/", -7, 2) == -3
        assert eval_binop("/", 7, -2) == -3
        assert eval_binop("/", -7, -2) == 3

    def test_remainder_sign_follows_dividend(self):
        assert eval_binop("%", 7, 3) == 1
        assert eval_binop("%", -7, 3) == -1
        assert eval_binop("%", 7, -3) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            eval_binop("/", 1, 0)
        with pytest.raises(ZeroDivisionError):
            eval_binop("%", 1, 0)

    def test_shift_counts_masked(self):
        assert eval_binop("<<", 1, 33) == 2  # 33 & 31 == 1
        assert eval_binop(">>", 4, 34) == 1

    def test_arithmetic_shift_right(self):
        assert eval_binop(">>", -8, 1) == -4

    @given(i32, i32)
    def test_div_rem_identity(self, a, b):
        if b == 0:
            return
        q = eval_binop("/", a, b)
        r = eval_binop("%", a, b)
        assert wrap32(q * b + r) == a

    @given(i32, i32)
    def test_results_are_32bit(self, a, b):
        for op in ("+", "-", "*", "&", "|", "^"):
            result = eval_binop(op, a, b)
            assert -(2**31) <= result <= 2**31 - 1

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            eval_binop("**", 2, 3)


class TestUnopsAndRelations:
    def test_negate_and_complement(self):
        assert eval_unop("-", 5) == -5
        assert eval_unop("-", -(2**31)) == -(2**31)  # INT_MIN wraps
        assert eval_unop("~", 0) == -1

    @given(i32, i32)
    def test_relations_are_consistent(self, a, b):
        assert compare_relation("<", a, b) == (a < b)
        assert compare_relation("==", a, b) == (a == b)
        assert compare_relation("<", a, b) != compare_relation(">=", a, b)
        assert compare_relation(">", a, b) != compare_relation("<=", a, b)
        assert compare_relation("==", a, b) != compare_relation("!=", a, b)
