"""Unit tests for RTL expressions."""

import pytest

from repro.rtl import (
    BinOp,
    Const,
    Local,
    Mem,
    Reg,
    Sym,
    UnOp,
    locals_in,
    map_expr,
    mems_in,
    regs_in,
    subst,
    walk,
)


class TestConstruction:
    def test_expressions_are_hashable(self):
        exprs = {
            Const(1),
            Reg("d", 0),
            Sym("x"),
            Local("i"),
            Mem(Reg("a", 0), "L"),
            BinOp("+", Const(1), Const(2)),
            UnOp("-", Const(3)),
        }
        assert len(exprs) == 7

    def test_structural_equality(self):
        assert BinOp("+", Reg("d", 0), Const(1)) == BinOp("+", Reg("d", 0), Const(1))
        assert BinOp("+", Reg("d", 0), Const(1)) != BinOp("+", Reg("d", 1), Const(1))
        assert Mem(Sym("x"), "L") != Mem(Sym("x"), "B")

    def test_expressions_are_immutable(self):
        reg = Reg("d", 0)
        with pytest.raises(Exception):
            reg.index = 5  # type: ignore[misc]


class TestWalk:
    def test_walk_yields_all_nodes_preorder(self):
        expr = BinOp("+", Mem(Reg("a", 0), "L"), Const(4))
        nodes = list(walk(expr))
        assert nodes[0] is expr
        assert Reg("a", 0) in nodes
        assert Const(4) in nodes
        assert len(nodes) == 4

    def test_regs_in_finds_nested_registers(self):
        expr = Mem(BinOp("+", Reg("a", 6), BinOp("*", Reg("d", 1), Const(4))), "L")
        assert set(regs_in(expr)) == {Reg("a", 6), Reg("d", 1)}

    def test_mems_in_finds_nested_memory(self):
        inner = Mem(Reg("a", 0), "L")
        outer = Mem(BinOp("+", inner, Const(4)), "B")
        assert set(mems_in(outer)) == {inner, outer}

    def test_locals_in(self):
        expr = BinOp("+", Mem(Local("i"), "L"), Mem(Local("j"), "L"))
        assert {loc.name for loc in locals_in(expr)} == {"i", "j"}


class TestSubstitution:
    def test_subst_register_by_constant(self):
        expr = BinOp("+", Reg("v", 1), Reg("v", 2))
        result = subst(expr, {Reg("v", 1): Const(3)})
        assert result == BinOp("+", Const(3), Reg("v", 2))

    def test_subst_inside_memory_address(self):
        expr = Mem(BinOp("+", Reg("v", 1), Const(8)), "L")
        result = subst(expr, {Reg("v", 1): Reg("a", 0)})
        assert result == Mem(BinOp("+", Reg("a", 0), Const(8)), "L")

    def test_subst_whole_subtree(self):
        sub = BinOp("+", Reg("d", 0), Const(1))
        expr = BinOp("*", sub, Const(2))
        result = subst(expr, {sub: Reg("d", 5)})
        assert result == BinOp("*", Reg("d", 5), Const(2))

    def test_subst_no_match_returns_equal_tree(self):
        expr = BinOp("-", Reg("d", 0), Const(1))
        assert subst(expr, {Reg("d", 9): Const(0)}) == expr

    def test_map_expr_bottom_up(self):
        # Replace every constant by its double; inner first.
        expr = BinOp("+", Const(1), BinOp("*", Const(2), Reg("d", 0)))

        def double(node):
            if isinstance(node, Const):
                return Const(node.value * 2)
            return node

        result = map_expr(expr, double)
        assert result == BinOp("+", Const(2), BinOp("*", Const(4), Reg("d", 0)))
