"""Unit tests for the instruction dataflow/control-flow interface."""

import pytest

from repro.rtl import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Jump,
    Nop,
    Return,
    reverse_relation,
)
from repro.rtl.expr import NZ, BinOp, Const, Mem, Reg


class TestDataflow:
    def test_assign_to_register(self):
        insn = Assign(Reg("d", 0), BinOp("+", Reg("d", 1), Const(1)))
        assert insn.defined_reg() == Reg("d", 0)
        assert insn.used_regs() == {Reg("d", 1)}
        assert not insn.stores_mem()

    def test_assign_to_memory_reads_address(self):
        insn = Assign(Mem(BinOp("+", Reg("a", 0), Const(4)), "L"), Reg("d", 2))
        assert insn.defined_reg() is None
        assert insn.used_regs() == {Reg("a", 0), Reg("d", 2)}
        assert insn.stores_mem()

    def test_compare_defines_condition_codes(self):
        insn = Compare(Reg("d", 0), Const(5))
        assert insn.defined_reg() == NZ
        assert insn.used_regs() == {Reg("d", 0)}

    def test_cond_branch_reads_condition_codes(self):
        insn = CondBranch("<", "L1")
        assert NZ in insn.used_regs()
        assert insn.is_transfer()

    def test_call_uses_arg_registers(self):
        insn = Call("f", 3)
        assert insn.used_regs() == {Reg("arg", 0), Reg("arg", 1), Reg("arg", 2)}
        assert insn.defined_reg() == Reg("rv", 0)
        assert insn.stores_mem()  # conservative

    def test_return_uses_return_value(self):
        assert Reg("rv", 0) in Return().used_regs()

    def test_nop_is_inert(self):
        nop = Nop()
        assert nop.defined_reg() is None
        assert nop.used_regs() == set()
        assert not nop.is_transfer()


class TestControlFlow:
    def test_branch_targets(self):
        assert Jump("L5").branch_targets() == ("L5",)
        assert CondBranch("==", "L9").branch_targets() == ("L9",)
        assert IndirectJump(Reg("d", 0), ["A", "B"]).branch_targets() == ("A", "B")
        assert Return().branch_targets() == ()
        assert Assign(Reg("d", 0), Const(0)).branch_targets() == ()

    def test_retarget(self):
        jump = Jump("Old")
        jump.retarget("Old", "New")
        assert jump.target == "New"
        jump.retarget("Missing", "X")
        assert jump.target == "New"

    def test_indirect_retarget_all_occurrences(self):
        ij = IndirectJump(Reg("d", 0), ["A", "B", "A"])
        ij.retarget("A", "C")
        assert ij.targets == ["C", "B", "C"]

    def test_cond_branch_reverse(self):
        branch = CondBranch(">=", "L1")
        branch.reverse("L2")
        assert branch.rel == "<"
        assert branch.target == "L2"

    @pytest.mark.parametrize(
        "rel,expected",
        [("<", ">="), (">=", "<"), (">", "<="), ("<=", ">"), ("==", "!="), ("!=", "==")],
    )
    def test_relation_negation_table(self, rel, expected):
        assert reverse_relation(rel) == expected
        assert reverse_relation(expected) == rel

    def test_bad_relation_rejected(self):
        with pytest.raises(ValueError):
            CondBranch("<>", "L1")


class TestCloning:
    def test_clones_are_independent(self):
        original = Jump("L1")
        copy = original.clone()
        copy.retarget("L1", "L2")
        assert original.target == "L1"
        assert copy.target == "L2"
        assert original.uid != copy.uid

    def test_clone_does_not_copy_no_replicate_flag(self):
        jump = Jump("L1")
        jump.no_replicate = True
        assert jump.clone().no_replicate is False

    def test_substitute_rewrites_uses_only(self):
        insn = Assign(Reg("d", 0), BinOp("+", Reg("d", 0), Const(1)))
        insn.substitute({Reg("d", 0): Reg("d", 5)})
        # The destination (a definition) must stay d[0].
        assert insn.dst == Reg("d", 0)
        assert insn.used_regs() == {Reg("d", 5)}

    def test_substitute_memory_destination_address(self):
        insn = Assign(Mem(Reg("a", 0), "L"), Const(1))
        insn.substitute({Reg("a", 0): Reg("a", 3)})
        assert insn.dst == Mem(Reg("a", 3), "L")

    def test_assign_requires_lvalue(self):
        with pytest.raises(TypeError):
            Assign(Const(1), Const(2))  # type: ignore[arg-type]
