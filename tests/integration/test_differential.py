"""Differential testing of the whole pipeline on the Table-3 suite.

The observable behaviour (stdout + exit code) of every benchmark must be
identical across: unoptimized front-end output, and both targets under
all three paper configurations (SIMPLE / LOOPS / JUMPS).
"""

import pytest

from repro.benchsuite import PROGRAMS
from repro.ease import Interpreter, measure_program
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

# Small programs run in every configuration; the heavyweights get a
# reduced matrix so the suite stays fast.
FAST_PROGRAMS = [
    "banner",
    "cal",
    "deroff",
    "od",
    "sort",
    "wc",
    "queens",
    "quicksort",
    "grep",
]
HEAVY_PROGRAMS = ["compact", "bubblesort", "matmult", "sieve", "mincost"]

_reference_cache = {}


def reference(name):
    if name not in _reference_cache:
        bench = PROGRAMS[name]
        result = Interpreter(compile_c(bench.source)).run(stdin=bench.stdin)
        _reference_cache[name] = (result.output, result.exit_code)
    return _reference_cache[name]


def check(name, target_name, replication):
    bench = PROGRAMS[name]
    program = compile_c(bench.source)
    target = get_target(target_name)
    optimize_program(program, target, OptimizationConfig(replication=replication))
    m = measure_program(program, target, stdin=bench.stdin)
    ref_out, ref_code = reference(name)
    assert m.output == ref_out, f"{name}/{target_name}/{replication} output differs"
    assert m.exit_code == ref_code
    return m


@pytest.mark.parametrize("replication", ["none", "loops", "jumps"])
@pytest.mark.parametrize("target_name", ["m68020", "sparc"])
@pytest.mark.parametrize("name", FAST_PROGRAMS)
def test_fast_programs_full_matrix(name, target_name, replication):
    check(name, target_name, replication)


@pytest.mark.parametrize("name", HEAVY_PROGRAMS)
def test_heavy_programs_jumps_config(name):
    check(name, "sparc", "jumps")


@pytest.mark.parametrize("name", ["compact", "sieve"])
def test_heavy_programs_m68020(name):
    check(name, "m68020", "jumps")


@pytest.mark.parametrize("name", FAST_PROGRAMS)
def test_jumps_eliminates_dynamic_jumps(name):
    m = check(name, "sparc", "jumps")
    assert m.dynamic_jumps == 0


@pytest.mark.parametrize("name", FAST_PROGRAMS)
def test_replication_never_slows_execution(name):
    simple = check(name, "sparc", "none")
    jumps = check(name, "sparc", "jumps")
    assert jumps.dynamic_insns <= simple.dynamic_insns
