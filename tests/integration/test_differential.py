"""Differential testing of the whole pipeline on the Table-3 suite.

The observable behaviour (stdout + exit code) of every benchmark must be
identical across: unoptimized front-end output, and both targets under
all three paper configurations (SIMPLE / LOOPS / JUMPS).

The whole matrix — optimized cells plus the unoptimized references — is
produced once per session by the parallel execution layer
(:class:`repro.exec.ParallelRunner`); each test then only asserts over
the envelopes.  Every optimized cell runs with ``validate_cfg`` on, so
the CFG invariant validator executes after every optimizer pass across
the entire differential matrix.

Environment knobs:

* ``REPRO_TEST_PARALLEL`` — worker processes for the matrix (default
  ``0`` = inline in this process);
* ``REPRO_CACHE_DIR`` — reuse/populate a persistent result cache.
"""

import os

import pytest

from repro.benchsuite.runner import persistent_cache_from_env
from repro.exec import CellSpec, ParallelRunner

# Small programs run in every configuration; the heavyweights get a
# reduced matrix so the suite stays fast.
FAST_PROGRAMS = [
    "banner",
    "cal",
    "deroff",
    "od",
    "sort",
    "wc",
    "queens",
    "quicksort",
    "grep",
]
HEAVY_PROGRAMS = ["compact", "bubblesort", "matmult", "sieve", "mincost"]
HEAVY_M68020 = ["compact", "sieve"]


def _matrix_specs():
    specs = []
    for name in FAST_PROGRAMS:
        for target in ("m68020", "sparc"):
            for replication in ("none", "loops", "jumps"):
                specs.append(
                    CellSpec(
                        program=name,
                        target=target,
                        replication=replication,
                        validate_cfg=True,
                    )
                )
    for name in HEAVY_PROGRAMS:
        specs.append(
            CellSpec(
                program=name, target="sparc", replication="jumps", validate_cfg=True
            )
        )
    for name in HEAVY_M68020:
        specs.append(
            CellSpec(
                program=name, target="m68020", replication="jumps", validate_cfg=True
            )
        )
    # Unoptimized front-end runs: the semantic references.
    for name in FAST_PROGRAMS + HEAVY_PROGRAMS:
        specs.append(CellSpec(program=name, optimize=False))
    return specs


@pytest.fixture(scope="session")
def matrix():
    workers = int(os.environ.get("REPRO_TEST_PARALLEL", "0") or 0)
    runner = ParallelRunner(workers=workers, cache=persistent_cache_from_env())
    results = {}
    for result in runner.run(_matrix_specs()):
        key = (
            result.spec.program,
            result.spec.target if result.spec.optimize else None,
            result.spec.replication if result.spec.optimize else None,
        )
        results[key] = result
    return results


def check(matrix, name, target_name, replication):
    result = matrix[(name, target_name, replication)]
    assert result.ok, f"{name}/{target_name}/{replication} crashed:\n{result.error}"
    reference = matrix[(name, None, None)]
    assert reference.ok, f"{name} reference crashed:\n{reference.error}"
    m = result.measurement
    assert m.output == reference.measurement.output, (
        f"{name}/{target_name}/{replication} output differs"
    )
    assert m.exit_code == reference.measurement.exit_code
    return m


@pytest.mark.parametrize("replication", ["none", "loops", "jumps"])
@pytest.mark.parametrize("target_name", ["m68020", "sparc"])
@pytest.mark.parametrize("name", FAST_PROGRAMS)
def test_fast_programs_full_matrix(matrix, name, target_name, replication):
    check(matrix, name, target_name, replication)


@pytest.mark.parametrize("name", HEAVY_PROGRAMS)
def test_heavy_programs_jumps_config(matrix, name):
    check(matrix, name, "sparc", "jumps")


@pytest.mark.parametrize("name", HEAVY_M68020)
def test_heavy_programs_m68020(matrix, name):
    check(matrix, name, "m68020", "jumps")


@pytest.mark.parametrize("name", FAST_PROGRAMS)
def test_jumps_eliminates_dynamic_jumps(matrix, name):
    m = check(matrix, name, "sparc", "jumps")
    assert m.dynamic_jumps == 0


@pytest.mark.parametrize("name", FAST_PROGRAMS)
def test_replication_never_slows_execution(matrix, name):
    simple = check(matrix, name, "sparc", "none")
    jumps = check(matrix, name, "sparc", "jumps")
    assert jumps.dynamic_insns <= simple.dynamic_insns
