"""Property-based differential testing with randomly generated mini-C.

Hypothesis builds small, terminating C programs (bounded ``for``,
``while`` and ``do``/``while`` loops, guarded divisions, and bounded
*forward* ``goto``/label statements — the construct the paper is about);
the observable behaviour of the optimized code — for both targets and
all three paper configurations — must match the unoptimized front-end
output exactly.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import run_c

VARS = ["a", "b", "c", "d"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.integers(0, 2))
        if leaf == 0:
            return str(draw(st.integers(-50, 50)))
        return draw(st.sampled_from(VARS))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"]))
    left = draw(expressions(depth=depth + 1))
    if op in ("/", "%"):
        right = str(draw(st.integers(1, 9)))  # guarded: no division by zero
    elif op in ("<<", ">>"):
        right = str(draw(st.integers(0, 8)))
    else:
        right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def conditions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        rel = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return f"({draw(expressions())} {rel} {draw(expressions())})"
    joiner = draw(st.sampled_from(["&&", "||"]))
    left = draw(conditions(depth=depth + 1))
    right = draw(conditions(depth=depth + 1))
    if draw(st.booleans()):
        return f"(!{left})"
    return f"({left} {joiner} {right})"


@st.composite
def statements(draw, depth, loop_depth, loop_counter, label_counter=None):
    if label_counter is None:
        label_counter = [0]
    kind = draw(
        st.sampled_from(
            [
                "assign",
                "assign",
                "compound",
                "if",
                "ifelse",
                "for",
                "while",
                "dowhile",
                "goto",
                "switch",
            ]
            + (["break", "continue"] if loop_depth > 0 else [])
        )
    )
    indent = "    " * (depth + 1)
    if kind == "assign" or depth >= 3:
        var = draw(st.sampled_from(VARS))
        return f"{indent}{var} = {draw(expressions())};"
    if kind == "compound":
        var = draw(st.sampled_from(VARS))
        op = draw(st.sampled_from(["+=", "-=", "*=", "^="]))
        return f"{indent}{var} {op} {draw(expressions())};"
    if kind == "break":
        return f"{indent}break;"
    if kind == "continue":
        return f"{indent}continue;"
    if kind == "if":
        body = draw(statements(depth + 1, loop_depth, loop_counter, label_counter))
        return f"{indent}if {draw(conditions())} {{\n{body}\n{indent}}}"
    if kind == "ifelse":
        then = draw(statements(depth + 1, loop_depth, loop_counter, label_counter))
        other = draw(statements(depth + 1, loop_depth, loop_counter, label_counter))
        return (
            f"{indent}if {draw(conditions())} {{\n{then}\n{indent}}} "
            f"else {{\n{other}\n{indent}}}"
        )
    if kind == "goto":
        # A bounded *forward* goto: conditionally skip the next statement,
        # landing on a label defined later in the same snippet.  The label
        # is fresh (function-scoped, counter-named) and the jump can only
        # move forward, so termination is unaffected.
        label = f"L{label_counter[0]}"
        label_counter[0] += 1
        skipped = draw(
            statements(depth + 1, loop_depth, loop_counter, label_counter)
        )
        landing = draw(st.sampled_from(VARS))
        return (
            f"{indent}if {draw(conditions())} {{\n{indent}    goto {label};\n"
            f"{indent}}}\n{skipped}\n"
            f"{indent}{label}: {landing} = {landing};"
        )
    if kind == "switch":
        var = draw(st.sampled_from(VARS))
        arms = []
        for value in range(draw(st.integers(2, 4))):
            body = draw(
                statements(depth + 1, loop_depth, loop_counter, label_counter)
            )
            arms.append(f"{indent}case {value}:\n{body}\n{indent}    break;")
        default = draw(statements(depth + 1, loop_depth, loop_counter, label_counter))
        arms.append(f"{indent}default:\n{default}")
        joined = "\n".join(arms)
        return f"{indent}switch ({var} & 7) {{\n{joined}\n{indent}}}"
    # Every loop gets a fresh counter variable that body statements can
    # never write (VARS excludes loop counters), so loops always terminate.
    counter = f"i{loop_counter[0]}"
    loop_counter[0] += 1
    bound = draw(st.integers(1, 6))
    body = draw(statements(depth + 1, loop_depth + 1, loop_counter, label_counter))
    if kind == "while":
        # The counter advances at the top of the body, so a generated
        # `continue` cannot skip it and loop forever.
        return (
            f"{indent}{counter} = 0;\n"
            f"{indent}while ({counter} < {bound}) {{\n"
            f"{indent}    {counter} = {counter} + 1;\n"
            f"{body}\n{indent}}}"
        )
    if kind == "dowhile":
        return (
            f"{indent}{counter} = 0;\n"
            f"{indent}do {{\n"
            f"{indent}    {counter} = {counter} + 1;\n"
            f"{body}\n{indent}}} while ({counter} < {bound});"
        )
    return (
        f"{indent}for ({counter} = 0; {counter} < {bound}; {counter}++) {{\n"
        f"{body}\n{indent}}}"
    )


@st.composite
def programs(draw):
    loop_counter = [0]
    label_counter = [0]
    n_stmts = draw(st.integers(1, 5))
    body = "\n".join(
        draw(statements(0, 0, loop_counter, label_counter)) for _ in range(n_stmts)
    )
    counters = "".join(f"    int i{k};\n" for k in range(max(1, loop_counter[0])))
    inits = "\n".join(
        f"    {v} = {draw(st.integers(-20, 20))};" for v in VARS
    )
    return (
        "int main() {\n"
        "    int a, b, c, d;\n"
        f"{counters}"
        f"{inits}\n"
        f"{body}\n"
        '    printf("%d %d %d %d\\n", a, b, c, d);\n'
        "    return (a ^ b ^ c ^ d) & 255;\n"
        "}\n"
    )


class TestRandomPrograms:
    @settings(
        max_examples=18,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(programs())
    def test_optimized_behaviour_matches_reference(self, source):
        reference = run_c(source)
        for target in ("m68020", "sparc"):
            for replication in ("none", "loops", "jumps"):
                got = run_c(source, target=target, replication=replication)
                assert got == reference, (
                    f"{target}/{replication} diverged\n{source}"
                )

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(programs())
    def test_jumps_leaves_no_unconditional_jumps(self, source):
        from repro.frontend import compile_c
        from repro.opt import OptimizationConfig, optimize_program
        from repro.targets import get_target

        program = compile_c(source)
        stats = optimize_program(
            program, get_target("sparc"), OptimizationConfig(replication="jumps")
        )
        # Indirect-jump-adjacent and irreducibility leftovers are allowed;
        # programs without switches should reach zero — unless the §5.2
        # convergence guard (or, as a backstop, a safety valve)
        # legitimately kept a jump whose replication would cascade,
        # which goto-into-loop programs can force (see
        # tests/core/test_replication_valve.py and
        # tests/core/test_replication_selfcopy.py).
        if (
            "switch" not in source
            and stats.valve_trips == 0
            and stats.guard_stops == 0
        ):
            assert program.jump_count() == 0
