"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_example_inventory():
    # The README promises at least these five.
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "loop_rotation",
        "if_then_else",
        "cache_study",
        "unstructured_goto",
    } <= names
