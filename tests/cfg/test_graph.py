"""Tests for basic-block construction and flow-edge maintenance."""

import pytest

from repro.cfg import (
    build_function,
    check_function,
    compute_flow,
    reachable_blocks,
)
from repro.rtl import parse_insns
from tests.conftest import function_from_text


class TestBlockSplitting:
    def test_blocks_split_at_labels_and_transfers(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
              PC=RT;
            """,
        )
        assert [b.label for b in func.blocks] == ["B1", "L1", "B2"]
        assert func.blocks[0].size() == 1
        assert func.blocks[1].size() == 3
        assert func.blocks[2].size() == 1

    def test_label_in_midstream_splits_block(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            L1:
              d[0]=2;
              PC=RT;
            """,
        )
        assert len(func.blocks) == 2
        # The first block falls through into L1.
        assert func.blocks[0].succs == [func.blocks[1]]

    def test_transfer_always_ends_block(self):
        func = function_from_text("f", "PC=L1;\nL1:\n  PC=RT;")
        assert len(func.blocks) == 2
        for block in func.blocks:
            for insn in block.insns[:-1]:
                assert not insn.is_transfer()


class TestFlowEdges:
    def test_cond_branch_has_fallthrough_and_taken(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L2;
            d[0]=1;
            L2:
              PC=RT;
            """,
        )
        entry = func.blocks[0]
        assert [s.label for s in entry.succs] == ["B2", "L2"]

    def test_jump_has_single_successor(self):
        func = function_from_text("f", "PC=L9;\nL9:\n  PC=RT;")
        assert [s.label for s in func.blocks[0].succs] == ["L9"]

    def test_return_has_no_successors(self):
        func = function_from_text("f", "PC=RT;")
        assert func.blocks[0].succs == []

    def test_preds_are_mirror_of_succs(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L2;
            d[0]=1;
            L2:
              PC=RT;
            """,
        )
        for block in func.blocks:
            for succ in block.succs:
                assert block in succ.preds

    def test_indirect_jump_edges(self):
        func = function_from_text(
            "f",
            """
            PC=L[a[0]]<L1,L2>;
            L1:
              PC=RT;
            L2:
              PC=RT;
            """,
        )
        assert {s.label for s in func.blocks[0].succs} == {"L1", "L2"}

    def test_unknown_target_raises(self):
        with pytest.raises(KeyError):
            function_from_text("f", "PC=Lmissing;\nPC=RT;")

    def test_cond_branch_at_function_end_raises(self):
        with pytest.raises(ValueError):
            function_from_text("f", "NZ=d[0]?1;\nPC=NZ==0,B1;")


class TestReachability:
    def test_unreachable_block_detected(self):
        func = function_from_text(
            "f",
            """
            PC=L2;
            d[0]=99;
            PC=L2;
            L2:
              PC=RT;
            """,
        )
        reachable = reachable_blocks(func)
        labels = {b.label for b in reachable}
        assert labels == {"B1", "L2"}

    def test_check_function_passes_on_wellformed(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L2;
            d[0]=1;
            L2:
              PC=RT;
            """,
        )
        check_function(func)

    def test_check_function_rejects_fallthrough_off_end(self):
        func = function_from_text("f", "PC=RT;")
        func.blocks[0].insns.pop()
        compute_flow(func)
        with pytest.raises(AssertionError):
            check_function(func)
