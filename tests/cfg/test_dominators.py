"""Dominator-tree tests, including a networkx differential oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg import BasicBlock, Function, compute_dominators, compute_flow
from repro.rtl import Assign, Compare, CondBranch, Const, Jump, Reg, Return


def build_graph(edges, n):
    """Build a function whose CFG realizes the given edge list on n nodes.

    Node 0 is the entry.  Every node gets 0, 1 or 2 successors expressed as
    conditional branches / jumps; extra successors are not representable and
    are filtered by callers.
    """
    func = Function("g")
    blocks = [BasicBlock(f"N{i}") for i in range(n)]
    func.blocks = list(blocks)
    succs = {i: [] for i in range(n)}
    for a, b in edges:
        if b not in succs[a] and len(succs[a]) < 2:
            succs[a].append(b)
    for i, block in enumerate(blocks):
        block.insns = [Assign(Reg("d", 0), Const(i))]
        out = succs[i]
        if len(out) == 0:
            block.insns.append(Return())
        elif len(out) == 1:
            block.insns.append(Jump(f"N{out[0]}"))
        else:
            block.insns.append(Compare(Reg("d", 0), Const(0)))
            block.insns.append(CondBranch("==", f"N{out[0]}"))
            # Fall-through is positional; force the second edge with a
            # trampoline jump appended at the end of the function.
            tramp = BasicBlock(f"T{i}", [Jump(f"N{out[1]}")])
            func.blocks.append(tramp)
    # Re-home conditional fall-throughs: move each trampoline right after
    # its owner so the fall-through edge goes to the right place.
    owned = [b for b in func.blocks if b.label.startswith("T")]
    for tramp in owned:
        func.blocks.remove(tramp)
        owner = func.block_by_label(f"N{tramp.label[1:]}")
        func.blocks.insert(func.block_index(owner) + 1, tramp)
    compute_flow(func)
    return func


class TestKnownGraphs:
    def test_diamond(self):
        #    0
        #   / \
        #  1   2
        #   \ /
        #    3
        func = build_graph([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        dom = compute_dominators(func)
        n = {b.label: b for b in func.blocks}
        assert dom.idom(n["N3"]) is n["N0"]
        assert dom.idom(n["N1"]) is n["N0"]
        # N2 is reached through the T0 trampoline block.
        assert dom.idom(n["N2"]) is n["T0"]
        assert dom.dominates(n["N0"], n["N2"])
        assert dom.dominates(n["N0"], n["N3"])
        assert not dom.dominates(n["N1"], n["N3"])

    def test_chain(self):
        func = build_graph([(0, 1), (1, 2)], 3)
        dom = compute_dominators(func)
        n = {b.label: b for b in func.blocks}
        assert dom.idom(n["N2"]) is n["N1"]
        assert dom.dominates(n["N0"], n["N2"])

    def test_loop_header_dominates_body(self):
        func = build_graph([(0, 1), (1, 2), (2, 1)], 3)
        dom = compute_dominators(func)
        n = {b.label: b for b in func.blocks}
        assert dom.dominates(n["N1"], n["N2"])
        assert not dom.dominates(n["N2"], n["N1"])

    def test_entry_dominates_everything_reachable(self):
        func = build_graph([(0, 1), (0, 2), (1, 3), (2, 3), (3, 1)], 4)
        dom = compute_dominators(func)
        for block in func.blocks:
            if block in dom:
                assert dom.dominates(func.entry, block)


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    m = draw(st.integers(min_value=1, max_value=2 * n))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(m)
    ]
    # Ensure some connectivity from the entry.
    edges.append((0, draw(st.integers(0, n - 1))))
    return n, edges


class TestDifferentialAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_idom_matches_networkx(self, data):
        n, edges = data
        func = build_graph(edges, n)
        dom = compute_dominators(func)

        graph = nx.DiGraph()
        for block in func.blocks:
            graph.add_node(block.label)
            for succ in block.succs:
                graph.add_edge(block.label, succ.label)
        oracle = nx.immediate_dominators(graph, func.entry.label)
        # Both dominator computations ran on the identical graph (including
        # trampoline blocks), so immediate dominators must agree exactly.
        for block in func.blocks:
            if block not in dom or block is func.entry:
                continue
            mine = dom.idom(block)
            assert mine is not None
            assert oracle[block.label] == mine.label
