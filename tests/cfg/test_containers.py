"""Unit tests for Function/Program containers and frame layout."""

import pytest

from repro.cfg import Function, Program
from repro.cfg.block import GlobalData
from tests.conftest import function_from_text


class TestFrameLayout:
    def test_slots_are_four_byte_aligned(self):
        func = Function("f")
        func.add_local("a", 1)
        func.add_local("b", 4)
        func.add_local("c", 2)
        offsets = {name: off for name, (off, _) in func.frame.items()}
        for offset in offsets.values():
            assert offset % 4 == 0
        assert offsets["a"] < offsets["b"] < offsets["c"]

    def test_duplicate_local_rejected(self):
        func = Function("f")
        func.add_local("x", 4)
        with pytest.raises(ValueError):
            func.add_local("x", 4)

    def test_frame_size_covers_all_slots(self):
        func = Function("f")
        func.add_local("a", 40)
        func.add_local("b", 4)
        offset, size = func.frame["b"]
        assert func.frame_size >= offset + size


class TestLabels:
    def test_new_label_avoids_collisions(self):
        func = function_from_text("f", "L1000:\n  PC=RT;")
        label = func.new_label()
        assert label != "L1000"
        assert all(label != b.label for b in func.blocks)

    def test_block_by_label_missing(self):
        func = function_from_text("f", "PC=RT;")
        with pytest.raises(KeyError):
            func.block_by_label("nope")

    def test_next_block_of_last_is_none(self):
        func = function_from_text("f", "PC=RT;")
        assert func.next_block(func.blocks[-1]) is None

    def test_block_index_requires_membership(self):
        func = function_from_text("f", "PC=RT;")
        other = function_from_text("g", "PC=RT;")
        with pytest.raises(ValueError):
            func.block_index(other.blocks[0])


class TestProgram:
    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(function_from_text("main", "PC=RT;"))
        with pytest.raises(ValueError):
            program.add_function(function_from_text("main", "PC=RT;"))

    def test_duplicate_global_rejected(self):
        program = Program()
        program.add_global(GlobalData("g", 4))
        with pytest.raises(ValueError):
            program.add_global(GlobalData("g", 8))

    def test_intern_string_deduplicates(self):
        program = Program()
        first = program.intern_string("hello")
        second = program.intern_string("hello")
        third = program.intern_string("other")
        assert first == second
        assert first != third
        assert program.globals[first].init == b"hello\x00"

    def test_program_counts(self):
        program = Program()
        program.add_function(function_from_text("main", "PC=L1;\nL1:\n  PC=RT;"))
        assert program.insn_count() == 2
        assert program.jump_count() == 1

    def test_empty_function_entry_raises(self):
        with pytest.raises(ValueError):
            Function("f").entry
