"""T1/T2 reducibility tests."""

from repro.cfg import is_reducible
from tests.cfg.test_dominators import build_graph
from tests.conftest import function_from_text


class TestReducibility:
    def test_straight_line_is_reducible(self):
        func = build_graph([(0, 1), (1, 2)], 3)
        assert is_reducible(func)

    def test_single_loop_is_reducible(self):
        func = build_graph([(0, 1), (1, 2), (2, 1), (2, 3)], 4)
        assert is_reducible(func)

    def test_classic_irreducible_triangle(self):
        # 0 branches to 1 and 2; 1 and 2 form a two-entry cycle.
        func = build_graph([(0, 1), (0, 2), (1, 2), (2, 1)], 3)
        assert not is_reducible(func)

    def test_nested_loops_reducible(self):
        func = build_graph([(0, 1), (1, 2), (2, 1), (2, 3), (3, 0)], 4)
        assert is_reducible(func)

    def test_self_loop_reducible(self):
        func = function_from_text(
            "f",
            """
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
              PC=RT;
            """,
        )
        assert is_reducible(func)

    def test_irreducible_with_preamble(self):
        # Entry -> A; A -> B or C; B <-> C (two-entry loop reached two ways).
        func = build_graph([(0, 1), (1, 2), (1, 3), (2, 3), (3, 2)], 4)
        assert not is_reducible(func)

    def test_unreachable_irreducible_part_is_ignored(self):
        func = function_from_text(
            "f",
            """
            PC=RT;
            L1:
              NZ=d[0]?1;
              PC=NZ==0,L2;
              PC=L2;
            L2:
              PC=L1;
            """,
        )
        # Blocks L1/L2 are unreachable; only the reachable part matters.
        assert is_reducible(func)
