"""Natural-loop detection tests."""

from repro.cfg import find_loops
from tests.conftest import function_from_text
from tests.cfg.test_dominators import build_graph


class TestNaturalLoops:
    def test_simple_while_loop(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              NZ=d[0]?10;
              PC=NZ>=0,L2;
              d[0]=d[0]+1;
              PC=L1;
            L2:
              PC=RT;
            """,
        )
        info = find_loops(func)
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert loop.header.label == "L1"
        assert {b.label for b in loop.blocks} == {"L1", "B2"}

    def test_nested_loops(self):
        func = build_graph(
            [(0, 1), (1, 2), (2, 1), (2, 3), (1, 3), (3, 0)], 4
        )
        # Edges: inner loop 1<->2, outer loop 0..3->0.
        info = find_loops(func)
        headers = {loop.header.label for loop in info.loops}
        assert "N1" in headers
        assert "N0" in headers
        inner = info.loop_with_header(func.block_by_label("N1"))
        outer = info.loop_with_header(func.block_by_label("N0"))
        assert inner is not None and outer is not None
        assert len(inner.blocks) < len(outer.blocks)
        assert inner.blocks <= outer.blocks

    def test_self_loop(self):
        func = function_from_text(
            "f",
            """
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
              PC=RT;
            """,
        )
        info = find_loops(func)
        assert len(info.loops) == 1
        assert {b.label for b in info.loops[0].blocks} == {"L1"}

    def test_two_back_edges_same_header_merge(self):
        func = function_from_text(
            "f",
            """
            L1:
              NZ=d[0]?1;
              PC=NZ==0,L2;
              d[0]=d[0]+1;
              PC=L1;
            L2:
              NZ=d[0]?99;
              PC=NZ>=0,L3;
              d[0]=d[0]*2;
              PC=L1;
            L3:
              PC=RT;
            """,
        )
        info = find_loops(func)
        loops = [l for l in info.loops if l.header.label == "L1"]
        assert len(loops) == 1
        assert len(loops[0].back_edges) == 2
        assert {b.label for b in loops[0].blocks} == {"L1", "B1", "L2", "B2"}

    def test_no_loops_in_dag(self):
        func = build_graph([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        assert find_loops(func).loops == []

    def test_members_in_layout_order(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              NZ=d[0]?10;
              PC=NZ>=0,L2;
              d[0]=d[0]+1;
              PC=L1;
            L2:
              PC=RT;
            """,
        )
        info = find_loops(func)
        members = info.loops[0].members_in_layout_order(func)
        assert [b.label for b in members] == ["L1", "B2"]

    def test_exits(self):
        func = function_from_text(
            "f",
            """
            L1:
              NZ=d[0]?10;
              PC=NZ>=0,L2;
              d[0]=d[0]+1;
              PC=L1;
            L2:
              PC=RT;
            """,
        )
        info = find_loops(func)
        exits = info.loops[0].exits()
        assert [(a.label, b.label) for a, b in exits] == [("L1", "L2")]

    def test_innermost_loop_of(self):
        func = function_from_text(
            "f",
            """
            L1:
              NZ=d[0]?1;
              PC=NZ==0,L9;
            L2:
              d[1]=d[1]+1;
              NZ=d[1]?5;
              PC=NZ<0,L2;
              PC=L1;
            L9:
              PC=RT;
            """,
        )
        info = find_loops(func)
        inner_body = func.block_by_label("L2")
        innermost = info.innermost_loop_of(inner_body)
        assert innermost is not None
        assert innermost.header.label == "L2"
