"""Tests for the cached-analysis manager and its edition invalidation."""

from repro.cfg import (
    BasicBlock,
    check_function,
    compute_dominators,
    compute_flow,
    dominates,
    find_loops,
    get_analyses,
)
from repro.obs import observing
from repro.rtl import Jump, Return
from tests.conftest import function_from_text


def _loop_func():
    return function_from_text(
        "f",
        """
        d[0]=0;
        L1:
          d[0]=d[0]+1;
          NZ=d[0]?10;
          PC=NZ<0,L1;
          PC=RT;
        """,
    )


class TestCaching:
    def test_manager_is_attached_to_the_function(self):
        func = _loop_func()
        assert get_analyses(func) is get_analyses(func)

    def test_results_are_cached_until_the_cfg_changes(self):
        func = _loop_func()
        am = get_analyses(func)
        assert am.loops() is am.loops()
        assert am.dominators() is am.dominators()
        assert am.reverse_postorder() is am.reverse_postorder()
        assert am.reducible() is True

    def test_loops_reuse_the_cached_dominator_tree(self):
        func = _loop_func()
        am = get_analyses(func)
        assert am.loops().dom is am.dominators()

    def test_noop_compute_flow_keeps_the_cache(self):
        func = _loop_func()
        am = get_analyses(func)
        loops = am.loops()
        edition = func.cfg_edition
        compute_flow(func)  # rebuilds identical edges
        assert func.cfg_edition == edition
        assert am.loops() is loops

    def test_structural_change_invalidates(self):
        func = _loop_func()
        am = get_analyses(func)
        loops = am.loops()
        dom = am.dominators()
        # Retarget the back-edge conditional branch to a fresh return
        # block: a real edge change.
        new_label = func.new_label()
        func.blocks.append(BasicBlock(new_label, [Return()]))
        func.blocks[1].insns[-1].target = new_label
        compute_flow(func)
        assert am.loops() is not loops
        assert am.dominators() is not dom
        assert not am.loops().loops  # the loop is gone

    def test_explicit_invalidate_forces_recompute(self):
        func = _loop_func()
        am = get_analyses(func)
        loops = am.loops()
        am.invalidate()
        assert am.loops() is not loops

    def test_clone_gets_a_fresh_manager(self):
        from repro.core import clone_function

        func = _loop_func()
        am = get_analyses(func)
        copy = clone_function(func)
        assert get_analyses(copy) is not am


class TestEditionCounter:
    def test_fresh_function_starts_at_zero_and_bumps_on_build(self):
        func = _loop_func()
        # build_function ran compute_flow once on a fresh graph.
        assert func.cfg_edition >= 1
        before = func.cfg_edition
        compute_flow(func)
        assert func.cfg_edition == before

    def test_check_function_does_not_invalidate(self):
        func = _loop_func()
        before = func.cfg_edition
        check_function(func)
        assert func.cfg_edition == before

    def test_edge_change_bumps(self):
        func = function_from_text("f", "PC=L1;\nL1:\n  PC=RT;")
        before = func.cfg_edition
        func.blocks[0].insns[-1] = Jump("L1")  # same shape, same edges
        compute_flow(func)
        assert func.cfg_edition == before
        func.blocks[0].insns[-1] = Return()
        compute_flow(func)
        assert func.cfg_edition == before + 1


class TestConsistencyAndDelegation:
    def test_results_match_the_direct_computations(self):
        func = _loop_func()
        am = get_analyses(func)
        direct_dom = compute_dominators(func)
        direct_loops = find_loops(func)
        assert {b.label for b in func.blocks if b in am.dominators()} == {
            b.label for b in func.blocks if b in direct_dom
        }
        assert {l.header.label for l in am.loops().loops} == {
            l.header.label for l in direct_loops.loops
        }

    def test_dominates_helper_delegates_to_the_manager(self):
        func = _loop_func()
        entry, header = func.blocks[0], func.blocks[1]
        with observing(spans=False) as obs:
            assert dominates(func, entry, header)
            assert not dominates(func, header, entry)
        # One miss computed the tree; the second query hit the cache.
        assert obs.metrics.counters["analysis.cache.miss.dominators"] == 1
        assert obs.metrics.counters["analysis.cache.hit.dominators"] >= 1


class TestMetrics:
    def test_hit_and_miss_counters(self):
        func = _loop_func()
        with observing(spans=False) as obs:
            am = get_analyses(func)
            am.loops()  # miss: loops + dominators
            am.loops()  # hit
            am.dominators()  # hit
            am.reducible()  # miss
        counters = obs.metrics.counters
        assert counters["analysis.cache.miss"] == 3
        assert counters["analysis.cache.hit"] == 2
        assert counters["analysis.cache.miss.loops"] == 1
        assert counters["analysis.cache.hit.loops"] == 1
        assert counters["analysis.cache.miss.reducible"] == 1
