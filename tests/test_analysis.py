"""Static-analysis census tests."""

from repro.analysis import (
    function_breakdown,
    instruction_histogram,
    jump_census,
    loop_census,
)
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

SOURCE = """
int helper(int x) { return x * 2; }

int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 10; i++)
        s += helper(i);
    return s;
}
"""


def compiled(replication="none"):
    program = compile_c(SOURCE)
    optimize_program(
        program, get_target("m68020"), OptimizationConfig(replication=replication)
    )
    return program


class TestHistogram:
    def test_counts_sum_to_total(self):
        program = compiled()
        histogram = instruction_histogram(program)
        assert sum(histogram.values()) == program.insn_count()

    def test_expected_kinds_present(self):
        histogram = instruction_histogram(compiled())
        assert histogram["assign"] > 0
        assert histogram["call"] >= 1
        assert histogram["return"] >= 2
        assert histogram["jump"] >= 1

    def test_jumps_vanish_under_replication(self):
        histogram = instruction_histogram(compiled("jumps"))
        assert histogram["jump"] == 0


class TestBreakdown:
    def test_per_function_rows(self):
        program = compiled()
        rows = function_breakdown(program, get_target("m68020"))
        names = {row[0] for row in rows}
        assert names == {"helper", "main"}
        for _, blocks, insns, jumps, size in rows:
            assert blocks >= 1
            assert insns >= blocks
            assert size > 0

    def test_sizes_optional(self):
        rows = function_breakdown(compiled())
        assert all(row[4] == 0 for row in rows)


class TestJumpCensus:
    def test_simple_config_has_jumps(self):
        records = jump_census(compiled())
        assert records
        assert all(r.category in ("self-loop", "to-indirect", "flagged", "other")
                   for r in records)

    def test_jumps_config_empty(self):
        assert jump_census(compiled("jumps")) == []

    def test_self_loop_classified(self):
        from tests.conftest import function_from_text
        from repro.cfg import Program

        func = function_from_text(
            "main",
            """
            L1:
              d[0]=d[0]+1;
              PC=L1;
            """,
        )
        program = Program()
        program.add_function(func)
        (record,) = jump_census(program)
        assert record.category == "self-loop"


class TestLoopCensus:
    def test_loop_listed_and_jump_flag(self):
        before = loop_census(compiled("none"))
        after = loop_census(compiled("jumps"))
        assert any(name == "main" for name, _, _, _ in before)
        # After replication no loop contains an unconditional jump.
        assert all(not has_jump for _, _, _, has_jump in after)
