"""Golden-snapshot regression tests for the paper's Tables 4 and 5.

The reproduced static and dynamic counts for every (target ×
configuration × program) cell are pinned in ``table45_counts.json``.
Any pass change that silently shifts the paper's numbers — more
instructions, fewer jumps removed, replication doing more or less than
before — fails here loudly, with a per-cell diff.

If a shift is *intended* (a pass genuinely improved), regenerate with::

    PYTHONPATH=src python tests/golden/regen_table_snapshots.py

and commit the JSON alongside the pass change, so the diff is reviewed.
"""

import json
from pathlib import Path

import pytest

from repro.benchsuite import program_names, run_matrix

GOLDEN_PATH = Path(__file__).with_name("table45_counts.json")
PINNED = ("static_insns", "static_jumps", "dynamic_insns", "dynamic_jumps")

TARGETS = ("sparc", "m68020")
CONFIGS = ("none", "loops", "jumps")


@pytest.fixture(scope="session")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="session")
def measured_matrix():
    return run_matrix(targets=TARGETS, configs=CONFIGS)


def test_golden_file_covers_the_full_matrix(golden):
    expected = {
        f"{target}/{config}/{name}"
        for target in TARGETS
        for config in CONFIGS
        for name in program_names()
    }
    assert set(golden) == expected


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("config", CONFIGS)
def test_counts_match_golden(golden, measured_matrix, target, config):
    mismatches = []
    for name in program_names():
        m = measured_matrix[(target, config, name)]
        pinned = golden[f"{target}/{config}/{name}"]
        for field in PINNED:
            got = getattr(m, field)
            if got != pinned[field]:
                mismatches.append(
                    f"{target}/{config}/{name}.{field}: "
                    f"pinned {pinned[field]}, measured {got}"
                )
    assert not mismatches, (
        "Table 4/5 counts shifted from the pinned snapshot:\n  "
        + "\n  ".join(mismatches)
        + "\nIf intended, regenerate tests/golden/table45_counts.json "
        "(see module docstring)."
    )
