"""Regenerate ``table45_counts.json`` from the current pipeline.

Run after an *intended* change to the reproduced Table 4/5 numbers::

    PYTHONPATH=src python tests/golden/regen_table_snapshots.py

and commit the resulting JSON diff together with the pass change.
"""

import json
from pathlib import Path

from repro.benchsuite import run_matrix

GOLDEN_PATH = Path(__file__).with_name("table45_counts.json")
PINNED = ("static_insns", "static_jumps", "dynamic_insns", "dynamic_jumps")


def main() -> None:
    matrix = run_matrix()
    golden = {
        f"{target}/{config}/{name}": {
            field: getattr(measurement, field) for field in PINNED
        }
        for (target, config, name), measurement in sorted(matrix.items())
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} cells)")


if __name__ == "__main__":
    main()
