"""Delay-slot filling tests (SPARC model)."""

from repro.rtl import Nop
from repro.targets import count_nops, fill_delay_slots
from tests.conftest import function_from_text


def nops_in(func):
    return count_nops(func)


class TestDelaySlotFilling:
    def test_slot_filled_by_preceding_assign(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L1;
            L1:
              PC=RT;
            """,
        )
        inserted = fill_delay_slots(func)
        # The jump's slot is filled by d[0]=1; the bare return needs a nop.
        assert inserted == 1
        assert nops_in(func) == 1

    def test_compare_not_used_as_filler(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L1;
            d[0]=1;
            L1:
              PC=RT;
            """,
        )
        inserted = fill_delay_slots(func)
        # The compare may not move into the branch's slot: nop needed for
        # the branch, and for the return; the d[0]=1 block falls through
        # (no slot).
        assert inserted == 2

    def test_rich_block_fills_all_slots(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            d[1]=2;
            NZ=d[0]?1;
            PC=NZ==0,L1;
            L1:
              d[2]=3;
              PC=RT;
            """,
        )
        inserted = fill_delay_slots(func)
        assert inserted == 0

    def test_call_consumes_a_filler(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            CALL _g,0;
            PC=RT;
            """,
        )
        inserted = fill_delay_slots(func)
        # d[0]=1 fills the call's slot; the return gets a nop.
        assert inserted == 1

    def test_nop_placed_before_transfer(self):
        func = function_from_text("f", "PC=RT;")
        fill_delay_slots(func)
        insns = func.blocks[0].insns
        assert isinstance(insns[0], Nop)
        assert insns[1].is_transfer()

    def test_bigger_blocks_need_fewer_nops(self):
        # The §5.2 effect in miniature: merging blocks provides fillers.
        small_blocks = function_from_text(
            "f",
            """
            PC=L1;
            L1:
              PC=L2;
            L2:
              PC=RT;
            """,
        )
        merged = function_from_text(
            "g",
            """
            d[0]=1;
            d[1]=2;
            d[2]=3;
            PC=L1;
            L1:
              PC=RT;
            """,
        )
        assert fill_delay_slots(small_blocks) > fill_delay_slots(merged) - 1
