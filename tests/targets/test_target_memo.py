"""Worker cold-start fix: machine descriptions are built once per process."""

import pytest

from repro.obs import Observer, deactivate, install
from repro.targets import clear_target_cache, get_target
from repro.targets.machine import Machine


@pytest.fixture
def fresh_observer():
    observer = install(Observer(spans=False))
    clear_target_cache()
    yield observer
    deactivate()
    clear_target_cache()


def test_get_target_memoizes_instances(fresh_observer):
    first = get_target("sparc")
    assert get_target("sparc") is first
    assert isinstance(first, Machine)
    assert get_target("m68020") is get_target("m68020")
    assert get_target("m68020") is not first


def test_reuse_is_visible_in_obs_counters(fresh_observer):
    get_target("sparc")
    get_target("sparc")
    get_target("sparc")
    get_target("m68020")
    counters = fresh_observer.metrics.snapshot()["counters"]
    assert counters["targets.machine.constructed"] == 2
    assert counters["targets.machine.reused"] == 2


def test_clear_target_cache_forces_reconstruction(fresh_observer):
    first = get_target("sparc")
    clear_target_cache()
    second = get_target("sparc")
    assert second is not first
    counters = fresh_observer.metrics.snapshot()["counters"]
    assert counters["targets.machine.constructed"] == 2
    assert counters.get("targets.machine.reused", 0) == 0


def test_warm_worker_initializer_prewarms_targets(fresh_observer):
    """After warm_worker, every get_target in the worker is a reuse hit."""
    from repro.exec import warm_worker

    warm_worker(("sparc", "m68020"))
    counters = fresh_observer.metrics.snapshot()["counters"]
    assert counters["targets.machine.constructed"] == 2
    # A cell executing afterwards (the warm re-use the daemon relies on)
    # only ever sees memoized machines.
    get_target("sparc")
    get_target("m68020")
    counters = fresh_observer.metrics.snapshot()["counters"]
    assert counters["targets.machine.constructed"] == 2
    assert counters["targets.machine.reused"] == 2


def test_unknown_target_still_raises(fresh_observer):
    with pytest.raises(ValueError):
        get_target("vax")
