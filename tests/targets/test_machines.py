"""Tests for the two machine descriptions."""

import pytest

from repro.rtl import parse_insn
from repro.targets import M68020, Sparc, get_target


@pytest.fixture
def m68k():
    return M68020()


@pytest.fixture
def sparc():
    return Sparc()


class TestLookup:
    def test_get_target(self):
        assert get_target("m68020").name == "m68020"
        assert get_target("68020").name == "m68020"
        assert get_target("SPARC").name == "sparc"
        with pytest.raises(ValueError):
            get_target("vax")


class TestM68020Legality:
    @pytest.mark.parametrize(
        "text",
        [
            "d[0]=d[1];",
            "d[0]=5;",
            "d[0]=L[a[0]];",
            "L[a[0]]=d[0];",
            "L[a[0]]=L[a[1]];",  # mem-to-mem move
            "d[0]=d[0]+L[a[6]+8];",  # ALU with one memory operand
            "L[a[0]]=L[a[0]]+1;",  # add-to-memory
            "d[0]=d[1]+d[2];",
            "a[0]=FP+buf.;",  # lea
            "d[0]=L[a[0]+d[1]*4];",  # scaled index addressing
            "d[0]=L[a[0]+d[1]*4+8];",
            "NZ=L[a[6]+4]?10;",
            "NZ=d[0]?L[_n.];",
            "d[0]=-d[1];",
            "d[0]=~L[a[0]];",
        ],
    )
    def test_legal(self, m68k, text):
        assert m68k.legal(parse_insn(text))

    @pytest.mark.parametrize(
        "text",
        [
            "d[0]=L[a[0]]+L[a[1]];",  # two memory operands in an ALU op
            "L[a[0]]=d[1]+L[a[1]];",  # dst mem + src mem
            "NZ=L[a[0]]?L[a[1]];",  # two memory compares
            "d[0]=L[a[0]+d[1]*4+d[2]];",  # too many index terms
            "d[0]=L[a[0]+d[1]*3];",  # scale must be 1/2/4/8
            "d[0]=d[1]*d[2]+d[3];",  # nested ALU expression
        ],
    )
    def test_illegal(self, m68k, text):
        assert not m68k.legal(parse_insn(text))

    def test_sizes_are_plausible(self, m68k):
        small = m68k.insn_size(parse_insn("d[0]=d[1];"))
        memory = m68k.insn_size(parse_insn("d[0]=L[a[6]+8];"))
        big = m68k.insn_size(parse_insn("d[0]=123456;"))
        assert 2 <= small < memory
        assert small < big
        assert m68k.insn_size(parse_insn("PC=RT;")) == 2

    def test_counts_always_one(self, m68k):
        assert m68k.insn_count(parse_insn("d[0]=123456;")) == 1


class TestSparcLegality:
    @pytest.mark.parametrize(
        "text",
        [
            "r[8]=r[9];",
            "r[8]=100;",
            "r[8]=r[9]+r[10];",
            "r[8]=r[9]+4095;",
            "r[8]=L[r[9]];",
            "r[8]=L[r[9]+r[10]];",
            "r[8]=L[r[9]+64];",
            "r[8]=L[FP+x.];",  # frame-pointer relative
            "L[r[9]]=r[8];",
            "L[r[9]]=0;",  # store of %g0
            "NZ=r[8]?r[9];",
            "NZ=r[8]?-4096;",
            "r[8]=-r[9];",
            "r[8]=x.;",  # address formation (2 insns)
        ],
    )
    def test_legal(self, sparc, text):
        assert sparc.legal(parse_insn(text))

    @pytest.mark.parametrize(
        "text",
        [
            "r[8]=r[9]+4096;",  # immediate out of simm13
            "r[8]=L[r[9]+r[10]+4];",  # three-term address
            "r[8]=L[x.];",  # absolute address needs formation
            "L[r[9]]=5;",  # stores take registers (except 0)
            "L[r[9]]=r[8]+r[10];",  # no ALU in stores
            "r[8]=L[r[9]]+r[10];",  # no memory ALU operands
            "NZ=L[r[9]]?0;",  # compares read registers
            "NZ=1000000?r[9];",
        ],
    )
    def test_illegal(self, sparc, text):
        assert not sparc.legal(parse_insn(text))

    def test_fixed_size_and_pair_counts(self, sparc):
        assert sparc.insn_size(parse_insn("r[8]=r[9];")) == 4
        assert sparc.insn_size(parse_insn("PC=RT;")) == 4
        # sethi/or pairs: big constants and global addresses.
        assert sparc.insn_count(parse_insn("r[8]=1000000;")) == 2
        assert sparc.insn_size(parse_insn("r[8]=1000000;")) == 8
        assert sparc.insn_count(parse_insn("r[8]=x.;")) == 2
        assert sparc.insn_count(parse_insn("r[8]=100;")) == 1

    def test_delay_slot_flag(self, sparc, m68k):
        assert sparc.has_delay_slots
        assert not m68k.has_delay_slots

    def test_pools_disjoint_from_scratch(self, sparc, m68k):
        assert not (set(sparc.pool) & set(sparc.scratch))
        assert not (set(m68k.pool) & set(m68k.scratch))
