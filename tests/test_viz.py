"""CFG visualization tests."""

from repro.viz import cfg_summary, to_dot
from tests.conftest import function_from_text

LOOPY = """
  d[0]=0;
L1:
  d[0]=d[0]+1;
  NZ=d[0]?10;
  PC=NZ<0,L1;
  PC=L9;
L9:
  PC=RT;
"""


class TestDot:
    def test_valid_dot_structure(self):
        func = function_from_text("f", LOOPY)
        dot = to_dot(func)
        assert dot.startswith('digraph "f" {')
        assert dot.rstrip().endswith("}")
        for block in func.blocks:
            assert f'"{block.label}"' in dot

    def test_edges_present(self):
        func = function_from_text("f", LOOPY)
        dot = to_dot(func)
        assert '"L1" -> "L1"' in dot  # the self back edge
        assert "penwidth=2" in dot  # rendered bold

    def test_jump_edges_colored(self):
        func = function_from_text("f", LOOPY)
        dot = to_dot(func)
        assert 'color="red"' in dot

    def test_loop_header_highlighted(self):
        func = function_from_text("f", LOOPY)
        assert "lightyellow" in to_dot(func)

    def test_truncation(self):
        body = "\n".join(f"d[0]=d[0]+{i};" for i in range(30)) + "\nPC=RT;"
        func = function_from_text("f", body)
        dot = to_dot(func, max_insns_per_block=5)
        assert "more" in dot

    def test_escaping(self):
        func = function_from_text("f", "d[0]=L[a[0]+4];\nPC=RT;")
        dot = to_dot(func)
        assert "\\[" not in dot  # we do not escape brackets...
        assert "\\<" not in dot or True
        # The record separators | { } must be escaped inside labels.
        label_lines = [l for l in dot.splitlines() if "label=" in l]
        for line in label_lines:
            payload = line.split('label="', 1)[1]
            assert "{" not in payload.replace("\\{", "").split('"')[0] or True

    def test_indirect_edges_dotted(self):
        func = function_from_text(
            "f",
            """
            PC=L[d[0]]<L1,L2>;
            L1:
              PC=RT;
            L2:
              PC=RT;
            """,
        )
        assert "style=dotted" in to_dot(func)

    def test_escaping_of_record_metacharacters(self):
        # Record labels treat { } | < > " as structure; every occurrence
        # inside a label payload must arrive escaped.
        func = function_from_text("f", "NZ=d[0]?10;\nPC=NZ<0,L1;\nL1:\n  PC=RT;")
        dot = to_dot(func)
        for line in dot.splitlines():
            if "label=" not in line:
                continue
            payload = line.split('label="', 1)[1].rsplit('"', 1)[0]
            stripped = (
                payload.replace("\\{", "")
                .replace("\\}", "")
                .replace("\\|", "")
                .replace("\\<", "")
                .replace("\\>", "")
                .replace("\\\\", "")
            )
            # The outermost record braces are legitimate structure.
            assert stripped.startswith("{") and stripped.endswith("}")
            inner = stripped[1:-1]
            assert "|" not in inner.replace("|", "", 1)  # one field separator
            assert "<" not in inner and ">" not in inner
            assert '"' not in inner

    def test_edge_classification(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?10;
            PC=NZ<0,L1;
            PC=L9;
            L1:
              PC=RT;
            L9:
              PC=RT;
            """,
        )
        dot = to_dot(func)
        taken = [l for l in dot.splitlines() if "style=dashed" in l]
        jumps = [l for l in dot.splitlines() if 'color="red"' in l]
        assert any('-> "L1"' in l for l in taken)  # branch-taken edge
        assert any('-> "L9"' in l for l in jumps)  # unconditional jump edge


class TestReplicatedAnnotation:
    def test_replicated_blocks_filled_lightblue(self):
        func = function_from_text(
            "f",
            """
            PC=L1;
            L1:
              PC=RT;
            """,
        )
        dot = to_dot(func, replicated={"L1"})
        line = next(l for l in dot.splitlines() if l.startswith('  "L1" ['))
        assert 'fillcolor="lightblue"' in line

    def test_no_annotation_without_labels(self):
        func = function_from_text("f", "PC=RT;")
        assert "lightblue" not in to_dot(func)
        assert "lightblue" not in to_dot(func, replicated=set())

    def test_replication_color_wins_over_loop_header(self):
        func = function_from_text("f", LOOPY)
        header = func.blocks[1].label  # L1, the loop header
        dot = to_dot(func, replicated={header})
        line = next(
            l for l in dot.splitlines() if l.startswith(f'  "{header}" [')
        )
        assert "lightblue" in line and "lightyellow" not in line

    def test_traced_run_annotates_replicated_blocks(self):
        # End to end: compile wc under JUMPS with the decision log live,
        # then render with the recorded replica labels — at least one
        # replica survives to wc's final CFG and gets the annotation.
        from repro.api import compile_and_measure
        from repro.obs import observing

        with observing(spans=False) as obs:
            result = compile_and_measure("wc", replication="jumps")
        annotated = 0
        for func in result.program.functions.values():
            labels = obs.decisions.replicated_labels(func.name)
            dot = to_dot(func, replicated=labels)
            annotated += dot.count("lightblue")
            # Only labels that exist in the CFG can be annotated.
            surviving = labels & {b.label for b in func.blocks}
            assert dot.count('fillcolor="lightblue"') == len(surviving)
        assert annotated >= 1


class TestSummary:
    def test_summary_lines(self):
        func = function_from_text("f", LOOPY)
        text = cfg_summary(func)
        assert "3 blocks" in text or f"{len(func.blocks)} blocks" in text
        assert "[loop header]" in text
        assert "idom=" in text
