"""CFG visualization tests."""

from repro.viz import cfg_summary, to_dot
from tests.conftest import function_from_text

LOOPY = """
  d[0]=0;
L1:
  d[0]=d[0]+1;
  NZ=d[0]?10;
  PC=NZ<0,L1;
  PC=L9;
L9:
  PC=RT;
"""


class TestDot:
    def test_valid_dot_structure(self):
        func = function_from_text("f", LOOPY)
        dot = to_dot(func)
        assert dot.startswith('digraph "f" {')
        assert dot.rstrip().endswith("}")
        for block in func.blocks:
            assert f'"{block.label}"' in dot

    def test_edges_present(self):
        func = function_from_text("f", LOOPY)
        dot = to_dot(func)
        assert '"L1" -> "L1"' in dot  # the self back edge
        assert "penwidth=2" in dot  # rendered bold

    def test_jump_edges_colored(self):
        func = function_from_text("f", LOOPY)
        dot = to_dot(func)
        assert 'color="red"' in dot

    def test_loop_header_highlighted(self):
        func = function_from_text("f", LOOPY)
        assert "lightyellow" in to_dot(func)

    def test_truncation(self):
        body = "\n".join(f"d[0]=d[0]+{i};" for i in range(30)) + "\nPC=RT;"
        func = function_from_text("f", body)
        dot = to_dot(func, max_insns_per_block=5)
        assert "more" in dot

    def test_escaping(self):
        func = function_from_text("f", "d[0]=L[a[0]+4];\nPC=RT;")
        dot = to_dot(func)
        assert "\\[" not in dot  # we do not escape brackets...
        assert "\\<" not in dot or True
        # The record separators | { } must be escaped inside labels.
        label_lines = [l for l in dot.splitlines() if "label=" in l]
        for line in label_lines:
            payload = line.split('label="', 1)[1]
            assert "{" not in payload.replace("\\{", "").split('"')[0] or True

    def test_indirect_edges_dotted(self):
        func = function_from_text(
            "f",
            """
            PC=L[d[0]]<L1,L2>;
            L1:
              PC=RT;
            L2:
              PC=RT;
            """,
        )
        assert "style=dotted" in to_dot(func)


class TestSummary:
    def test_summary_lines(self):
        func = function_from_text("f", LOOPY)
        text = cfg_summary(func)
        assert "3 blocks" in text or f"{len(func.blocks)} blocks" in text
        assert "[loop header]" in text
        assert "idom=" in text
