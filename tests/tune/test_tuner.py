"""The per-function autotuner sweep.

Small inline programs keep the matrix cheap; the properties pinned here
are the tuner's contract, not the suite numbers (those live in
``benchmarks/bench_autotune.py``):

* the winner of every function scores no worse than the global baseline
  (the baseline is a grid point, so this holds by construction);
* applying the emitted tuned config through the driver's override path
  reproduces the winning candidate's metrics *exactly*;
* identical sweeps reuse the persistent result cache;
* the sweep emits ``tune.candidates.*`` metrics and decision-log events.
"""

import pytest

from repro.api import compile_and_measure
from repro.benchsuite.scoring import candidate_key
from repro.exec import ResultCache
from repro.obs import observing
from repro.tune import TuneGrid, load_tuned_config, tune

TWO_FUNCTIONS = """
int scale(int x) {
    int k;
    k = 0;
    while (x > 0) {
        k = k + x;
        x = x - 1;
    }
    return k;
}

int main() {
    int i, j, acc;
    acc = 0;
    for (i = 0; i < 12; i++) {
        for (j = 0; j < 6; j++) {
            acc = acc + i + j;
        }
    }
    acc = acc + scale(9);
    printf("%d\\n", acc);
    return 0;
}
"""

GRID = TuneGrid(
    policies=("shortest", "returns"),
    bounds=(None, 4),
    orders=("standard", "late"),
)

# A favor-returns global baseline: ``shortest`` wins both functions of
# TWO_FUNCTIONS, so the emitted config carries real non-baseline rows
# and the verify gate actually runs.
BASELINE_POLICY = "returns"


@pytest.fixture(scope="module")
def report():
    return tune([TWO_FUNCTIONS], grid=GRID, workers=2, policy=BASELINE_POLICY)


class TestSweep:
    def test_covers_every_function(self, report):
        [program_report] = report.programs
        assert {f.function for f in program_report.functions} == {"scale", "main"}
        for function_report in program_report.functions:
            assert function_report.evaluated == len(GRID)
            assert function_report.pruned == 0

    def test_winner_never_loses_to_the_baseline(self, report):
        [program_report] = report.programs
        for function_report in program_report.functions:
            assert candidate_key(function_report.winner_score) <= candidate_key(
                function_report.baseline_score
            )
        assert candidate_key(program_report.tuned) <= candidate_key(
            program_report.baseline
        )

    def test_tuned_never_loses_to_any_fixed_policy(self, report):
        [program_report] = report.programs
        # The headline guarantee, per program: the per-function winners
        # compose into a configuration at least as good (dynamically) as
        # the best fixed global policy in the grid.
        best_fixed = min(
            program_report.fixed.values(),
            key=lambda score: score.dynamic_insns,
        )
        assert program_report.tuned.dynamic_insns <= best_fixed.dynamic_insns

    def test_combined_winner_passed_the_verify_gate(self, report):
        [program_report] = report.programs
        assert program_report.gate_failure is None
        assert report.config.programs  # a non-baseline winner exists
        assert program_report.verification is not None
        assert program_report.verification["mode"] == "full"

    def test_report_dict_is_json_ready(self, report):
        import json

        payload = report.as_dict()
        json.dumps(payload)
        assert payload["grid_size"] == len(GRID)
        assert payload["tuned_aggregate"]["programs"] == 1


class TestEmittedConfig:
    def test_applying_the_config_reproduces_the_winner_exactly(
        self, report, tmp_path
    ):
        # The property the whole artifact hangs on: replaying the tuned
        # config through the driver's override path yields the very
        # numbers the tuner reported for the combined winner.
        path = tmp_path / "tuned.json"
        report.config.save(path)
        config = load_tuned_config(path)
        [program_report] = report.programs
        replayed = compile_and_measure(
            TWO_FUNCTIONS,
            replication="jumps",
            policy=config.baseline.policy,
            overrides=config.overrides_for(TWO_FUNCTIONS) or None,
        )
        assert replayed.measurement.dynamic_insns == program_report.tuned.dynamic_insns
        assert replayed.measurement.static_insns == program_report.tuned.static_insns
        assert replayed.measurement.code_bytes == program_report.tuned.code_bytes

    def test_execute_cell_threads_tuned_rows(self, report):
        # The worker path (CellSpec.tuned -> OptimizationConfig.overrides)
        # agrees with the in-process API path for the same overrides.
        from repro.exec.envelope import CellSpec
        from repro.exec.runner import execute_cell

        rows = report.config.tuned_rows(TWO_FUNCTIONS)
        assert rows is not None
        result = execute_cell(
            CellSpec(
                program=TWO_FUNCTIONS,
                replication="jumps",
                policy=BASELINE_POLICY,
                tuned=rows,
            )
        )
        assert result.ok, result.error
        [program_report] = report.programs
        assert result.measurement.dynamic_insns == program_report.tuned.dynamic_insns
        assert result.measurement.static_insns == program_report.tuned.static_insns


class TestCacheReuse:
    def test_second_sweep_is_all_cache_hits(self, tmp_path):
        grid = TuneGrid(
            policies=("shortest",), bounds=(None,), orders=("standard", "late")
        )
        cache = ResultCache(tmp_path / "cache")
        cold = tune(
            [TWO_FUNCTIONS], grid=grid, workers=1, cache=cache, verify_gate=False
        )
        warm = tune(
            [TWO_FUNCTIONS], grid=grid, workers=1, cache=cache, verify_gate=False
        )
        cold_hits = sum(
            f.cache_hits for p in cold.programs for f in p.functions
        )
        warm_hits = sum(
            f.cache_hits for p in warm.programs for f in p.functions
        )
        warm_evaluated = sum(
            f.evaluated for p in warm.programs for f in p.functions
        )
        assert cold_hits == 0
        assert warm_hits == warm_evaluated  # every candidate came from cache
        assert warm.config == cold.config


class TestObservability:
    def test_metrics_and_decisions_are_emitted(self, tmp_path):
        grid = TuneGrid(
            policies=("shortest",), bounds=(None,), orders=("standard", "late")
        )
        with observing() as observer:
            tune([TWO_FUNCTIONS], grid=grid, workers=1, verify_gate=False)
        counters = observer.metrics.counters
        assert counters["tune.candidates.evaluated"] == 2 * len(grid)
        assert "tune.candidates.pruned" not in counters
        tune_decisions = [
            d for d in observer.decisions.decisions if d.mode == "tune"
        ]
        assert any(d.outcome == "winner" for d in tune_decisions)
        assert any(d.outcome == "evaluated" for d in tune_decisions)
