"""The autotuner's candidate space and function isolation."""

import pytest

from repro.exec.envelope import CellSpec
from repro.opt.driver import PASS_ORDERS, FunctionTuning
from repro.tune import (
    Candidate,
    Cutout,
    TuneGrid,
    baseline_candidate,
    function_names,
    normalize_rows,
)


class TestGrid:
    def test_default_grid_enumerates_cross_product(self):
        grid = TuneGrid()
        candidates = list(grid.candidates())
        assert len(candidates) == len(grid)
        assert len(candidates) == len(set(candidates))  # no duplicates
        assert len(grid) == 3 * 4 * 3  # policies x bounds x orders
        # The paper's fixed global configuration is always a grid point,
        # so tuning can never lose to it.
        assert Candidate("shortest", None, "standard") in candidates

    def test_enumeration_order_is_deterministic(self):
        assert list(TuneGrid().candidates()) == list(TuneGrid().candidates())

    def test_parse_defaults_and_overrides(self):
        assert TuneGrid.parse() == TuneGrid()
        grid = TuneGrid.parse(policies=["returns"], bounds=[8], orders=["late"])
        assert list(grid.candidates()) == [Candidate("returns", 8, "late")]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policies": ("fastest",)},
            {"bounds": (0,)},
            {"bounds": ("8",)},
            {"orders": ("reversed",)},
        ],
    )
    def test_rejects_invalid_grid_axes(self, kwargs):
        with pytest.raises(ValueError):
            TuneGrid(**kwargs)

    def test_candidate_as_tuning(self):
        tuning = Candidate("returns", 8, "late").as_tuning()
        assert isinstance(tuning, FunctionTuning)
        assert tuning.max_rtls == 8
        assert tuning.order == "late"
        assert tuning.policy.value == "returns"

    def test_orders_match_driver_vocabulary(self):
        assert TuneGrid().orders == PASS_ORDERS


class TestFunctionNames:
    def test_inline_source(self):
        names = function_names(
            "int helper() { return 1; } int main() { return helper(); }"
        )
        assert names == ["helper", "main"]

    def test_benchmark_name(self):
        assert "main" in function_names("wc")


class TestNormalizeRows:
    BASELINE = Candidate("shortest", None, "standard")

    def test_baseline_rows_vanish(self):
        assert normalize_rows({"main": self.BASELINE}, self.BASELINE) is None

    def test_empty_rows_vanish(self):
        assert normalize_rows({}, self.BASELINE) is None

    def test_rows_sort_by_function_name(self):
        rows = normalize_rows(
            {
                "zeta": Candidate("returns", None, "standard"),
                "alpha": Candidate("loops", 8, "late"),
            },
            self.BASELINE,
        )
        assert rows == (
            ("alpha", "loops", 8, "late"),
            ("zeta", "returns", None, "standard"),
        )

    def test_mixed_rows_keep_only_non_baseline(self):
        rows = normalize_rows(
            {
                "main": self.BASELINE,
                "helper": Candidate("returns", None, "standard"),
            },
            self.BASELINE,
        )
        assert rows == (("helper", "returns", None, "standard"),)


class TestCutout:
    BASE = CellSpec(program="wc", replication="jumps")

    def test_baseline_candidate_reflects_spec_globals(self):
        spec = CellSpec(program="wc", policy="returns", max_rtls=8)
        assert baseline_candidate(spec) == Candidate("returns", 8, "standard")

    def test_candidate_equal_to_baseline_shares_the_baseline_cell(self):
        # The normalization invariant the cache sharing relies on: a
        # cutout candidate identical to the global config produces the
        # very same spec (hence the same cache key, the same
        # single-flight slot in the daemon).
        cutout = Cutout("wc", "main")
        spec = cutout.spec_for(self.BASE, Candidate("shortest", None, "standard"))
        assert spec == self.BASE
        assert spec.tuned is None

    def test_non_baseline_candidate_gets_tuned_rows(self):
        cutout = Cutout("wc", "main")
        spec = cutout.spec_for(self.BASE, Candidate("returns", 8, "nofinal"))
        assert spec.tuned == (("main", "returns", 8, "nofinal"),)
        assert spec.program == "wc"
        assert spec.policy == self.BASE.policy  # globals untouched
