"""The versioned tuned-config artifact: round-trip and validation."""

import json

import pytest

from repro.core import Policy
from repro.tune import (
    TUNED_CONFIG_VERSION,
    Candidate,
    TunedConfig,
    TunedConfigError,
    load_tuned_config,
)


def sample_config() -> TunedConfig:
    return TunedConfig(
        target="sparc",
        replication="jumps",
        baseline=Candidate("shortest", None, "standard"),
        programs={
            "wc": {"main": Candidate("returns", 8, "late")},
            "sieve": {"main": Candidate("loops", None, "nofinal")},
        },
    )


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        path = tmp_path / "tuned.json"
        config = sample_config()
        config.save(path)
        loaded = load_tuned_config(path)
        assert loaded == config

    def test_file_is_versioned_json(self, tmp_path):
        path = tmp_path / "tuned.json"
        sample_config().save(path)
        raw = json.loads(path.read_text())
        assert raw["version"] == TUNED_CONFIG_VERSION
        assert raw["programs"]["wc"]["main"]["policy"] == "returns"

    def test_overrides_for_builds_driver_tunings(self):
        overrides = sample_config().overrides_for("wc")
        assert set(overrides) == {"main"}
        assert overrides["main"].policy is Policy.FAVOR_RETURNS
        assert overrides["main"].max_rtls == 8
        assert overrides["main"].order == "late"
        assert sample_config().overrides_for("unknown-program") == {}

    def test_tuned_rows_are_canonical(self):
        config = sample_config()
        assert config.tuned_rows("wc") == (("main", "returns", 8, "late"),)
        assert config.tuned_rows("unknown-program") is None

    def test_tuned_rows_drop_baseline_entries(self):
        config = sample_config()
        config.programs["wc"]["main"] = config.baseline
        assert config.tuned_rows("wc") is None


class TestValidation:
    def write(self, tmp_path, payload) -> str:
        path = tmp_path / "tuned.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TunedConfigError, match="cannot read"):
            load_tuned_config(tmp_path / "absent.json")

    def test_garbage_json(self, tmp_path):
        path = tmp_path / "tuned.json"
        path.write_text("{not json")
        with pytest.raises(TunedConfigError, match="cannot read"):
            load_tuned_config(path)

    @pytest.mark.parametrize(
        "payload, message",
        [
            ([], "must be a JSON object"),
            ({"version": 99}, "version"),
            ({}, "version"),
            (
                {"version": 1, "programs": {"wc": {"main": {"policy": "fastest"}}}},
                "unknown policy",
            ),
            (
                {"version": 1, "programs": {"wc": {"main": {"order": "random"}}}},
                "unknown order",
            ),
            (
                {"version": 1, "programs": {"wc": {"main": {"max_rtls": 0}}}},
                "max_rtls",
            ),
            (
                {"version": 1, "programs": {"wc": {"main": {"bogus": 1}}}},
                "unknown keys",
            ),
            ({"version": 1, "programs": []}, "'programs' must be an object"),
            ({"version": 1, "programs": {"wc": []}}, "must be an object"),
            (
                {"version": 1, "baseline": {"order": "late"}},
                "baseline order",
            ),
        ],
    )
    def test_rejects_malformed(self, tmp_path, payload, message):
        with pytest.raises(TunedConfigError, match=message):
            load_tuned_config(self.write(tmp_path, payload))
