"""Legalization and combining tests."""

import pytest

from repro.opt import Liveness, combine, legalize
from repro.rtl import Assign, Const, Mem, Reg, format_insn, parse_insn
from repro.targets import get_target
from tests.conftest import function_from_text


@pytest.fixture
def m68k():
    return get_target("m68020")


@pytest.fixture
def sparc():
    return get_target("sparc")


class TestLegalize:
    def test_sparc_splits_memory_alu(self, sparc):
        func = function_from_text(
            "f",
            """
            v[1]=L[FP+x.]+L[FP+y.];
            rv[0]=v[1];
            PC=RT;
            """,
        )
        assert legalize(func, sparc)
        for insn in func.insns():
            assert sparc.legal(insn)

    def test_sparc_materializes_big_immediates(self, sparc):
        func = function_from_text("f", "L[r[8]]=99999;\nPC=RT;")
        legalize(func, sparc)
        for insn in func.insns():
            assert sparc.legal(insn)
        # A store of a big constant needs it in a register first.
        texts = [format_insn(i) for i in func.insns()]
        assert any("=99999" in t and not t.startswith("L[") for t in texts)

    def test_sparc_flattens_three_term_address(self, sparc):
        func = function_from_text("f", "v[1]=L[r[8]+r[9]+12];\nPC=RT;")
        legalize(func, sparc)
        for insn in func.insns():
            assert sparc.legal(insn)

    def test_m68020_accepts_memory_operands(self, m68k):
        func = function_from_text("f", "d[0]=d[0]+L[FP+x.];\nPC=RT;")
        assert not legalize(func, m68k)  # already legal, unchanged

    def test_m68020_splits_double_memory_alu(self, m68k):
        func = function_from_text("f", "d[0]=L[a[0]]+L[a[1]];\nPC=RT;")
        assert legalize(func, m68k)
        for insn in func.insns():
            assert m68k.legal(insn)

    def test_nested_expressions_flattened(self, sparc):
        func = function_from_text("f", "v[1]=(v[2]+v[3])*(v[4]-v[5]);\nPC=RT;")
        legalize(func, sparc)
        for insn in func.insns():
            assert sparc.legal(insn)

    def test_legalize_is_idempotent(self, sparc):
        func = function_from_text(
            "f", "v[1]=L[FP+a.+v[2]*4];\nL[FP+b.]=v[1]+123456;\nPC=RT;"
        )
        legalize(func, sparc)
        assert not legalize(func, sparc)


class TestCombine:
    def test_load_folds_into_alu_on_m68020(self, m68k):
        func = function_from_text(
            "f",
            """
            v[1]=L[a[0]];
            d[0]=d[0]+v[1];
            rv[0]=d[0];
            PC=RT;
            """,
        )
        assert combine(func, m68k)
        texts = [format_insn(i) for i in func.insns()]
        assert "d[0]=d[0]+L[a[0]];" in texts

    def test_load_not_folded_on_sparc(self, sparc):
        func = function_from_text(
            "f",
            """
            v[1]=L[r[9]];
            r[8]=r[8]+v[1];
            rv[0]=r[8];
            PC=RT;
            """,
        )
        assert not combine(func, sparc)

    def test_store_combining_move(self, m68k):
        func = function_from_text(
            "f",
            """
            v[1]=d[0];
            L[a[0]]=v[1];
            PC=RT;
            """,
        )
        assert combine(func, m68k)
        texts = [format_insn(i) for i in func.insns()]
        assert "L[a[0]]=d[0];" in texts

    def test_store_combining_read_modify_write(self, m68k):
        func = function_from_text(
            "f",
            """
            v[1]=L[a[0]]+1;
            L[a[0]]=v[1];
            PC=RT;
            """,
        )
        assert combine(func, m68k)
        texts = [format_insn(i) for i in func.insns()]
        assert "L[a[0]]=L[a[0]]+1;" in texts

    def test_alu_result_not_stored_directly(self, m68k):
        # The 68020 has no "store d0+1 to memory" instruction; the def
        # must stay split.
        func = function_from_text(
            "f",
            """
            v[1]=d[0]+1;
            L[a[0]]=v[1];
            PC=RT;
            """,
        )
        assert not combine(func, m68k)

    def test_store_blocks_load_motion(self, m68k):
        func = function_from_text(
            "f",
            """
            v[1]=L[a[0]];
            L[a[1]]=d[5];
            d[0]=d[0]+v[1];
            rv[0]=d[0];
            PC=RT;
            """,
        )
        before = [format_insn(i) for i in func.insns()]
        combine(func, m68k)
        after = [format_insn(i) for i in func.insns()]
        # The load of a[0] may not move past the possibly-aliasing store.
        assert "v[1]=L[a[0]];" in after

    def test_redefined_operand_blocks_combining(self, m68k):
        func = function_from_text(
            "f",
            """
            v[1]=d[1]+1;
            d[1]=0;
            d[0]=v[1];
            rv[0]=d[0];
            PC=RT;
            """,
        )
        combine(func, m68k)
        texts = [format_insn(i) for i in func.insns()]
        assert "v[1]=d[1]+1;" in texts  # moving it would read the new d[1]

    def test_two_uses_not_combined(self, m68k):
        func = function_from_text(
            "f",
            """
            v[1]=L[a[0]];
            d[0]=v[1]+v[1];
            rv[0]=d[0];
            PC=RT;
            """,
        )
        # d[0]=L[a[0]]+L[a[0]] would be illegal (two memory operands), and
        # v[1] has two textual uses anyway; the load must stay.
        combine(func, m68k)
        texts = [format_insn(i) for i in func.insns()]
        assert "v[1]=L[a[0]];" in texts

    def test_live_out_def_kept(self, m68k):
        func = function_from_text(
            "f",
            """
            v[1]=L[a[0]];
            NZ=d[0]?1;
            PC=NZ==0,L1;
            d[0]=v[1];
            L1:
              rv[0]=v[1];
              PC=RT;
            """,
        )
        combine(func, m68k)
        texts = [format_insn(i) for i in func.insns()]
        assert "v[1]=L[a[0]];" in texts

    def test_immediate_folding(self, sparc):
        func = function_from_text(
            "f",
            """
            v[1]=5;
            r[8]=r[9]+v[1];
            rv[0]=r[8];
            PC=RT;
            """,
        )
        assert combine(func, sparc)
        texts = [format_insn(i) for i in func.insns()]
        # Combining cascades: the immediate folds into the add, and the
        # add's (now single-use) result folds into the rv move.
        assert "rv[0]=r[9]+5;" in texts


class TestLiveness:
    def test_straightline(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            d[1]=d[0]+1;
            rv[0]=d[1];
            PC=RT;
            """,
        )
        from repro.rtl import Reg as R

        liveness = Liveness(func)
        block = func.blocks[0]
        live_in = liveness.block_live_in(block)
        assert R("d", 0) not in live_in  # defined before use

    def test_branch_union(self):
        func = function_from_text(
            "f",
            """
            NZ=d[9]?1;
            PC=NZ==0,L1;
            rv[0]=d[1];
            PC=RT;
            L1:
              rv[0]=d[2];
              PC=RT;
            """,
        )
        from repro.rtl import Reg as R

        liveness = Liveness(func)
        live_out = liveness.block_live_out(func.blocks[0])
        assert R("d", 1) in live_out
        assert R("d", 2) in live_out

    def test_loop_live_range(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              d[0]=d[0]+d[7];
              NZ=d[0]?10;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        from repro.rtl import Reg as R

        liveness = Liveness(func)
        loop_block = func.blocks[1]
        assert R("d", 7) in liveness.block_live_in(loop_block)
        assert R("d", 0) in liveness.block_live_out(loop_block)
