"""Edge cases of the control-flow cleanup pass."""

from repro.cfg import check_function
from repro.opt import eliminate_dead_code
from repro.opt.dead_code import merge_blocks, remove_redundant_jumps, remove_unreachable
from tests.conftest import function_from_text


class TestRemoveUnreachable:
    def test_cascading_unreachability(self):
        # B2 is only reachable from B3, which is only reachable from B2.
        func = function_from_text(
            "f",
            """
            PC=L9;
            L2:
              d[0]=1;
              PC=L3;
            L3:
              d[0]=2;
              PC=L2;
            L9:
              PC=RT;
            """,
        )
        assert remove_unreachable(func)
        assert [b.label for b in func.blocks] == ["B1", "L9"]

    def test_everything_reachable_untouched(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L1;
            d[0]=1;
            L1:
              PC=RT;
            """,
        )
        assert not remove_unreachable(func)


class TestRedundantJumps:
    def test_multiple_redundant_jumps_in_one_pass(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L1;
            L1:
              d[0]=2;
              PC=L2;
            L2:
              PC=RT;
            """,
        )
        assert remove_redundant_jumps(func)
        assert func.jump_count() == 0
        check_function(func)

    def test_non_adjacent_jump_kept(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L2;
            L1:
              d[0]=2;
            L2:
              PC=RT;
            """,
        )
        assert not remove_redundant_jumps(func)
        assert func.jump_count() == 1


class TestMergeBlocks:
    def test_chain_merges_fully(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L1;
            L1:
              d[1]=2;
              PC=L2;
            L2:
              d[2]=3;
              PC=RT;
            """,
        )
        eliminate_dead_code(func)
        assert len(func.blocks) == 1
        assert func.blocks[0].size() == 4

    def test_branch_target_blocks_merge(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L1;
            d[0]=1;
            L1:
              d[1]=2;
              PC=RT;
            """,
        )
        before = len(func.blocks)
        merge_blocks(func)
        # L1 has two predecessors (fall-through and branch): no merge.
        assert len(func.blocks) == before

    def test_single_block_function_untouched(self):
        func = function_from_text("f", "d[0]=1;\nPC=RT;\n")
        assert not eliminate_dead_code(func)
        assert [b.label for b in func.blocks] == ["B1"]
        check_function(func)

    def test_jump_to_adjacent_last_label_removed_and_merged(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L9;
            L9:
              PC=RT;
            """,
        )
        assert eliminate_dead_code(func)
        assert len(func.blocks) == 1
        assert func.jump_count() == 0
        check_function(func)

    def test_jump_to_nonadjacent_last_label_kept(self):
        # L9 has two predecessors (the jump and L1's fall-through): the
        # jump is not redundant and the last block must not merge away.
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L1;
            d[0]=1;
            PC=L9;
            L1:
              d[0]=2;
            L9:
              PC=RT;
            """,
        )
        assert not eliminate_dead_code(func)
        assert [b.label for b in func.blocks] == ["B1", "B2", "L1", "L9"]
        assert func.jump_count() == 1
        check_function(func)

    def test_unreachable_empty_final_block_removed(self):
        from repro.cfg.graph import compute_flow

        func = function_from_text("f", "d[0]=1;\nPC=RT;\n")
        func.blocks.append(type(func.blocks[0])(label="L99"))
        compute_flow(func)
        assert eliminate_dead_code(func)
        assert [b.label for b in func.blocks] == ["B1"]
        check_function(func)

    def test_reachable_empty_final_block_preserved(self):
        # An empty final block that is a live branch target must survive
        # every cleanup: it is reachable, its label is referenced, and it
        # has two predecessors — none of the three rules may fire.
        from repro.cfg.graph import compute_flow

        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L9;
            d[0]=1;
            PC=RT;
            L9:
              PC=RT;
            """,
        )
        func.blocks[-1].insns.clear()
        compute_flow(func)
        assert not eliminate_dead_code(func)
        assert [b.label for b in func.blocks] == ["B1", "B2", "L9"]
        assert func.blocks[-1].size() == 0

    def test_merge_preserves_execution(self):
        from repro.cfg import Program
        from repro.ease import Interpreter

        func = function_from_text(
            "main",
            """
            d[0]=5;
            PC=L1;
            L1:
              d[0]=d[0]*3;
              PC=L2;
            L2:
              rv[0]=d[0];
              PC=RT;
            """,
        )
        program = Program()
        program.add_function(func)
        before = Interpreter(program).run().exit_code
        eliminate_dead_code(func)
        program2 = Program()
        program2.add_function(func)
        assert Interpreter(program2).run().exit_code == before == 15
