"""Dominance-based constant folding at conditional branches.

On the RISC target, legalization materializes comparison constants into
registers, so folding must look through single-definition constant
registers (with a dominance check) rather than only at syntactic
constants.
"""

from repro.cfg import check_function
from repro.opt import fold_branches
from repro.rtl import CondBranch, Jump
from tests.conftest import function_from_text


class TestGlobalConstantBranches:
    def test_register_constant_folds_across_blocks(self):
        func = function_from_text(
            "f",
            """
            r[8]=1;
            d[0]=0;
            L1:
              NZ=r[8]?1;
              PC=NZ==0,L9;
            B:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
            L9:
              rv[0]=d[0];
              PC=RT;
            """,
        )
        assert fold_branches(func)
        check_function(func)
        # The r[8]==1 comparison is decided: the always-taken branch became
        # an unconditional jump (new replication fodder, §3.3.1).
        jumps = [i for i in func.insns() if isinstance(i, Jump)]
        assert jumps and jumps[0].target == "L9"

    def test_never_taken_register_branch_removed(self):
        func = function_from_text(
            "f",
            """
            r[8]=5;
            NZ=r[8]?5;
            PC=NZ!=0,L9;
            rv[0]=1;
            PC=RT;
            L9:
              rv[0]=2;
              PC=RT;
            """,
        )
        assert fold_branches(func)
        assert not any(isinstance(i, CondBranch) for i in func.insns())

    def test_multiply_defined_register_not_folded(self):
        func = function_from_text(
            "f",
            """
            r[8]=1;
            NZ=d[9]?0;
            PC=NZ==0,L1;
            r[8]=2;
            L1:
              NZ=r[8]?1;
              PC=NZ==0,L9;
            rv[0]=0;
            PC=RT;
            L9:
              rv[0]=1;
              PC=RT;
            """,
        )
        assert not fold_branches(func)

    def test_non_dominating_definition_not_folded(self):
        # The constant def sits on only one path to the compare.
        func = function_from_text(
            "f",
            """
            NZ=d[9]?0;
            PC=NZ==0,L1;
            r[8]=1;
            L1:
              NZ=r[8]?1;
              PC=NZ==0,L9;
            rv[0]=0;
            PC=RT;
            L9:
              rv[0]=1;
              PC=RT;
            """,
        )
        assert not fold_branches(func)

    def test_same_block_def_after_compare_not_folded(self):
        func = function_from_text(
            "f",
            """
            L1:
              NZ=r[8]?1;
              r[8]=1;
              PC=NZ==0,L9;
            rv[0]=0;
            PC=RT;
            L9:
              rv[0]=1;
              PC=RT;
            """,
        )
        assert not fold_branches(func)

    def test_same_block_def_before_compare_folds(self):
        func = function_from_text(
            "f",
            """
            r[8]=3;
            NZ=r[8]?3;
            PC=NZ==0,L9;
            rv[0]=0;
            PC=RT;
            L9:
              rv[0]=1;
              PC=RT;
            """,
        )
        assert fold_branches(func)

    def test_semantics_preserved_on_sparc_dead_arm(self):
        from tests.conftest import run_c

        source = """
        int main() {
            int i, s;
            s = 0;
            for (i = 0; i < 15; i++) {
                if (2 > 1)
                    s += 2;
                else
                    s -= 999;
            }
            return s;
        }
        """
        reference = run_c(source)
        for target in ("m68020", "sparc"):
            for replication in ("none", "jumps"):
                assert run_c(source, target=target, replication=replication) == reference
