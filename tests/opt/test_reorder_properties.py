"""Property tests for block reordering."""

from hypothesis import given, settings

from repro.cfg import Program, check_function
from repro.core import clone_function
from repro.ease import Interpreter
from repro.opt import eliminate_dead_code, reorder_blocks
from tests.core.test_random_cfgs import random_functions


def run(func):
    program = Program()
    program.add_function(func)
    return Interpreter(program, max_steps=2_000_000).run().exit_code


class TestReorderProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_functions())
    def test_reorder_preserves_behaviour(self, func):
        reference = run(clone_function(func))
        candidate = clone_function(func)
        reorder_blocks(candidate)
        check_function(candidate)
        assert run(candidate) == reference

    @settings(max_examples=60, deadline=None)
    @given(random_functions())
    def test_reorder_plus_cleanup_never_adds_jumps(self, func):
        candidate = clone_function(func)
        before = candidate.jump_count()
        reorder_blocks(candidate)
        eliminate_dead_code(candidate)
        assert candidate.jump_count() <= before

    @settings(max_examples=40, deadline=None)
    @given(random_functions())
    def test_entry_block_stays_first(self, func):
        candidate = clone_function(func)
        entry_label = candidate.entry.label
        reorder_blocks(candidate)
        assert candidate.entry.label == entry_label

    @settings(max_examples=40, deadline=None)
    @given(random_functions())
    def test_block_multiset_preserved(self, func):
        candidate = clone_function(func)
        before = sorted(b.label for b in candidate.blocks)
        reorder_blocks(candidate)
        after = sorted(b.label for b in candidate.blocks)
        assert before == after
