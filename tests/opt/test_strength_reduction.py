"""Induction-variable strength reduction tests."""

from repro.cfg import check_function, find_loops
from repro.opt import strength_reduce
from repro.rtl import format_insn
from tests.conftest import function_from_text, run_c


def loop_insns(func):
    texts = []
    for loop in find_loops(func).loops:
        for block in loop.blocks:
            texts.extend(format_insn(i) for i in block.insns)
    return texts


class TestStrengthReduction:
    def test_iv_multiply_removed_from_loop(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              v[1]=d[0]*4;
              d[1]=d[1]+v[1];
              d[0]=d[0]+1;
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[1];
            PC=RT;
            """,
        )
        assert strength_reduce(func)
        check_function(func)
        assert not any("*4" in t for t in loop_insns(func))
        # The derived register advances additively inside the loop.
        assert any("+4;" in t for t in loop_insns(func))

    def test_downward_iv(self):
        func = function_from_text(
            "f",
            """
            d[0]=50;
            L1:
              v[1]=d[0]*8;
              d[1]=d[1]+v[1];
              d[0]=d[0]-1;
              NZ=d[0]?0;
              PC=NZ>0,L1;
            rv[0]=d[1];
            PC=RT;
            """,
        )
        assert strength_reduce(func)
        assert not any("*8" in t for t in loop_insns(func))

    def test_non_iv_multiply_untouched(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              d[0]=d[0]*2;
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        # d[0]=d[0]*2 is not an additive induction variable.
        assert not strength_reduce(func)

    def test_idempotent(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              v[1]=d[0]*4;
              d[1]=d[1]+v[1];
              d[0]=d[0]+1;
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[1];
            PC=RT;
            """,
        )
        strength_reduce(func)
        assert not strength_reduce(func)

    def test_semantics_preserved_array_walk(self):
        source = """
        int a[64];
        int main() {
            int i, s;
            for (i = 0; i < 64; i++)
                a[i] = i;
            s = 0;
            for (i = 0; i < 64; i += 3)
                s += a[i];
            return s;
        }
        """
        expected = run_c(source)
        for target in ("m68020", "sparc"):
            assert run_c(source, target=target) == expected

    def test_semantics_preserved_2d(self):
        source = """
        int m[8][8];
        int main() {
            int i, j, s;
            for (i = 0; i < 8; i++)
                for (j = 0; j < 8; j++)
                    m[i][j] = i * j;
            s = 0;
            for (i = 0; i < 8; i++)
                s += m[i][7 - i];
            return s;
        }
        """
        expected = run_c(source)
        for target in ("m68020", "sparc"):
            assert run_c(source, target=target) == expected
