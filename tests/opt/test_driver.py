"""Figure-3 driver tests."""

import pytest

from repro.cfg import check_function
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.rtl import Nop
from repro.targets import get_target

SOURCE = """
int total;
int main() {
    int i;
    total = 0;
    for (i = 0; i < 50; i++) {
        if (i % 2 == 0) total += i;
        else total -= 1;
    }
    return total;
}
"""


class TestConfig:
    def test_rejects_unknown_replication(self):
        with pytest.raises(ValueError):
            OptimizationConfig(replication="everything")

    @pytest.mark.parametrize("replication", ["none", "loops", "jumps"])
    def test_accepts_paper_configurations(self, replication):
        OptimizationConfig(replication=replication)


class TestPipeline:
    @pytest.mark.parametrize("target_name", ["m68020", "sparc"])
    @pytest.mark.parametrize("replication", ["none", "loops", "jumps"])
    def test_output_wellformed_and_legal(self, target_name, replication):
        program = compile_c(SOURCE)
        target = get_target(target_name)
        optimize_program(program, target, OptimizationConfig(replication=replication))
        for func in program.functions.values():
            check_function(func)
            for insn in func.insns():
                assert target.legal(insn)
                # No virtual registers survive allocation.
                for reg in insn.used_regs():
                    assert reg.bank != "v"

    def test_jumps_config_eliminates_jumps(self):
        program = compile_c(SOURCE)
        optimize_program(
            program, get_target("sparc"), OptimizationConfig(replication="jumps")
        )
        assert program.jump_count() == 0

    def test_simple_config_keeps_jumps(self):
        program = compile_c(SOURCE)
        optimize_program(
            program, get_target("sparc"), OptimizationConfig(replication="none")
        )
        assert program.jump_count() > 0

    def test_delay_slots_only_on_sparc(self):
        for name, expect_nops_possible in (("sparc", True), ("m68020", False)):
            program = compile_c(SOURCE)
            optimize_program(program, get_target(name), OptimizationConfig())
            nops = sum(
                1
                for f in program.functions.values()
                for i in f.insns()
                if isinstance(i, Nop)
            )
            if not expect_nops_possible:
                assert nops == 0

    def test_replication_stats_accumulated(self):
        program = compile_c(SOURCE)
        stats = optimize_program(
            program, get_target("sparc"), OptimizationConfig(replication="jumps")
        )
        assert stats.jumps_replaced > 0

    def test_optimizer_shrinks_naive_code(self):
        program = compile_c(SOURCE)
        naive = program.insn_count()
        optimize_program(program, get_target("m68020"), OptimizationConfig())
        assert program.insn_count() < naive

    def test_max_iterations_respected(self):
        program = compile_c(SOURCE)
        config = OptimizationConfig(replication="jumps", max_iterations=1)
        optimize_program(program, get_target("sparc"), config)
        for func in program.functions.values():
            check_function(func)
