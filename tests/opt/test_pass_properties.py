"""Property-based semantic preservation of the scalar optimizer passes.

Random straight-line blocks of register arithmetic are run before and
after each pass (and after the whole pass pipeline); the observable
result — the returned register value — must be identical.  This pins the
passes' semantics independently of the front-end and of replication.
"""

from hypothesis import given, settings, strategies as st

from repro.cfg import Program, compute_flow
from repro.cfg.block import BasicBlock, Function
from repro.core import clone_function
from repro.ease import Interpreter
from repro.opt import (
    combine,
    eliminate_dead_variables,
    fold_constants,
    legalize,
    local_cse,
    propagate_copies,
)
from repro.rtl import Assign, BinOp, Const, Reg, Return, UnOp
from repro.targets import get_target

N_REGS = 5


@st.composite
def straightline_functions(draw):
    func = Function("main")
    block = BasicBlock("B0")
    func.blocks = [block]
    for k in range(N_REGS):
        block.insns.append(Assign(Reg("v", k), Const(draw(st.integers(-20, 20)))))
    for _ in range(draw(st.integers(1, 12))):
        dst = Reg("v", draw(st.integers(0, N_REGS - 1)))
        shape = draw(st.integers(0, 3))
        if shape == 0:
            src = Const(draw(st.integers(-100, 100)))
        elif shape == 1:
            src = Reg("v", draw(st.integers(0, N_REGS - 1)))
        elif shape == 2:
            op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>"]))
            left = Reg("v", draw(st.integers(0, N_REGS - 1)))
            if op in ("<<", ">>"):
                right = Const(draw(st.integers(0, 8)))
            else:
                right = draw(
                    st.one_of(
                        st.integers(-50, 50).map(Const),
                        st.integers(0, N_REGS - 1).map(lambda k: Reg("v", k)),
                    )
                )
            src = BinOp(op, left, right)
        else:
            src = UnOp(
                draw(st.sampled_from(["-", "~"])),
                Reg("v", draw(st.integers(0, N_REGS - 1))),
            )
        block.insns.append(Assign(dst, src))
    result_reg = Reg("v", draw(st.integers(0, N_REGS - 1)))
    block.insns.append(Assign(Reg("rv", 0), BinOp("&", result_reg, Const(0xFFFF))))
    block.insns.append(Return())
    compute_flow(func)
    return func


def run(func):
    program = Program()
    program.add_function(func)
    return Interpreter(program).run().exit_code


PASSES = [
    ("fold_constants", lambda f, t: fold_constants(f)),
    ("local_cse", lambda f, t: local_cse(f, t)),
    ("copy_prop", lambda f, t: propagate_copies(f)),
    ("dead_vars", lambda f, t: eliminate_dead_variables(f)),
    ("combine", lambda f, t: combine(f, t)),
    ("legalize", lambda f, t: legalize(f, t)),
]


class TestPassSemantics:
    @settings(max_examples=60, deadline=None)
    @given(straightline_functions())
    def test_each_pass_preserves_result(self, func):
        reference = run(clone_function(func))
        for target_name in ("m68020", "sparc"):
            target = get_target(target_name)
            for name, apply_pass in PASSES:
                candidate = clone_function(func)
                apply_pass(candidate, target)
                assert run(candidate) == reference, (name, target_name)

    @settings(max_examples=60, deadline=None)
    @given(straightline_functions())
    def test_pass_pipeline_preserves_result(self, func):
        reference = run(clone_function(func))
        for target_name in ("m68020", "sparc"):
            target = get_target(target_name)
            candidate = clone_function(func)
            for _ in range(3):
                changed = False
                changed |= fold_constants(candidate)
                changed |= local_cse(candidate, target)
                changed |= propagate_copies(candidate)
                changed |= legalize(candidate, target)
                changed |= combine(candidate, target)
                changed |= eliminate_dead_variables(candidate)
                if not changed:
                    break
            assert run(candidate) == reference, target_name

    @settings(max_examples=40, deadline=None)
    @given(straightline_functions())
    def test_dead_vars_never_grows_code(self, func):
        candidate = clone_function(func)
        before = candidate.insn_count()
        eliminate_dead_variables(candidate)
        assert candidate.insn_count() <= before

    @settings(max_examples=40, deadline=None)
    @given(straightline_functions())
    def test_legalize_produces_legal_code(self, func):
        for target_name in ("m68020", "sparc"):
            target = get_target(target_name)
            candidate = clone_function(func)
            legalize(candidate, target)
            for insn in candidate.insns():
                assert target.legal(insn)


from repro.opt import Liveness
from tests.core.test_random_cfgs import random_functions


class TestLivenessEquations:
    """The dataflow fixpoint equations hold on random CFGs."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_liveness_fixpoint(self, data):
        func = data.draw(random_functions())
        liveness = Liveness(func)
        for block in func.blocks:
            # live-out = union of successors' live-in.
            expected_out = set()
            for succ in block.succs:
                expected_out |= liveness.block_live_in(succ)
            assert liveness.block_live_out(block) == expected_out
            # live-in = use ∪ (live-out − def), via the backward walk.
            # walk_backward yields a *shared mutated* set, so copy it.
            walked = None
            for insn, live_after in liveness.walk_backward(block):
                walked = set(live_after)
            # After walking past the first instruction, applying its
            # transfer gives live-in.
            first = block.insns[0]
            live_in = set(walked)
            defined = first.defined_reg()
            if defined is not None:
                live_in.discard(defined)
            live_in |= first.used_regs()
            assert live_in == liveness.block_live_in(block)
