"""Unit tests for the individual optimizer passes."""

import pytest

from repro.cfg import check_function, compute_flow
from repro.opt import (
    branch_chaining,
    eliminate_dead_code,
    eliminate_dead_variables,
    fold_branches,
    fold_constants,
    local_cse,
    reorder_blocks,
)
from repro.rtl import Assign, Compare, Const, Jump, Reg, format_function, parse_insn
from tests.conftest import function_from_text


class TestBranchChaining:
    def test_jump_to_jump_retargeted(self):
        func = function_from_text(
            "f",
            """
            PC=L1;
            L1:
              PC=L2;
            L2:
              PC=RT;
            """,
        )
        assert branch_chaining(func)
        assert func.blocks[0].terminator.target == "L2"

    def test_cond_branch_to_jump_retargeted(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L1;
            PC=RT;
            L1:
              PC=L2;
            L2:
              PC=RT;
            """,
        )
        assert branch_chaining(func)
        cond = func.blocks[0].terminator
        assert cond.target == "L2"

    def test_jump_cycle_left_alone(self):
        func = function_from_text(
            "f",
            """
            PC=L1;
            L1:
              PC=L2;
            L2:
              PC=L1;
            """,
        )
        branch_chaining(func)  # must terminate
        check_function(func)

    def test_chain_of_three(self):
        func = function_from_text(
            "f",
            """
            PC=L1;
            L1:
              PC=L2;
            L2:
              PC=L3;
            L3:
              PC=RT;
            """,
        )
        branch_chaining(func)
        assert func.blocks[0].terminator.target == "L3"


class TestDeadCode:
    def test_unreachable_block_removed(self):
        func = function_from_text(
            "f",
            """
            PC=L2;
            d[0]=99;
            PC=L2;
            L2:
              PC=RT;
            """,
        )
        assert eliminate_dead_code(func)
        # The unreachable d[0]=99 block is gone (and the survivors merged).
        assert not any("99" in repr(i) for i in func.insns())
        assert func.insn_count() == 1

    def test_redundant_jump_removed(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L1;
            L1:
              PC=RT;
            """,
        )
        assert eliminate_dead_code(func)
        assert func.jump_count() == 0

    def test_blocks_merged(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L1;
            L1:
              d[1]=2;
              PC=RT;
            """,
        )
        eliminate_dead_code(func)
        assert len(func.blocks) == 1
        assert func.blocks[0].size() == 3

    def test_branch_target_not_merged(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L1;
            d[0]=1;
            L1:
              PC=RT;
            """,
        )
        eliminate_dead_code(func)
        # L1 is a branch target: it must survive as its own block.
        assert any(b.label == "L1" for b in func.blocks)


class TestReorder:
    def test_jump_becomes_fallthrough(self):
        func = function_from_text(
            "f",
            """
            PC=L9;
            L5:
              PC=RT;
            L9:
              d[0]=1;
              PC=L5;
            """,
        )
        reorder_blocks(func)
        eliminate_dead_code(func)
        check_function(func)
        assert func.jump_count() == 0
        # The reordered layout executes d[0]=1 then returns, all jumps died
        # (the blocks may even have merged into a straight line).
        texts = [repr(i) for i in func.insns()]
        assert texts == ["Assign(Reg('d',0), Const(1))", "Return()"]

    def test_entry_stays_first(self):
        func = function_from_text(
            "f",
            """
            d[0]=1;
            PC=L2;
            L1:
              PC=RT;
            L2:
              PC=L1;
            """,
        )
        entry = func.entry
        reorder_blocks(func)
        assert func.entry is entry

    def test_fallthrough_runs_kept_together(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            PC=NZ==0,L2;
            d[0]=1;
            PC=L3;
            L2:
              d[0]=2;
            L3:
              PC=RT;
            """,
        )
        # Block B2 (d[0]=1) must keep following the conditional branch, and
        # L3 must keep following L2.
        reorder_blocks(func)
        check_function(func)
        labels = [b.label for b in func.blocks]
        assert labels.index("B2") == labels.index("B1") + 1
        assert labels.index("L3") == labels.index("L2") + 1


class TestConstFold:
    def test_constant_arithmetic(self):
        func = function_from_text("f", "d[0]=2+3*4;\nPC=RT;")
        assert fold_constants(func)
        assert func.blocks[0].insns[0].src == Const(14)

    def test_identities(self):
        func = function_from_text("f", "d[0]=d[1]+0;\nd[2]=d[3]*1;\nPC=RT;")
        fold_constants(func)
        assert func.blocks[0].insns[0].src == Reg("d", 1)
        assert func.blocks[0].insns[1].src == Reg("d", 3)

    def test_multiply_by_zero(self):
        func = function_from_text("f", "d[0]=d[1]*0;\nPC=RT;")
        fold_constants(func)
        assert func.blocks[0].insns[0].src == Const(0)

    def test_reassociation(self):
        func = function_from_text("f", "d[0]=d[1]+3+4;\nPC=RT;")
        fold_constants(func)
        insn = func.blocks[0].insns[0]
        assert repr(insn.src) == repr(parse_insn("d[0]=d[1]+7;").src)

    def test_division_by_zero_not_folded(self):
        func = function_from_text("f", "d[0]=1/0;\nPC=RT;")
        fold_constants(func)
        assert not isinstance(func.blocks[0].insns[0].src, Const)

    def test_subtract_self_is_zero(self):
        func = function_from_text("f", "d[0]=d[1]-d[1];\nPC=RT;")
        fold_constants(func)
        assert func.blocks[0].insns[0].src == Const(0)

    def test_always_taken_branch_becomes_jump(self):
        func = function_from_text(
            "f",
            """
            NZ=3?2;
            PC=NZ>0,L1;
            d[0]=1;
            L1:
              PC=RT;
            """,
        )
        assert fold_branches(func)
        assert isinstance(func.blocks[0].terminator, Jump)
        assert func.blocks[0].size() == 1  # the compare died too

    def test_never_taken_branch_removed(self):
        func = function_from_text(
            "f",
            """
            NZ=1?2;
            PC=NZ>0,L1;
            d[0]=1;
            L1:
              PC=RT;
            """,
        )
        assert fold_branches(func)
        assert func.blocks[0].terminator is None

    def test_nonconstant_branch_untouched(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?2;
            PC=NZ>0,L1;
            d[0]=1;
            L1:
              PC=RT;
            """,
        )
        assert not fold_branches(func)


class TestCSE:
    def test_redundant_expression_reuses_register(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[1]+d[2];
            v[2]=d[1]+d[2];
            PC=RT;
            """,
        )
        assert local_cse(func)
        second = func.blocks[0].insns[1]
        assert second.src == Reg("v", 1)

    def test_copy_propagation(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[1];
            v[2]=v[1]+1;
            PC=RT;
            """,
        )
        local_cse(func)
        second = func.blocks[0].insns[1]
        assert Reg("d", 1) in set(r for r in second.used_regs())

    def test_constant_propagation(self):
        func = function_from_text(
            "f",
            """
            v[1]=5;
            v[2]=v[1]+1;
            PC=RT;
            """,
        )
        local_cse(func)
        assert func.blocks[0].insns[1].src == Const(6)

    def test_store_invalidates_loads(self):
        func = function_from_text(
            "f",
            """
            v[1]=L[a[0]];
            L[a[1]]=d[0];
            v[2]=L[a[0]];
            PC=RT;
            """,
        )
        local_cse(func)
        third = func.blocks[0].insns[2]
        # The store may alias a[0]; the second load must stay a load.
        assert "Mem" in repr(third.src)

    def test_store_to_load_forwarding(self):
        func = function_from_text(
            "f",
            """
            L[a[0]]=d[3];
            v[1]=L[a[0]];
            PC=RT;
            """,
        )
        local_cse(func)
        assert func.blocks[0].insns[1].src == Reg("d", 3)

    def test_call_invalidates_memory(self):
        func = function_from_text(
            "f",
            """
            v[1]=L[a[0]];
            CALL _g,0;
            v[2]=L[a[0]];
            PC=RT;
            """,
        )
        local_cse(func)
        third = func.blocks[0].insns[2]
        assert "Mem" in repr(third.src)

    def test_redefinition_invalidates_value(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[1]+d[2];
            d[1]=0;
            v[2]=d[1]+d[2];
            PC=RT;
            """,
        )
        local_cse(func)
        third = func.blocks[0].insns[2]
        assert third.src != Reg("v", 1)


class TestDeadVars:
    def test_dead_assignment_removed(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[1]+d[2];
            rv[0]=0;
            PC=RT;
            """,
        )
        assert eliminate_dead_variables(func)
        assert func.blocks[0].size() == 2

    def test_chain_of_dead_assignments(self):
        func = function_from_text(
            "f",
            """
            v[1]=1;
            v[2]=v[1]+1;
            v[3]=v[2]+1;
            rv[0]=0;
            PC=RT;
            """,
        )
        eliminate_dead_variables(func)
        assert func.blocks[0].size() == 2

    def test_live_through_branch_kept(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[1]+d[2];
            NZ=d[0]?1;
            PC=NZ==0,L1;
            rv[0]=v[1];
            PC=RT;
            L1:
              rv[0]=0;
              PC=RT;
            """,
        )
        eliminate_dead_variables(func)
        assert any(
            isinstance(i, Assign) and i.dst == Reg("v", 1)
            for i in func.blocks[0].insns
        )

    def test_dead_compare_removed(self):
        func = function_from_text(
            "f",
            """
            NZ=d[0]?1;
            rv[0]=0;
            PC=RT;
            """,
        )
        assert eliminate_dead_variables(func)
        assert not any(isinstance(i, Compare) for i in func.insns())

    def test_store_never_removed(self):
        func = function_from_text(
            "f",
            """
            L[a[0]]=d[1];
            PC=RT;
            """,
        )
        eliminate_dead_variables(func)
        assert func.blocks[0].size() == 2
