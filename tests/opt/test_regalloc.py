"""Register promotion and colouring tests."""

import pytest

from repro.cfg import check_function
from repro.opt import color_registers, legalize, promote_locals
from repro.rtl import Local, Mem, Reg, format_insn
from repro.targets import get_target
from tests.conftest import function_from_text, run_c


def has_frame_ref(func, name):
    from repro.rtl import walk

    for insn in func.insns():
        exprs = list(insn.used_exprs())
        dst = getattr(insn, "dst", None)
        if isinstance(dst, Mem):
            exprs.append(dst.addr)
        for expr in exprs:
            for node in walk(expr):
                if isinstance(node, Local) and node.name == name:
                    return True
    return False


class TestPromotion:
    def test_scalar_local_promoted(self):
        func = function_from_text(
            "f",
            """
            L[FP+x.]=1;
            L[FP+x.]=L[FP+x.]+2;
            rv[0]=L[FP+x.];
            PC=RT;
            """,
        )
        func.add_local("x", 4)
        assert promote_locals(func) == 1
        assert not has_frame_ref(func, "x")

    def test_address_taken_blocks_promotion(self):
        func = function_from_text(
            "f",
            """
            L[FP+x.]=1;
            a[0]=FP+x.;
            rv[0]=L[a[0]];
            PC=RT;
            """,
        )
        func.add_local("x", 4)
        assert promote_locals(func) == 0
        assert has_frame_ref(func, "x")

    def test_array_slot_not_promoted(self):
        func = function_from_text(
            "f",
            """
            L[FP+arr.]=1;
            rv[0]=L[FP+arr.];
            PC=RT;
            """,
        )
        func.add_local("arr", 40)  # 40 bytes: an array, even if only the
        assert promote_locals(func) == 0  # first element is ever touched

    def test_indexed_access_blocks_promotion(self):
        func = function_from_text(
            "f",
            """
            L[FP+buf.]=0;
            rv[0]=L[FP+buf.+d[1]];
            PC=RT;
            """,
        )
        func.add_local("buf", 4)
        assert promote_locals(func) == 0


class TestColoring:
    def test_vregs_all_replaced(self):
        func = function_from_text(
            "f",
            """
            v[1]=1;
            v[2]=2;
            v[3]=v[1]+v[2];
            rv[0]=v[3];
            PC=RT;
            """,
        )
        target = get_target("m68020")
        result = color_registers(func, target)
        assert not result.spilled
        for insn in func.insns():
            for reg in insn.used_regs():
                assert reg.bank != "v"
            defined = insn.defined_reg()
            if defined is not None:
                assert defined.bank != "v"

    def test_interfering_vregs_get_distinct_colors(self):
        func = function_from_text(
            "f",
            """
            v[1]=1;
            v[2]=2;
            rv[0]=v[1]+v[2];
            PC=RT;
            """,
        )
        target = get_target("sparc")
        result = color_registers(func, target)
        assert result.assigned[Reg("v", 1)] != result.assigned[Reg("v", 2)]

    def test_disjoint_ranges_may_share(self):
        func = function_from_text(
            "f",
            """
            v[1]=1;
            d[0]=v[1];
            v[2]=2;
            rv[0]=v[2]+d[0];
            PC=RT;
            """,
        )
        target = get_target("m68020")
        result = color_registers(func, target)
        # Not required to share, but both must be colored, not spilled.
        assert len(result.assigned) == 2 and not result.spilled

    def test_high_pressure_spills_and_stays_correct(self):
        # 30 simultaneously-live values exceed every pool.
        n = 30
        defs = "\n".join(f"v[{i}]=Reg{i};".replace(f"Reg{i}", str(i)) for i in range(1, n + 1))
        uses = "+".join(f"v[{i}]" for i in range(1, n + 1))
        func = function_from_text("f", f"{defs}\nrv[0]={uses};\nPC=RT;")
        target = get_target("sparc")
        legalize(func, target)
        result = color_registers(func, target)
        check_function(func)
        assert result.spilled  # pressure forced spills
        for insn in func.insns():
            assert target.legal(insn), format_insn(insn)
            for reg in insn.used_regs():
                assert reg.bank != "v"

    def test_spilled_program_still_computes(self):
        # End-to-end: a C function with very high register pressure.
        terms = " + ".join(f"x{i}" for i in range(25))
        decls = "\n".join(f"int x{i};" for i in range(25))
        inits = "\n".join(f"x{i} = {i};" for i in range(25))
        source = f"""
        int main() {{
            {decls}
            {inits}
            return {terms};
        }}
        """
        expected = sum(range(25))
        unopt_out, unopt_code = run_c(source)
        assert unopt_code == expected
        for target in ("m68020", "sparc"):
            _, code = run_c(source, target=target)
            assert code == expected


class TestRegisterPreferences:
    def test_address_uses_prefer_address_registers_on_68020(self):
        func = function_from_text(
            "f",
            """
            v[1]=FP+buf.;
            v[2]=L[v[1]];
            rv[0]=v[2];
            PC=RT;
            """,
        )
        func.add_local("buf", 16)
        target = get_target("m68020")
        result = color_registers(func, target)
        # v[1] is used as a memory base address: it should land in an
        # address register; v[2] is a plain value: a data register.
        assert result.assigned[Reg("v", 1)].bank == "a"
        assert result.assigned[Reg("v", 2)].bank == "d"

    def test_sparc_has_single_uniform_pool(self):
        func = function_from_text(
            "f",
            """
            v[1]=FP+buf.;
            v[2]=L[v[1]];
            rv[0]=v[2];
            PC=RT;
            """,
        )
        func.add_local("buf", 16)
        target = get_target("sparc")
        result = color_registers(func, target)
        assert result.assigned[Reg("v", 1)].bank == "r"
        assert result.assigned[Reg("v", 2)].bank == "r"
