"""The §3.3 interaction claims: replication feeds other optimizations.

§3.3.1 — constant folding at conditional branches may *create* new
unconditional jumps, which the re-invoked replication then removes
(Figure 3 runs them in the same loop).

§3.3.2 — CSE combines an initial register assignment with its use in the
replicated sequence (Table 1's ``d[1]=2`` simplification).

§3.3.3 — after replication, loop preheaders can sit behind the loop's
entry branch, so zero-trip executions skip the hoisted code.
"""

from repro.cfg import build_function, find_loops
from repro.ease import Interpreter
from repro.frontend import compile_c
from repro.opt import (
    OptimizationConfig,
    eliminate_dead_code,
    fold_branches,
    optimize_program,
)
from repro.rtl import Jump, parse_insns
from repro.targets import get_target
from tests.conftest import function_from_text, run_c


class TestConstantFoldingCreatesJumps:
    """§3.3.1 in isolation, then end-to-end."""

    def test_folded_branch_becomes_jump_then_replication_removes_it(self):
        func = function_from_text(
            "f",
            """
            NZ=3?1;
            PC=NZ>0,L1;
            d[0]=111;
            L1:
              d[0]=d[0]+1;
              rv[0]=d[0];
              PC=RT;
            """,
        )
        assert fold_branches(func)
        # The always-taken branch is now an unconditional jump — new
        # replication fodder, exactly as §3.3.1 describes.
        assert any(isinstance(i, Jump) for i in func.insns())
        from repro.core import replicate_jumps

        replicate_jumps(func)
        eliminate_dead_code(func)
        assert func.jump_count() == 0

    def test_end_to_end_constant_condition(self):
        # The driver folds `if (DEBUG)` away and replication cleans up the
        # jump the folding leaves behind.
        source = """
        int main() {
            int i, s;
            s = 0;
            for (i = 0; i < 20; i++) {
                if (1 == 1)
                    s += i;
                else
                    s -= 1000;
            }
            return s;
        }
        """
        reference = run_c(source)
        for target in ("m68020", "sparc"):
            program = compile_c(source)
            optimize_program(
                program, get_target(target), OptimizationConfig(replication="jumps")
            )
            assert program.jump_count() == 0
            # The dead else-arm is gone entirely.
            assert not any(
                "Const(1000)" in repr(i) or "Const(-1000)" in repr(i)
                for f in program.functions.values()
                for i in f.insns()
            )
            result = Interpreter(program).run()
            assert (result.output, result.exit_code) == reference


class TestCSECombinesReplicatedCode:
    """§3.3.2: Table 1's note — the initial assignment folds into the copy."""

    def test_initial_constant_flows_into_replicated_header(self):
        source = """
        int x[64];
        int n;
        int main() {
            int i;
            n = 40;
            i = 1;
            while (1) {
                if (i > n) break;
                x[i - 1] = x[i];
                i++;
            }
            return i;
        }
        """
        reference = run_c(source)
        program = compile_c(source)
        optimize_program(
            program, get_target("m68020"), OptimizationConfig(replication="jumps")
        )
        result = Interpreter(program).run()
        assert (result.output, result.exit_code) == reference
        # The rotated loop kept no unconditional jump.
        main = program.functions["main"]
        assert main.jump_count() == 0
        info = find_loops(main)
        assert info.loops


class TestPreheaderRelocation:
    """§3.3.3: hoisted code sits behind the loop-entry branch."""

    def test_zero_trip_path_skips_preheader_work(self):
        # When the loop never runs, the replicated version must not pay
        # for the hoisted address formation: compare executed instruction
        # counts on a zero-trip input.
        source = """
        int a[32];
        int main() {
            int i, s, n;
            n = %d;
            s = 0;
            for (i = 0; i < n; i++)
                s += a[i] + 7;
            return s;
        }
        """
        from repro.ease import measure_program

        target = get_target("sparc")

        def dyn(n, replication):
            program = compile_c(source % n)
            optimize_program(
                program, target, OptimizationConfig(replication=replication)
            )
            return measure_program(program, target).dynamic_insns

        # Zero-trip executions after replication cost no more than a
        # handful of instructions beyond the SIMPLE version...
        assert dyn(0, "jumps") <= dyn(0, "none") + 4
        # ...while long-running executions are strictly cheaper.
        assert dyn(30, "jumps") < dyn(30, "none")
