"""Global single-def copy-propagation tests."""

from repro.opt import propagate_copies
from repro.rtl import Reg, format_insn
from tests.conftest import function_from_text


def texts(func):
    return [format_insn(i) for i in func.insns()]


class TestCopyProp:
    def test_single_def_copy_propagated(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[9]+1;
            v[2]=v[1];
            rv[0]=v[2]+v[2];
            PC=RT;
            """,
        )
        assert propagate_copies(func)
        assert "rv[0]=v[1]+v[1];" in texts(func)

    def test_chain_resolved(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[9];
            v[2]=v[1];
            v[3]=v[2];
            rv[0]=v[3];
            PC=RT;
            """,
        )
        propagate_copies(func)
        assert "rv[0]=v[1];" in texts(func)

    def test_cross_block_propagation(self):
        # The whole point: value numbering is block-local, this is global.
        func = function_from_text(
            "f",
            """
            v[1]=d[9]*4;
            v[2]=v[1];
            NZ=d[0]?1;
            PC=NZ==0,L1;
            rv[0]=v[2];
            PC=RT;
            L1:
              rv[0]=v[2]+1;
              PC=RT;
            """,
        )
        assert propagate_copies(func)
        assert "rv[0]=v[1];" in texts(func)
        assert "rv[0]=v[1]+1;" in texts(func)

    def test_multiply_defined_source_not_propagated(self):
        func = function_from_text(
            "f",
            """
            v[1]=1;
            v[2]=v[1];
            v[1]=2;
            rv[0]=v[2];
            PC=RT;
            """,
        )
        assert not propagate_copies(func)
        assert "rv[0]=v[2];" in texts(func)

    def test_multiply_defined_destination_not_propagated(self):
        func = function_from_text(
            "f",
            """
            v[1]=d[9];
            v[2]=v[1];
            v[2]=0;
            rv[0]=v[2];
            PC=RT;
            """,
        )
        assert not propagate_copies(func)

    def test_machine_registers_untouched(self):
        func = function_from_text(
            "f",
            """
            d[1]=d[9];
            rv[0]=d[1];
            PC=RT;
            """,
        )
        assert not propagate_copies(func)

    def test_semantics_preserved(self):
        from repro.cfg import Program
        from repro.core import clone_function
        from repro.ease import Interpreter

        func = function_from_text(
            "f",
            """
            d[9]=17;
            v[1]=d[9]+4;
            v[2]=v[1];
            v[3]=v[2];
            rv[0]=v[3]*v[2];
            PC=RT;
            """,
        )
        original = clone_function(func)
        original.name = "main"
        propagate_copies(func)
        func.name = "main"
        p1, p2 = Program(), Program()
        p1.add_function(original)
        p2.add_function(func)
        assert Interpreter(p1).run().exit_code == Interpreter(p2).run().exit_code
