"""Loop-invariant code motion and preheader tests."""

from repro.cfg import check_function, find_loops
from repro.opt import ensure_preheader, loop_invariant_code_motion
from repro.rtl import format_insn
from tests.conftest import function_from_text


def insn_texts(func):
    return [format_insn(i) for i in func.insns()]


def loop_insns(func):
    info = find_loops(func)
    texts = []
    for loop in info.loops:
        for block in loop.blocks:
            texts.extend(format_insn(i) for i in block.insns)
    return texts


class TestLICM:
    def test_invariant_hoisted_out(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              v[1]=d[7]*4;
              d[0]=d[0]+v[1];
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        assert loop_invariant_code_motion(func)
        check_function(func)
        assert "v[1]=d[7]*4;" not in loop_insns(func)
        assert "v[1]=d[7]*4;" in insn_texts(func)

    def test_variant_not_hoisted(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              v[1]=d[0]*4;
              d[0]=d[0]+1;
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        loop_invariant_code_motion(func)
        assert "v[1]=d[0]*4;" in loop_insns(func)

    def test_load_not_hoisted_past_store(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              v[1]=L[a[5]];
              L[a[6]+8]=d[0];
              d[0]=d[0]+v[1];
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        loop_invariant_code_motion(func)
        assert "v[1]=L[a[5]];" in loop_insns(func)

    def test_invariant_load_hoisted_when_loop_is_pure(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              v[1]=L[a[5]];
              d[0]=d[0]+v[1];
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        assert loop_invariant_code_motion(func)
        assert "v[1]=L[a[5]];" not in loop_insns(func)

    def test_trapping_expr_needs_dominating_block(self):
        # The division sits behind a conditional branch inside the loop
        # (does not dominate the exit) and d[9] could be live... here dead,
        # but a trap must not be introduced: stays put.
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              NZ=d[0]?50;
              PC=NZ>0,L2;
              v[9]=d[7]/d[6];
              d[0]=d[0]+v[9];
            L2:
              d[0]=d[0]+1;
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        loop_invariant_code_motion(func)
        assert "v[9]=d[7]/d[6];" in loop_insns(func)

    def test_multiple_defs_not_hoisted(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              NZ=d[0]?10;
              PC=NZ>0,L2;
              v[1]=d[7]*2;
              PC=L3;
            L2:
              v[1]=d[7]*3;
            L3:
              d[0]=d[0]+v[1];
              NZ=d[0]?100;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        loop_invariant_code_motion(func)
        texts = loop_insns(func)
        assert "v[1]=d[7]*2;" in texts
        assert "v[1]=d[7]*3;" in texts

    def test_semantics_preserved_via_c(self):
        from tests.conftest import run_c

        source = """
        int main() {
            int i, s, k;
            k = 17;
            s = 0;
            for (i = 0; i < 20; i++)
                s += k * 3;
            return s;
        }
        """
        unopt = run_c(source)
        for target in ("m68020", "sparc"):
            assert run_c(source, target=target) == unopt


class TestEnsurePreheader:
    def test_creates_block_before_header(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        info = find_loops(func)
        loop = info.loops[0]
        preheader = ensure_preheader(func, loop)
        check_function(func)
        assert func.next_block(preheader) is loop.header
        assert preheader not in loop.blocks

    def test_existing_preheader_reused(self):
        func = function_from_text(
            "f",
            """
            d[0]=0;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        loop = find_loops(func).loops[0]
        first = ensure_preheader(func, loop)
        loop = find_loops(func).loops[0]
        second = ensure_preheader(func, loop)
        assert first is second

    def test_branch_preds_retargeted(self):
        func = function_from_text(
            "f",
            """
            NZ=d[9]?1;
            PC=NZ==0,L1;
            d[0]=5;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """,
        )
        loop = find_loops(func).loops[0]
        preheader = ensure_preheader(func, loop)
        check_function(func)
        entry_branch = func.blocks[0].terminator
        assert entry_branch.target == preheader.label
        # The back edge still targets the header itself.
        header = loop.header
        back = [p for p in header.preds if p.label != preheader.label]
        assert back
