"""The CFG invariant validator wired into the optimizer driver.

Covers the ``validate_cfg`` debug flag end to end: a clean optimization
run passes with validation on, a corrupted CFG is caught by
:func:`repro.cfg.graph.check_function`, and a pass that corrupts the
graph mid-pipeline is named by the driver's post-pass check.
"""

import pytest

from repro.cfg.graph import check_function
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.opt import driver as driver_module
from repro.rtl.insn import Jump
from repro.targets import get_target

SOURCE = """
int main() {
    int i, total;
    total = 0;
    for (i = 0; i < 10; i++) {
        if (i & 1) {
            total += i;
        } else {
            total -= 1;
        }
    }
    return total & 255;
}
"""


def compiled_main():
    program = compile_c(SOURCE)
    return program, program.functions["main"]


@pytest.mark.parametrize("target_name", ["sparc", "m68020"])
@pytest.mark.parametrize("replication", ["none", "loops", "jumps"])
def test_validation_passes_on_clean_pipeline(target_name, replication):
    program, _ = compiled_main()
    optimize_program(
        program,
        get_target(target_name),
        OptimizationConfig(replication=replication, validate_cfg=True),
    )


def test_validator_catches_duplicate_labels():
    _, func = compiled_main()
    assert len(func.blocks) >= 2
    func.blocks[1].label = func.blocks[0].label
    with pytest.raises(AssertionError, match="duplicate labels"):
        check_function(func)


def test_validator_catches_transfer_mid_block():
    _, func = compiled_main()
    victim = next(block for block in func.blocks if len(block.insns) >= 2)
    victim.insns.insert(0, Jump(func.blocks[0].label))
    with pytest.raises(AssertionError, match="not at block end"):
        check_function(func)


def test_validator_catches_stale_edges():
    _, func = compiled_main()
    func.blocks[0].preds.append(func.blocks[0])
    with pytest.raises(AssertionError, match="stale edges"):
        check_function(func)


def test_validator_catches_fall_off_function_end():
    _, func = compiled_main()
    last = func.blocks[-1]
    assert not last.falls_through()
    del last.insns[-1]  # drop the return; the block now falls off the end
    if not last.insns:
        last.insns = func.blocks[0].insns[:1]  # keep the block non-empty
    with pytest.raises(AssertionError, match="falls off"):
        check_function(func)


def test_driver_flags_corrupting_pass(monkeypatch):
    """A pass that leaves stale edges is caught and named immediately."""

    def corrupting_branch_chaining(func):
        func.blocks[0].preds.append(func.blocks[0])
        return False

    monkeypatch.setattr(
        driver_module, "branch_chaining", corrupting_branch_chaining
    )
    program, _ = compiled_main()
    with pytest.raises(AssertionError, match="after pass 'branch_chaining'"):
        optimize_program(
            program, get_target("sparc"), OptimizationConfig(validate_cfg=True)
        )

    # Without the flag the corruption goes unnoticed (compute_flow later
    # repairs the edges) — which is exactly why the flag exists.
    program, _ = compiled_main()
    optimize_program(
        program, get_target("sparc"), OptimizationConfig(validate_cfg=False)
    )
