"""Top-level API and report-formatting tests."""

import pytest

from repro import CompilationResult, compile_and_measure
from repro.report import format_table, mean, pct, stddev


class TestCompileAndMeasure:
    def test_inline_source(self):
        result = compile_and_measure("int main() { return 6 * 7; }")
        assert isinstance(result, CompilationResult)
        assert result.exit_code == 42

    def test_benchmark_by_name_uses_default_workload(self):
        result = compile_and_measure("wc", target="m68020")
        assert result.output.strip() != b""

    def test_stdin_override(self):
        result = compile_and_measure(
            "int main() { return getchar(); }", stdin=b"A"
        )
        assert result.exit_code == ord("A")

    def test_policy_by_string(self):
        result = compile_and_measure(
            "sieve", replication="jumps", policy="returns"
        )
        assert result.measurement.dynamic_jumps == 0

    def test_bad_policy_raises(self):
        with pytest.raises(KeyError):
            compile_and_measure("sieve", policy="fastest")

    def test_trace_requested(self):
        result = compile_and_measure("int main() { return 0; }", trace=True)
        assert result.measurement.trace is not None

    def test_replication_stats_exposed(self):
        result = compile_and_measure("wc", replication="jumps")
        assert result.replication_stats.jumps_replaced > 0


class TestReport:
    def test_pct_formatting(self):
        assert pct(110, 100) == "+10.00%"
        assert pct(95, 100) == "-5.00%"
        assert pct(5, 0) == "   n/a"

    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert stddev([2, 2, 2]) == 0
        assert stddev([5]) == 0
        assert stddev([1, 3]) == pytest.approx(2 ** 0.5)

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly aligned
