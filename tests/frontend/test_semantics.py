"""Execution tests of the compiler front-end (unoptimized code).

Each test compiles a small mini-C program and checks the observable
behaviour (exit code and output) of the raw front-end RTL, establishing
the semantic baseline that optimization must preserve.
"""

import pytest

from tests.conftest import run_c


def exit_of(source, stdin=b""):
    return run_c(source, stdin)[1]


def out_of(source, stdin=b""):
    return run_c(source, stdin)[0]


class TestArithmetic:
    def test_literals_and_operators(self):
        assert exit_of("int main() { return 2 + 3 * 4; }") == 14
        assert exit_of("int main() { return (2 + 3) * 4; }") == 20
        assert exit_of("int main() { return 17 % 5; }") == 2
        assert exit_of("int main() { return 1 << 10; }") == 1024
        assert exit_of("int main() { return 255 >> 4; }") == 15
        assert exit_of("int main() { return 12 & 10; }") == 8
        assert exit_of("int main() { return 12 | 3; }") == 15
        assert exit_of("int main() { return 12 ^ 10; }") == 6

    def test_division_truncates_toward_zero(self):
        assert exit_of("int main() { return 7 / 2; }") == 3
        assert exit_of("int main() { int a; a = -7; return a / 2; }") == -3
        assert exit_of("int main() { int a; a = -7; return a % 2; }") == -1

    def test_unary_operators(self):
        assert exit_of("int main() { int a; a = 5; return -a; }") == -5
        assert exit_of("int main() { return ~0; }") == -1
        assert exit_of("int main() { return !5; }") == 0
        assert exit_of("int main() { return !0; }") == 1

    def test_overflow_wraps_32bit(self):
        assert exit_of(
            "int main() { int a; a = 2147483647; return a + 1 < 0; }"
        ) == 1

    def test_comparisons_as_values(self):
        assert exit_of("int main() { return (3 < 5) + (5 <= 5) + (6 > 7); }") == 2
        assert exit_of("int main() { return (1 == 1) + (1 != 1); }") == 1

    def test_logical_short_circuit(self):
        # The right operand must not run when the left decides.
        source = """
        int hits;
        int bump() { hits++; return 1; }
        int main() {
            hits = 0;
            if (0 && bump()) ;
            if (1 || bump()) ;
            return hits;
        }
        """
        assert exit_of(source) == 0

    def test_ternary(self):
        assert exit_of("int main() { return 1 ? 10 : 20; }") == 10
        assert exit_of("int main() { return 0 ? 10 : 20; }") == 20

    def test_comma_operator(self):
        assert exit_of("int main() { int a; a = (1, 2, 3); return a; }") == 3


class TestVariables:
    def test_globals_initialized(self):
        assert exit_of("int g = 41; int main() { return g + 1; }") == 42

    def test_globals_zeroed_by_default(self):
        assert exit_of("int g; int main() { return g; }") == 0

    def test_locals_and_shadowing(self):
        source = """
        int x = 1;
        int main() {
            int x;
            x = 2;
            {
                int x;
                x = 3;
                if (x != 3) return 1;
            }
            return x;
        }
        """
        assert exit_of(source) == 2

    def test_compound_assignment(self):
        source = """
        int main() {
            int a;
            a = 10;
            a += 5; a -= 3; a *= 2; a /= 4; a %= 4;
            return a;
        }
        """
        assert exit_of(source) == 2

    def test_incdec_semantics(self):
        source = """
        int main() {
            int a, b, c;
            a = 5;
            b = a++;
            c = ++a;
            return b * 100 + c * 10 + a;
        }
        """
        assert exit_of(source) == 577

    def test_char_local_wraps(self):
        source = """
        int main() {
            char c;
            c = 250;
            c += 10;
            return c;
        }
        """
        assert exit_of(source) == 4  # (250 + 10) mod 256


class TestArraysAndPointers:
    def test_local_array(self):
        source = """
        int main() {
            int a[5];
            int i, s;
            for (i = 0; i < 5; i++) a[i] = i * i;
            s = 0;
            for (i = 0; i < 5; i++) s += a[i];
            return s;
        }
        """
        assert exit_of(source) == 30

    def test_two_dimensional_array(self):
        source = """
        int m[3][4];
        int main() {
            int i, j, s;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            s = m[0][0] + m[1][2] + m[2][3];
            return s;
        }
        """
        assert exit_of(source) == 35

    def test_pointer_deref_and_addrof(self):
        source = """
        int main() {
            int x;
            int *p;
            x = 7;
            p = &x;
            *p = *p + 1;
            return x;
        }
        """
        assert exit_of(source) == 8

    def test_pointer_arithmetic_scales(self):
        source = """
        int a[4];
        int main() {
            int *p;
            a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
            p = &a[0];
            p = p + 2;
            return *p + p[1];
        }
        """
        assert exit_of(source) == 70

    def test_pointer_difference(self):
        source = """
        int a[10];
        int main() {
            int *p;
            int *q;
            p = &a[2];
            q = &a[9];
            return q - p;
        }
        """
        assert exit_of(source) == 7

    def test_char_pointer_walk(self):
        source = """
        int main() {
            char *s;
            int n;
            s = "hello";
            n = 0;
            while (*s != 0) {
                n++;
                s++;
            }
            return n;
        }
        """
        assert exit_of(source) == 5

    def test_array_initializer_local(self):
        source = """
        int main() {
            int a[] = {3, 1, 4, 1, 5};
            return a[0] + a[2] + a[4];
        }
        """
        assert exit_of(source) == 12

    def test_char_array_string_init(self):
        source = """
        int main() {
            char buf[8] = "ab";
            return buf[0] + buf[1] + buf[2];
        }
        """
        assert exit_of(source) == 97 + 98

    def test_global_array_initializers(self):
        source = """
        int squares[4] = {0, 1, 4, 9};
        char tag[] = "xy";
        int main() { return squares[3] + tag[1]; }
        """
        assert exit_of(source) == 9 + 121

    def test_string_pointer_global(self):
        source = """
        char *msg = "hi";
        int main() { return msg[0]; }
        """
        assert exit_of(source) == ord("h")


class TestControlFlow:
    def test_while_loop(self):
        assert exit_of(
            "int main() { int i; i = 0; while (i < 10) i++; return i; }"
        ) == 10

    def test_do_while_runs_once(self):
        assert exit_of(
            "int main() { int i; i = 100; do i++; while (i < 5); return i; }"
        ) == 101

    def test_for_zero_iterations(self):
        assert exit_of(
            "int main() { int i, n; n = 0; for (i = 5; i < 5; i++) n++; return n; }"
        ) == 0

    def test_break_and_continue(self):
        source = """
        int main() {
            int i, s;
            s = 0;
            for (i = 0; i < 100; i++) {
                if (i % 2) continue;
                if (i >= 10) break;
                s += i;
            }
            return s;
        }
        """
        assert exit_of(source) == 20  # 0+2+4+6+8

    def test_nested_loop_break_inner_only(self):
        source = """
        int main() {
            int i, j, n;
            n = 0;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 10; j++) {
                    if (j == 2) break;
                    n++;
                }
            return n;
        }
        """
        assert exit_of(source) == 6

    def test_goto(self):
        source = """
        int main() {
            int n;
            n = 0;
        again:
            n++;
            if (n < 5) goto again;
            return n;
        }
        """
        assert exit_of(source) == 5

    def test_switch_dense_uses_all_cases(self):
        source = """
        int classify(int x) {
            switch (x) {
            case 0: return 10;
            case 1: return 11;
            case 2: return 12;
            case 3: return 13;
            case 4: return 14;
            default: return -1;
            }
        }
        int main() {
            return classify(0) + classify(3) + classify(4) + classify(9);
        }
        """
        assert exit_of(source) == 10 + 13 + 14 - 1

    def test_switch_fallthrough(self):
        source = """
        int main() {
            int n, x;
            n = 0;
            x = 1;
            switch (x) {
            case 1: n += 1;
            case 2: n += 10;
                break;
            case 3: n += 100;
            }
            return n;
        }
        """
        assert exit_of(source) == 11

    def test_sparse_switch(self):
        source = """
        int main() {
            int x;
            x = 1000;
            switch (x) {
            case 5: return 1;
            case 1000: return 2;
            case -3: return 3;
            }
            return 4;
        }
        """
        assert exit_of(source) == 2


class TestFunctions:
    def test_arguments_and_return(self):
        source = """
        int add3(int a, int b, int c) { return a + b + c; }
        int main() { return add3(1, 2, 3); }
        """
        assert exit_of(source) == 6

    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
        """
        assert exit_of(source) == 144

    def test_nested_calls_do_not_clobber_args(self):
        source = """
        int sub(int a, int b) { return a - b; }
        int main() { return sub(sub(10, 4), sub(3, 2)); }
        """
        assert exit_of(source) == 5

    def test_mutual_recursion_with_prototype(self):
        source = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert exit_of(source) == 11

    def test_void_function(self):
        source = """
        int counter;
        void bump() { counter += 2; }
        int main() { bump(); bump(); return counter; }
        """
        assert exit_of(source) == 4

    def test_pointer_argument_mutation(self):
        source = """
        void set(int *p, int v) { *p = v; }
        int main() { int x; x = 0; set(&x, 9); return x; }
        """
        assert exit_of(source) == 9

    def test_array_argument(self):
        source = """
        int sum(int *a, int n) {
            int i, s;
            s = 0;
            for (i = 0; i < n; i++) s += a[i];
            return s;
        }
        int data[4] = {1, 2, 3, 4};
        int main() { return sum(data, 4); }
        """
        assert exit_of(source) == 10


class TestRuntime:
    def test_getchar_putchar(self):
        source = """
        int main() {
            int c;
            c = getchar();
            while (c != -1) {
                putchar(c + 1);
                c = getchar();
            }
            return 0;
        }
        """
        assert out_of(source, b"abc") == b"bcd"

    def test_printf_formats(self):
        source = r"""
        int main() {
            printf("%d|%5d|%-5d|%05d|%c|%s|%o|%x|%%\n",
                   42, 42, 42, 42, 'Z', "str", 8, 255);
            return 0;
        }
        """
        assert out_of(source) == b"42|   42|42   |00042|Z|str|10|ff|%\n"

    def test_printf_negative_numbers(self):
        source = r"""
        int main() { printf("%d %5d %05d\n", -7, -7, -7); return 0; }
        """
        assert out_of(source) == b"-7    -7 -0007\n"

    def test_puts(self):
        assert out_of('int main() { puts("line"); return 0; }') == b"line\n"

    def test_string_builtins(self):
        source = """
        char buf[16];
        int main() {
            strcpy(buf, "wxyz");
            return strlen(buf) * 10 + (strcmp(buf, "wxyz") == 0);
        }
        """
        assert exit_of(source) == 41

    def test_malloc(self):
        source = """
        int main() {
            int *p;
            p = malloc(8);
            p[0] = 6;
            p[1] = 7;
            return p[0] * p[1];
        }
        """
        assert exit_of(source) == 42

    def test_atoi_and_abs(self):
        source = """
        int main() { return atoi("-25") + abs(-5) + atoi("17"); }
        """
        assert exit_of(source) == -3

    def test_exit_code(self):
        assert exit_of("int main() { exit(3); return 0; }") == 3

    def test_memset(self):
        source = """
        char buf[8];
        int main() { memset(buf, 7, 8); return buf[0] + buf[7]; }
        """
        assert exit_of(source) == 14
