"""Expression semantics against a Python oracle.

Hypothesis builds random C expressions over fixed variable values; the
compiled-and-interpreted result must equal a direct Python evaluation
using C's 32-bit semantics (wrap-around, truncating division, masked
shifts).  This pins the *language* semantics end to end, independent of
the statement-level differential tests.
"""

from hypothesis import given, settings, strategies as st

from repro.rtl.arith import eval_binop, eval_unop, wrap32
from tests.conftest import run_c

VALUES = {"a": 13, "b": -7, "c": 100, "d": 0, "e": -1}


@st.composite
def c_expressions(draw, depth=0):
    """(source text, oracle value) pairs."""
    if depth >= 4 or draw(st.booleans()):
        choice = draw(st.integers(0, 1))
        if choice == 0:
            value = draw(st.integers(-60, 60))
            return (f"({value})", value)
        name = draw(st.sampled_from(sorted(VALUES)))
        return (name, VALUES[name])
    kind = draw(st.sampled_from(["bin", "un", "cmp", "ternary"]))
    if kind == "un":
        op = draw(st.sampled_from(["-", "~"]))
        text, value = draw(c_expressions(depth=depth + 1))
        return (f"({op}{text})", eval_unop(op, value))
    if kind == "cmp":
        rel = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        lt, lv = draw(c_expressions(depth=depth + 1))
        rt, rv = draw(c_expressions(depth=depth + 1))
        import operator

        ops = {
            "<": operator.lt,
            "<=": operator.le,
            ">": operator.gt,
            ">=": operator.ge,
            "==": operator.eq,
            "!=": operator.ne,
        }
        return (f"({lt} {rel} {rt})", 1 if ops[rel](lv, rv) else 0)
    if kind == "ternary":
        ct, cv = draw(c_expressions(depth=depth + 1))
        tt, tv = draw(c_expressions(depth=depth + 1))
        et, ev = draw(c_expressions(depth=depth + 1))
        return (f"({ct} ? {tt} : {et})", tv if cv != 0 else ev)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"]))
    lt, lv = draw(c_expressions(depth=depth + 1))
    if op in ("/", "%"):
        rv = draw(st.integers(1, 13))
        rt = str(rv)
    elif op in ("<<", ">>"):
        rv = draw(st.integers(0, 8))
        rt = str(rv)
    else:
        rt, rv = draw(c_expressions(depth=depth + 1))
    return (f"({lt} {op} {rt})", eval_binop(op, lv, rv))


class TestExpressionOracle:
    @settings(max_examples=80, deadline=None)
    @given(c_expressions())
    def test_unoptimized_matches_oracle(self, case):
        text, expected = case
        decls = "\n".join(f"    int {n}; {n} = {v};" for n, v in VALUES.items())
        source = (
            "int main() {\n"
            f"{decls}\n"
            f"    return ({text}) & 255;\n"
            "}\n"
        )
        _, code = run_c(source)
        assert code == wrap32(expected) & 255

    @settings(max_examples=25, deadline=None)
    @given(c_expressions())
    def test_optimized_matches_oracle(self, case):
        text, expected = case
        decls = "\n".join(f"    int {n}; {n} = {v};" for n, v in VALUES.items())
        source = (
            "int main() {\n"
            f"{decls}\n"
            f"    return ({text}) & 255;\n"
            "}\n"
        )
        want = wrap32(expected) & 255
        for target in ("m68020", "sparc"):
            _, code = run_c(source, target=target, replication="jumps")
            assert code == want, target
