"""Lexer tests."""

import pytest

from repro.frontend import CompileError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int intx for forx")
        assert [t.kind for t in tokens[:-1]] == ["keyword", "ident", "keyword", "ident"]

    def test_numbers(self):
        tokens = tokenize("0 42 0x1F 017")
        assert [t.value for t in tokens[:-1]] == [0, 42, 31, 15]

    def test_character_literals(self):
        tokens = tokenize(r"'a' '\n' '\0' '\\' '\x41'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0, 92, 65]

    def test_string_literals_with_escapes(self):
        tokens = tokenize(r'"hi\n" "a\tb"')
        assert tokens[0].value == "hi\n"
        assert tokens[1].value == "a\tb"

    def test_operators_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a<b") == ["a", "<", "b"]
        assert texts("i++ +j") == ["i", "++", "+", "j"]
        assert texts("a&&b") == ["a", "&&", "b"]

    def test_comments_stripped(self):
        assert kinds("a /* b */ c // d\n e") == ["ident", "ident", "ident"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]
        assert tokens[2].column == 3

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestLexerErrors:
    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never ends")

    def test_unterminated_char(self):
        with pytest.raises(CompileError):
            tokenize("'a")

    def test_newline_in_string(self):
        with pytest.raises(CompileError):
            tokenize('"ab\ncd"')

    def test_unknown_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")

    def test_bad_escape(self):
        with pytest.raises(CompileError):
            tokenize(r"'\q'")
