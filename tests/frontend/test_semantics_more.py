"""More front-end execution tests: trickier C shapes from the benchmarks."""

from tests.conftest import run_c


def exit_of(source, stdin=b""):
    return run_c(source, stdin)[1]


def out_of(source, stdin=b""):
    return run_c(source, stdin)[0]


class TestExpressionShapes:
    def test_nested_ternary(self):
        source = """
        int classify(int x) { return x < 0 ? -1 : x == 0 ? 0 : 1; }
        int main() { return classify(-5) + 10 * classify(0) + 100 * classify(9); }
        """
        assert exit_of(source) == -1 + 0 + 100

    def test_comparison_inside_arithmetic(self):
        assert exit_of("int main() { int a; a = 7; return (a > 3) * 50 + (a > 10); }") == 50

    def test_comma_in_for(self):
        source = """
        int main() {
            int i, j, s;
            s = 0;
            for (i = 0, j = 10; i < j; i++, j--)
                s++;
            return s;
        }
        """
        assert exit_of(source) == 5

    def test_assignment_value_chains(self):
        assert exit_of("int main() { int a, b, c; a = b = c = 4; return a + b + c; }") == 12

    def test_compound_shift_assignments(self):
        source = """
        int main() {
            int a;
            a = 1;
            a <<= 6;
            a >>= 2;
            a |= 3;
            a &= 30;
            return a;
        }
        """
        assert exit_of(source) == ((1 << 6) >> 2 | 3) & 30

    def test_logical_not_chains(self):
        assert exit_of("int main() { return !!5 + !!0; }") == 1

    def test_deeply_nested_parens(self):
        assert exit_of("int main() { return ((((1 + 2)) * ((3)))); }") == 9


class TestDataStructures:
    def test_array_of_string_pointers(self):
        source = """
        char *names[3];
        int main() {
            names[0] = "zero";
            names[1] = "one";
            names[2] = "two";
            return strlen(names[0]) + strlen(names[1]) * 10;
        }
        """
        assert exit_of(source) == 4 + 30

    def test_global_pointer_array_initializer(self):
        source = """
        char *digits[] = {"zero", "one", "two"};
        int main() { return digits[2][1]; }
        """
        assert exit_of(source) == ord("w")

    def test_2d_char_array(self):
        source = """
        char grid[3][4];
        int main() {
            int r, c;
            for (r = 0; r < 3; r++)
                for (c = 0; c < 4; c++)
                    grid[r][c] = 'a' + r * 4 + c;
            return grid[2][3];
        }
        """
        assert exit_of(source) == ord("a") + 11

    def test_pointer_into_2d_row(self):
        source = """
        int m[2][3];
        int main() {
            int *row;
            m[1][0] = 5;
            m[1][2] = 7;
            row = m[1];
            return row[0] + row[2];
        }
        """
        assert exit_of(source) == 12

    def test_pointer_to_pointer_via_args(self):
        source = """
        void set(int *slot) { *slot = 99; }
        int cells[4];
        int main() {
            set(&cells[2]);
            return cells[2];
        }
        """
        assert exit_of(source) == 99

    def test_string_walk_two_pointers(self):
        source = """
        int same(char *a, char *b) {
            while (*a != 0 && *a == *b) {
                a++;
                b++;
            }
            return *a == *b;
        }
        int main() { return same("abc", "abc") * 10 + same("abc", "abd"); }
        """
        assert exit_of(source) == 10


class TestRecursionShapes:
    def test_two_argument_recursion(self):
        source = """
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { return ack(2, 3); }
        """
        assert exit_of(source) == 9

    def test_recursion_with_locals_and_arrays(self):
        source = """
        int depth_sum(int d) {
            int local[3];
            int i, s;
            for (i = 0; i < 3; i++)
                local[i] = d * 10 + i;
            if (d == 0)
                return local[2];
            s = depth_sum(d - 1);
            return s + local[0];
        }
        int main() { return depth_sum(3); }
        """
        # d=0 -> 2; d=1 adds 10; d=2 adds 20; d=3 adds 30.
        assert exit_of(source) == 62

    def test_recursion_depth_limited_by_memory_not_crash(self):
        source = """
        int down(int n) {
            if (n == 0) return 0;
            return 1 + down(n - 1);
        }
        int main() { return down(200); }
        """
        assert exit_of(source) == 200


class TestIOShapes:
    def test_line_splitting(self):
        source = """
        int main() {
            int c, lines;
            lines = 0;
            c = getchar();
            while (c != -1) {
                if (c == '\\n')
                    lines++;
                c = getchar();
            }
            printf("%d", lines);
            return 0;
        }
        """
        assert out_of(source, b"a\nbb\nccc\n") == b"3"

    def test_printf_interleaves_with_putchar(self):
        source = r"""
        int main() {
            putchar('[');
            printf("%d-%d", 1, 2);
            putchar(']');
            return 0;
        }
        """
        assert out_of(source) == b"[1-2]"


class TestOptimizedConsistency:
    """The same tricky shapes, compiled through the full pipeline."""

    SOURCES = [
        "int main() { int a; a = 5; return a > 3 ? a * 2 : a / 0; }",
        """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { return fib(10); }
        """,
        """
        int main() {
            int i, j, s;
            s = 0;
            for (i = 0; i < 6; i++)
                for (j = i; j < 6; j++)
                    if ((i + j) % 3 == 0)
                        s += i * j;
            return s;
        }
        """,
    ]

    def test_all_configs_agree(self):
        for source in self.SOURCES:
            reference = run_c(source)
            for target in ("m68020", "sparc"):
                for replication in ("none", "loops", "jumps"):
                    assert run_c(source, target=target, replication=replication) == reference
