"""Front-end diagnostic tests: every error path the codegen can take."""

import pytest

from repro.frontend import CompileError, compile_c


def rejects(source, fragment=""):
    with pytest.raises(CompileError) as excinfo:
        compile_c(source)
    if fragment:
        assert fragment in str(excinfo.value)
    return excinfo.value


class TestNameErrors:
    def test_undeclared_variable(self):
        error = rejects("int main() { return nope; }", "undeclared")
        assert error.line == 1

    def test_undeclared_function(self):
        rejects("int main() { return mystery(); }", "undeclared function")

    def test_duplicate_local(self):
        rejects("int main() { int x; int x; return 0; }", "duplicate")

    def test_duplicate_global(self):
        with pytest.raises(Exception):
            compile_c("int g; int g; int main() { return 0; }")

    def test_shadowing_across_scopes_is_fine(self):
        compile_c("int main() { int x; { int x; x = 1; } return 0; }")


class TestTypeErrors:
    def test_assign_to_rvalue(self):
        rejects("int main() { 1 = 2; return 0; }")

    def test_deref_non_pointer(self):
        rejects("int main() { int x; return *x; }", "dereference")

    def test_index_non_pointer(self):
        rejects("int main() { int x; return x[0]; }", "index")

    def test_assign_to_array(self):
        rejects("int a[4]; int b[4]; int main() { a = b; return 0; }")

    def test_wrong_argument_count(self):
        rejects(
            "int f(int a, int b) { return a; } int main() { return f(1); }",
            "arguments",
        )


class TestControlFlowErrors:
    def test_break_outside_loop(self):
        rejects("int main() { break; return 0; }", "break")

    def test_continue_outside_loop(self):
        rejects("int main() { continue; return 0; }", "continue")

    def test_unsized_array_without_initializer(self):
        rejects("int main() { int a[]; return 0; }")

    def test_unsized_global_array(self):
        rejects("int g[]; int main() { return 0; }")

    def test_goto_to_undefined_label_is_caught_at_link(self):
        # The label never appears: block construction must notice.
        with pytest.raises(Exception):
            compile_c("int main() { goto nowhere; return 0; }")


class TestInitializerErrors:
    def test_too_many_array_initializers(self):
        rejects("int a[2] = {1, 2, 3}; int main() { return 0; }", "too many")

    def test_string_too_long(self):
        rejects('char s[2] = "abc"; int main() { return 0; }', "too long")

    def test_non_constant_global_initializer(self):
        rejects("int x; int y = x; int main() { return 0; }", "constant")

    def test_address_negation_rejected(self):
        rejects('int x = -"abc"; int main() { return 0; }')


class TestLineNumbers:
    def test_error_carries_line(self):
        error = rejects(
            "int main() {\n    int a;\n    a = b;\n    return 0;\n}"
        )
        assert error.line == 3
