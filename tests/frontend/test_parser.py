"""Parser tests: AST shapes and error reporting."""

import pytest

from repro.frontend import CompileError, parse
from repro.frontend import ast_nodes as ast
from repro.frontend.types import INT, Type


def parse_main_body(body):
    unit = parse("int main() { %s }" % body)
    return unit.functions[0].body.body


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x; char c;")
        assert [g.name for g in unit.globals] == ["x", "c"]
        assert unit.globals[0].var_type.kind == "int"
        assert unit.globals[1].var_type.kind == "char"

    def test_global_with_initializer(self):
        unit = parse("int x = 42;")
        assert isinstance(unit.globals[0].init, ast.IntLit)

    def test_global_array(self):
        unit = parse("int a[10]; char s[3][7];")
        assert unit.globals[0].var_type.size == 40
        assert unit.globals[1].var_type.size == 21

    def test_array_initializer_list(self):
        unit = parse("int a[3] = {1, 2, 3};")
        assert len(unit.globals[0].init_list) == 3

    def test_array_sized_by_initializer(self):
        unit = parse("int a[] = {1, 2, 3, 4};")
        assert unit.globals[0].var_type.length == -1  # resolved by codegen
        assert len(unit.globals[0].init_list) == 4

    def test_char_array_string_initializer(self):
        unit = parse('char msg[] = "hey";')
        assert unit.globals[0].init_string == "hey"

    def test_pointer_declarations(self):
        unit = parse("int *p; char **q;")
        assert unit.globals[0].var_type.kind == "ptr"
        assert unit.globals[1].var_type.base.kind == "ptr"

    def test_multiple_declarators(self):
        unit = parse("int a, b, c;")
        assert [g.name for g in unit.globals] == ["a", "b", "c"]

    def test_function_with_params(self):
        unit = parse("int f(int a, char *b) { return 0; }")
        func = unit.functions[0]
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.params[1].param_type.kind == "ptr"

    def test_array_param_decays(self):
        unit = parse("int f(int a[10]) { return 0; }")
        assert unit.functions[0].params[0].param_type.kind == "ptr"

    def test_prototype_skipped(self):
        unit = parse("int f(int a);\nint f(int a) { return a; }")
        assert len(unit.functions) == 1


class TestStatements:
    def test_if_else(self):
        (stmt,) = parse_main_body("if (1) ; else ;")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_main_body("if (1) if (2) ; else ;")
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_while_and_do(self):
        body = parse_main_body("while (1) ; do ; while (0);")
        assert isinstance(body[0], ast.While)
        assert isinstance(body[1], ast.DoWhile)

    def test_for_full_and_empty(self):
        body = parse_main_body("for (;;) break; for (i = 0; i < 3; i++) ;")
        assert isinstance(body[0], ast.For)
        assert body[0].cond is None
        assert body[1].step is not None

    def test_goto_and_label(self):
        body = parse_main_body("top: x = 1; goto top;")
        assert isinstance(body[0], ast.Label)
        assert isinstance(body[1], ast.Goto)

    def test_switch_cases(self):
        (stmt,) = parse_main_body(
            "switch (x) { case 1: break; case 'a': break; default: break; }"
        )
        assert isinstance(stmt, ast.Switch)
        assert [c.value for c in stmt.cases] == [1, 97, None]

    def test_return_forms(self):
        body = parse_main_body("return; return 5;")
        assert body[0].value is None
        assert isinstance(body[1].value, ast.IntLit)


class TestExpressions:
    def _expr(self, text):
        (stmt,) = parse_main_body(f"x = {text};")
        return stmt.expr.value

    def test_precedence_arith_over_shift(self):
        expr = self._expr("a << b + c")
        assert isinstance(expr, ast.Binary) and expr.op == "<<"

    def test_precedence_cmp_over_logic(self):
        expr = self._expr("a < b && c > d")
        assert expr.op == "&&"

    def test_ternary(self):
        expr = self._expr("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_assignment_right_associative(self):
        (stmt,) = parse_main_body("a = b = 1;")
        assert isinstance(stmt.expr.value, ast.AssignExpr)

    def test_compound_assignment(self):
        (stmt,) = parse_main_body("a += 2;")
        assert stmt.expr.op == "+="

    def test_unary_chain(self):
        expr = self._expr("-~a")
        assert expr.op == "-" and expr.operand.op == "~"

    def test_pointer_ops(self):
        expr = self._expr("*p + &q")
        assert isinstance(expr.left, ast.Deref)
        assert isinstance(expr.right, ast.AddrOf)

    def test_incdec_prefix_postfix(self):
        pre = self._expr("++a")
        post = self._expr("a++")
        assert pre.prefix and not post.prefix

    def test_call_with_args(self):
        expr = self._expr("f(1, g(2), 3)")
        assert isinstance(expr, ast.CallExpr)
        assert len(expr.args) == 3
        assert isinstance(expr.args[1], ast.CallExpr)

    def test_indexing_nested(self):
        expr = self._expr("m[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_sizeof(self):
        assert self._expr("sizeof(int)").value == 4
        assert self._expr("sizeof(char)").value == 1
        assert self._expr("sizeof(int*)").value == 4

    def test_cast_to_char_masks(self):
        expr = self._expr("(char) x")
        assert isinstance(expr, ast.Binary) and expr.op == "&"


class TestParserErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { if }",
            "int main() { return 1 }",  # missing semicolon
            "int main() { x = ; }",
            "int 3x;",
            "int a[x];",  # non-literal dimension
            "int main() { case 1: ; }",  # statement before case? no: case outside switch
            "int main() { switch (x) { y = 1; } }",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(CompileError):
            parse(source)
