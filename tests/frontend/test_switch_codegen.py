"""Switch lowering: jump tables for dense cases, compare chains otherwise."""

from repro.frontend import compile_c
from repro.rtl import Compare, CondBranch, IndirectJump
from tests.conftest import run_c

DENSE = """
int pick(int x) {
    switch (x) {
    case 0: return 10;
    case 1: return 11;
    case 2: return 12;
    case 3: return 13;
    case 4: return 14;
    case 5: return 15;
    default: return -1;
    }
}
int main() { return pick(%d); }
"""

SPARSE = """
int pick(int x) {
    switch (x) {
    case 1: return 10;
    case 100: return 11;
    case 10000: return 12;
    default: return -1;
    }
}
int main() { return pick(%d); }
"""


def lowering_of(source):
    program = compile_c(source % 0)
    return program.functions["pick"]


class TestLowering:
    def test_dense_switch_uses_jump_table(self):
        func = lowering_of(DENSE)
        assert any(isinstance(i, IndirectJump) for i in func.insns())

    def test_dense_switch_bounds_checked(self):
        func = lowering_of(DENSE)
        # Two guard branches (below/above) precede the indirect jump.
        branches = [i for i in func.insns() if isinstance(i, CondBranch)]
        assert len(branches) >= 2

    def test_sparse_switch_uses_compare_chain(self):
        func = lowering_of(SPARSE)
        assert not any(isinstance(i, IndirectJump) for i in func.insns())
        compares = [i for i in func.insns() if isinstance(i, Compare)]
        assert len(compares) == 3

    def test_dense_semantics_all_values(self):
        for x in (-5, 0, 1, 2, 3, 4, 5, 6, 99):
            expected = 10 + x if 0 <= x <= 5 else -1
            assert run_c(DENSE % x)[1] == expected

    def test_sparse_semantics_all_values(self):
        cases = {1: 10, 100: 11, 10000: 12}
        for x in (-1, 0, 1, 2, 99, 100, 101, 9999, 10000, 10001):
            assert run_c(SPARSE % x)[1] == cases.get(x, -1)

    def test_dense_switch_survives_optimization(self):
        for x in (0, 3, 5, 7):
            reference = run_c(DENSE % x)
            for target in ("m68020", "sparc"):
                for replication in ("none", "jumps"):
                    got = run_c(DENSE % x, target=target, replication=replication)
                    assert got == reference
