"""End-to-end span coverage: the phases the tentpole promises to trace."""

from repro.api import compile_and_measure
from repro.obs import active, observing
from repro.obs.passes import PassTimeline
from repro.opt.instrument import PassInstrumentation

JUMPS_STEPS = {
    "jumps.sweep",
    "jumps.step1.shortest_paths",
    "jumps.step2.select",
    "jumps.step3.complete_loops",
    "jumps.step4_5.apply",
    "jumps.step6.reducibility",
}


class TestSpanCoverage:
    def test_all_phases_traced(self):
        with observing() as obs:
            compile_and_measure("wc", replication="jumps")
        names = {s.name for s in obs.tracer.spans}
        # Front end.
        assert {"frontend.parse", "frontend.codegen"} <= names
        # Optimizer: the function wrapper plus per-pass spans.
        assert "opt.function" in names
        assert "opt.replication" in names
        assert "opt.dead_code" in names
        # All six JUMPS steps.
        assert JUMPS_STEPS <= names
        # EASE measurement.
        assert {"ease.layout", "ease.interp", "ease.account"} <= names

    def test_pass_spans_nest_under_function_span(self):
        with observing() as obs:
            compile_and_measure("wc", replication="jumps")
        by_id = {s.span_id: s for s in obs.tracer.spans}
        for span in obs.tracer.spans:
            if span.name.startswith("opt.") and span.name != "opt.function":
                parent = by_id[span.parent_id]
                assert parent.name == "opt.function"
            if span.name == "jumps.sweep":
                parent = by_id[span.parent_id]
                assert parent.name in ("opt.replication", "opt.replication_final")
            if span.name.startswith("jumps.step"):
                parent = by_id[span.parent_id]
                assert parent.name in ("jumps.sweep", "jumps.step2.select")

    def test_function_span_attrs(self):
        with observing() as obs:
            compile_and_measure("wc", replication="jumps")
        func_spans = [s for s in obs.tracer.spans if s.name == "opt.function"]
        assert func_spans
        for span in func_spans:
            assert "function" in span.attrs
            assert span.attrs["iterations"] >= 1
            assert span.attrs["replication"] == "jumps"

    def test_metrics_recorded(self):
        with observing() as obs:
            compile_and_measure("wc", replication="jumps")
        counters = obs.metrics.counters
        assert counters["opt.pass_invocations"] > 0
        assert counters["ease.runs"] == 1
        assert counters["replication.accepted"] >= 1
        hist = obs.metrics.histograms
        assert "replication.sequence_rtls" in hist
        assert "opt.loop_iterations" in hist

    def test_no_observer_records_nothing(self):
        assert active() is None
        result = compile_and_measure("wc", replication="jumps")
        assert result.replication_stats.jumps_replaced >= 1

    def test_spans_disabled_still_collects_metrics_and_decisions(self):
        with observing(spans=False) as obs:
            compile_and_measure("wc", replication="jumps")
        assert obs.tracer.spans == []
        assert not obs.metrics.is_empty()
        assert len(obs.decisions) >= 1


class TestInstrumentShim:
    def test_shim_is_a_pass_timeline(self):
        inst = PassInstrumentation()
        assert isinstance(inst, PassTimeline)

    def test_shim_from_dicts_returns_shim_type(self):
        inst = PassInstrumentation.from_dicts(
            [
                dict(
                    name="dead_code",
                    seconds=0.1,
                    rtl_delta=-1,
                    jumps_removed=0,
                    changed=True,
                )
            ]
        )
        assert isinstance(inst, PassInstrumentation)
        assert inst.aggregate()["dead_code"]["calls"] == 1

    def test_instrumentation_still_fills_alongside_observer(self):
        from repro.opt.driver import OptimizationConfig, optimize_program
        from repro.frontend.codegen import compile_c
        from repro.targets.machine import get_target
        from repro.benchsuite.programs import PROGRAMS

        program = compile_c(PROGRAMS["wc"].source)
        inst = PassInstrumentation()
        with observing():
            optimize_program(
                program,
                get_target("sparc"),
                OptimizationConfig(replication="jumps"),
                inst,
            )
        assert inst.records
        assert inst.total_seconds > 0
