"""Observer bundle: ambient installation, observing(), JSONL export."""

from repro.obs import Observer, active, deactivate, install, observing
from repro.obs.sink import read_events


class TestAmbient:
    def teardown_method(self):
        deactivate()

    def test_install_active_deactivate(self):
        assert active() is None
        obs = Observer()
        assert install(obs) is obs
        assert active() is obs
        assert deactivate() is obs
        assert active() is None

    def test_observing_installs_and_restores(self):
        outer = install(Observer())
        with observing() as inner:
            assert active() is inner
            assert inner is not outer
        assert active() is outer
        deactivate()

    def test_observing_restores_on_exception(self):
        assert active() is None
        try:
            with observing():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active() is None

    def test_observing_spans_flag(self):
        with observing(spans=False) as obs:
            assert obs.span("x").__class__.__name__ == "_NullSpan"
            assert obs.tracer.spans == []


class TestSnapshotMerge:
    def test_snapshot_merge_round_trip(self):
        worker = Observer()
        with worker.span("work"):
            worker.inc("n", 3)
            worker.observe_value("h", 2)
        worker.decisions.merge_dicts(
            [
                dict(
                    function="f",
                    block="B1",
                    target="L1",
                    mode="jumps",
                    policy="shortest",
                    outcome="accepted",
                )
            ]
        )

        parent = Observer()
        parent.inc("n", 1)
        parent.merge_snapshot(worker.snapshot())
        assert parent.metrics.counters["n"] == 4
        assert [s.name for s in parent.tracer.spans] == ["work"]
        assert len(parent.decisions) == 1

    def test_merge_empty_snapshot_is_noop(self):
        obs = Observer()
        obs.merge_snapshot(None)
        obs.merge_snapshot({})
        assert obs.tracer.spans == []
        assert obs.metrics.is_empty()


class TestJsonl:
    def test_events_cover_all_three_streams(self):
        obs = Observer()
        with obs.span("work"):
            obs.inc("n")
        obs.decisions.merge_dicts(
            [
                dict(
                    function="f",
                    block="B1",
                    target="L1",
                    mode="jumps",
                    policy="shortest",
                    outcome="kept",
                    reason="self_loop",
                )
            ]
        )
        kinds = {e["event"] for e in obs.events()}
        assert kinds == {"span", "metrics", "replication.decision"}

    def test_observing_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with observing(jsonl_path=path, label="unit") as obs:
            with obs.span("work"):
                obs.inc("n")
        events, problems = read_events(path)
        assert problems == []
        meta = events[0]
        assert meta["event"] == "meta" and meta["label"] == "unit"
        assert any(e["event"] == "span" for e in events)
        assert any(e["event"] == "metrics" for e in events)

    def test_observing_writes_jsonl_on_exception(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        try:
            with observing(jsonl_path=path) as obs:
                obs.inc("n")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        events, _ = read_events(path)
        assert any(e["event"] == "metrics" for e in events)
