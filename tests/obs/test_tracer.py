"""Span tracer: nesting, timing, export, merge, pickle safety."""

import pickle

from repro.obs.tracer import NULL_SPAN, Span, Tracer


class TestSpans:
    def test_basic_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert len(tracer.spans) == 1
        assert tracer.spans[0] is span
        assert span.duration >= 0.0
        assert span.parent_id is None

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_attrs_via_constructor_and_set(self):
        tracer = Tracer()
        with tracer.span("work", function="main") as span:
            span.set(changed=True, delta=-3)
        assert span.attrs == {"function": "main", "changed": True, "delta": -3}

    def test_set_on_context_manager_wrapper(self):
        tracer = Tracer()
        cm = tracer.span("work")
        with cm:
            cm.set(k=1)
        assert tracer.spans[0].attrs == {"k": 1}

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer._stack == []
        assert all(s.duration >= 0.0 for s in tracer.spans)

    def test_spans_are_ordered_and_ids_unique(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == 5
        starts = [s.start for s in tracer.spans]
        assert starts == sorted(starts)


class TestDisabled:
    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.spans == []

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(a=1) is NULL_SPAN


class TestExport:
    def test_as_dicts_round_trips_through_pickle_and_merge(self):
        tracer = Tracer()
        with tracer.span("outer", function="f"):
            with tracer.span("inner") as inner:
                inner.set(n=2)
        rows = pickle.loads(pickle.dumps(tracer.as_dicts()))

        parent = Tracer()
        parent.merge_dicts(rows)
        assert [s.name for s in parent.spans] == ["outer", "inner"]
        outer, inner2 = parent.spans
        assert inner2.parent_id == outer.span_id
        assert inner2.attrs == {"n": 2}

    def test_merge_rebases_ids_against_local_spans(self):
        parent = Tracer()
        with parent.span("local"):
            pass
        child = Tracer()
        with child.span("remote"):
            pass
        parent.merge_dicts(child.as_dicts())
        ids = [s.span_id for s in parent.spans]
        assert len(set(ids)) == len(ids)

    def test_merge_attaches_under_open_span(self):
        child = Tracer()
        with child.span("remote.work"):
            pass
        parent = Tracer()
        with parent.span("exec.cell") as cell:
            parent.merge_dicts(child.as_dicts())
        merged = [s for s in parent.spans if s.name == "remote.work"]
        assert merged and merged[0].parent_id == cell.span_id

    def test_merge_empty_is_noop(self):
        tracer = Tracer()
        tracer.merge_dicts(None)
        tracer.merge_dicts([])
        assert tracer.spans == []

    def test_span_as_dict_is_json_safe(self):
        span = Span(name="x", span_id=0, parent_id=None, start=0.0)
        d = span.as_dict()
        assert d["name"] == "x" and d["attrs"] == {}
