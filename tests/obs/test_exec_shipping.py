"""Observability snapshots crossing the parallel execution layer."""

from repro.exec import CellSpec, ParallelRunner, ResultCache, execute_cell
from repro.obs import active, deactivate, observing


class TestExecuteCell:
    def test_result_carries_snapshot(self):
        result = execute_cell(CellSpec(program="wc", replication="jumps"))
        assert result.ok
        assert result.obs is not None
        # Metrics and decisions are always collected; spans only when
        # asked for.
        assert result.obs["spans"] == []
        assert result.obs["metrics"]["counters"]["ease.runs"] == 1
        assert any(
            d["outcome"] == "accepted" for d in result.obs["decisions"]
        )

    def test_observe_flag_collects_spans(self):
        result = execute_cell(
            CellSpec(program="wc", replication="jumps", observe=True)
        )
        names = {s["name"] for s in result.obs["spans"]}
        assert "exec.cell" in names
        assert "opt.function" in names

    def test_ambient_tracer_implies_spans(self):
        with observing():
            result = execute_cell(CellSpec(program="wc"))
        assert any(s["name"] == "exec.cell" for s in result.obs["spans"])

    def test_ambient_observer_restored_and_not_polluted(self):
        with observing() as obs:
            before = len(obs.tracer.spans)
            execute_cell(CellSpec(program="wc"))
            # execute_cell records into its own observer; the ambient one
            # is restored untouched (merging is the runner's job).
            assert active() is obs
            assert len(obs.tracer.spans) == before
        assert active() is None

    def test_failed_cell_still_ships_snapshot(self):
        result = execute_cell(CellSpec(program="int main( {"))
        assert not result.ok
        assert result.obs is not None

    def test_observe_excluded_from_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = CellSpec(program="wc", replication="jumps")
        observed = CellSpec(program="wc", replication="jumps", observe=True)
        assert cache.key(plain) == cache.key(observed)


class TestRunnerMerging:
    def _specs(self):
        return [
            CellSpec(program="wc", replication="jumps"),
            CellSpec(program="queens", replication="jumps"),
        ]

    def test_inline_run_merges_into_ambient(self):
        with observing(spans=False) as obs:
            ParallelRunner(workers=1).run(self._specs())
        assert obs.metrics.counters["ease.runs"] == 2
        assert len(obs.decisions) >= 2

    def test_pool_run_merges_spans_from_workers(self):
        with observing() as obs:
            ParallelRunner(workers=2).run(self._specs())
        cell_spans = [s for s in obs.tracer.spans if s.name == "exec.cell"]
        assert len(cell_spans) == 2
        assert obs.metrics.counters["ease.runs"] == 2

    def test_no_ambient_observer_is_fine(self):
        assert active() is None
        results = ParallelRunner(workers=1).run(self._specs())
        assert all(r.ok for r in results)

    def test_cache_hits_not_double_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = self._specs()
        with observing(spans=False) as obs:
            ParallelRunner(workers=1, cache=cache).run(specs)
            assert obs.metrics.counters["ease.runs"] == 2
            # Second pass: all hits; the cells' stored snapshots must not
            # be merged again.
            ParallelRunner(workers=1, cache=cache).run(specs)
        assert obs.metrics.counters["ease.runs"] == 2
        assert obs.metrics.counters["exec.cache.hits"] == 2

    def test_cache_counters_reach_ambient_observer(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = CellSpec(program="wc")
        with observing(spans=False) as obs:
            ParallelRunner(workers=1, cache=cache).run([spec])
        assert obs.metrics.counters["exec.cache.misses"] == 1
        assert obs.metrics.counters["exec.cache.writes"] == 1


class TestBenchsuiteRunner:
    def test_run_benchmark_merges_fresh_run(self):
        from repro.benchsuite.runner import clear_cache, run_benchmark

        clear_cache()
        try:
            with observing(spans=False) as obs:
                run_benchmark("wc", replication="jumps", use_cache=False)
            assert obs.metrics.counters["ease.runs"] == 1
            assert len(obs.decisions) >= 1
        finally:
            clear_cache()

    def teardown_method(self):
        deactivate()
