"""JSONL sink: writing, tolerant reading, environment activation."""

import io

from repro.obs.sink import (
    TRACE_ENV_VAR,
    TRACE_SCHEMA_VERSION,
    read_events,
    trace_path_from_env,
    write_events,
)


class TestWrite:
    def test_write_to_path_and_read_back(self, tmp_path):
        path = tmp_path / "t.jsonl"
        count = write_events(path, [{"event": "span", "name": "x"}], label="L")
        assert count == 1
        events, problems = read_events(path)
        assert problems == []
        assert events[0] == {
            "event": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "label": "L",
        }
        assert events[1]["name"] == "x"

    def test_write_to_file_object(self):
        buffer = io.StringIO()
        write_events(buffer, [{"event": "metrics", "data": {}}])
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("{") for line in lines)

    def test_one_event_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_events(path, [{"event": "span"}, {"event": "span"}])
        assert len(path.read_text().splitlines()) == 3  # meta + 2


class TestRead:
    def test_malformed_lines_reported_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"event":"meta","schema":1,"label":""}\n'
            "this is not json\n"
            '{"no_event_key":true}\n'
            '{"event":"span","name":"ok"}\n'
            '{"event":"span","name":"trunc'  # truncated final line
        )
        events, problems = read_events(path)
        assert [e["event"] for e in events] == ["meta", "span"]
        assert len(problems) == 3
        assert any("line 2" in p for p in problems)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n\n{"event":"span"}\n\n')
        events, problems = read_events(path)
        assert len(events) == 1 and problems == []


class TestEnv:
    def test_env_var_names_destination(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "/tmp/x.jsonl")
        assert trace_path_from_env() == "/tmp/x.jsonl"

    def test_unset_or_empty_is_none(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert trace_path_from_env() is None
        monkeypatch.setenv(TRACE_ENV_VAR, "")
        assert trace_path_from_env() is None
