"""Metrics registry: counters, gauges, histograms and their merge law."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestInstruments:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 4)
        assert reg.counters["hits"] == 5

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("workers", 4)
        reg.set_gauge("workers", 8)
        assert reg.gauges["workers"] == 8

    def test_histogram_bucket_placement(self):
        reg = MetricsRegistry()
        # Bounds are inclusive upper bounds; the last slot is overflow.
        for value in (1, 2, 3, 300):
            reg.observe("seq", value, buckets=(1, 2, 4))
        hist = reg.histograms["seq"]
        assert hist["buckets"] == [1, 2, 4]
        assert hist["counts"] == [1, 1, 1, 1]
        assert hist["count"] == 4
        assert hist["sum"] == 306

    def test_histogram_default_buckets(self):
        reg = MetricsRegistry()
        reg.observe("seq", 3)
        assert reg.histograms["seq"]["buckets"] == list(DEFAULT_BUCKETS)

    def test_histogram_bounds_fixed_on_first_use(self):
        reg = MetricsRegistry()
        reg.observe("seq", 1, buckets=(1, 2))
        reg.observe("seq", 1, buckets=(10, 20))  # ignored
        assert reg.histograms["seq"]["buckets"] == [1, 2]

    def test_is_empty(self):
        reg = MetricsRegistry()
        assert reg.is_empty()
        reg.inc("x")
        assert not reg.is_empty()


class TestSnapshotAndMerge:
    def test_snapshot_is_independent_copy(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("h", 1, buckets=(1,))
        snap = reg.snapshot()
        snap["counters"]["a"] = 99
        snap["histograms"]["h"]["counts"][0] = 99
        assert reg.counters["a"] == 1
        assert reg.histograms["h"]["counts"][0] == 1

    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for reg in (a, b):
            reg.inc("n", 2)
            reg.observe("h", 3, buckets=(2, 4))
        a.merge_snapshot(b.snapshot())
        assert a.counters["n"] == 4
        assert a.histograms["h"]["counts"] == [0, 2, 0]
        assert a.histograms["h"]["count"] == 2

    def test_merge_gauge_last_wins(self):
        a = MetricsRegistry()
        a.set_gauge("g", 1)
        b = MetricsRegistry()
        b.set_gauge("g", 7)
        a.merge_snapshot(b.snapshot())
        assert a.gauges["g"] == 7

    def test_merge_into_empty_registry(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.inc("n")
        b.observe("h", 1)
        a.merge_snapshot(b.snapshot())
        assert a.snapshot() == b.snapshot()

    def test_merge_is_associative_for_counters_and_histograms(self):
        snaps = []
        for k in range(3):
            reg = MetricsRegistry()
            reg.inc("n", k + 1)
            reg.observe("h", k + 1, buckets=(1, 2))
            snaps.append(reg.snapshot())

        left = MetricsRegistry()
        for snap in snaps:
            left.merge_snapshot(snap)
        right_tail = MetricsRegistry()
        right_tail.merge_snapshot(snaps[1])
        right_tail.merge_snapshot(snaps[2])
        right = MetricsRegistry()
        right.merge_snapshot(snaps[0])
        right.merge_snapshot(right_tail.snapshot())
        assert left.counters == right.counters
        assert left.histograms == right.histograms

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        a.observe("h", 1, buckets=(1, 2))
        b = MetricsRegistry()
        b.observe("h", 1, buckets=(5, 6))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge_snapshot(b.snapshot())

    def test_merge_none_is_noop(self):
        a = MetricsRegistry()
        a.merge_snapshot(None)
        assert a.is_empty()
