"""Terminal renderers for traces: span tree, metrics, decision digest."""

from repro.report import (
    format_decision_digest,
    format_metrics,
    format_span_tree,
    format_trace_digest,
)


def _node(name, calls=1, total=1.0, self_=1.0, children=()):
    return {
        "name": name,
        "calls": calls,
        "total": total,
        "self": self_,
        "children": list(children),
    }


class TestSpanTree:
    def test_indented_tree_with_shares(self):
        tree = [
            _node(
                "root",
                total=2.0,
                self_=1.0,
                children=[_node("child", total=1.0)],
            )
        ]
        text = format_span_tree(tree)
        lines = text.splitlines()
        assert "root" in lines[2]
        assert "  child" in lines[3]
        assert "100.0%" in lines[2]
        assert "50.0%" in lines[3]

    def test_depth_limit(self):
        deep = _node("d3")
        for name in ("d2", "d1", "d0"):
            deep = _node(name, children=[deep])
        text = format_span_tree([deep], max_depth=2)
        assert "d1" in text and "d2" not in text

    def test_zero_total_does_not_divide_by_zero(self):
        text = format_span_tree([_node("idle", total=0.0, self_=0.0)])
        assert "idle" in text


class TestMetrics:
    def test_counters_gauges_histograms_rendered(self):
        snap = {
            "counters": {"ease.runs": 3},
            "gauges": {"workers": 4},
            "histograms": {
                "seq": {"buckets": [1, 2], "counts": [1, 0, 2], "sum": 9, "count": 3}
            },
        }
        text = format_metrics(snap)
        assert "ease.runs" in text and "3" in text
        assert "workers" in text
        assert "<=1:1" in text and ">2:2" in text

    def test_empty_snapshot(self):
        assert "no metrics" in format_metrics({})


class TestDecisionDigestRender:
    def test_summary_lines(self):
        digest = {
            "total": 3,
            "outcomes": {"accepted": 2, "rejected": 1},
            "reasons": {"max_rtls": 1},
            "sequence_kinds": {"fallthrough": 2},
            "policies": {"shortest": {"accepted": 2, "rejected": 1}},
            "functions": [
                {
                    "function": "main",
                    "decisions": 3,
                    "accepted": 2,
                    "rtls": 7,
                    "rollbacks": 0,
                }
            ],
            "rtls_replicated": 7,
            "blocks_copied": 2,
        }
        text = format_decision_digest(digest)
        assert "3 candidate jumps considered" in text
        assert "2 accepted" in text
        assert "max_rtls=1" in text
        assert "main" in text

    def test_empty_digest(self):
        assert "no replication decisions" in format_decision_digest({"total": 0})


class TestFullDigest:
    def test_renders_all_sections_from_events(self):
        events = [
            {"event": "meta", "schema": 1, "label": "unit"},
            {
                "event": "span",
                "name": "work",
                "span_id": 0,
                "parent_id": None,
                "start": 0.0,
                "duration": 1.0,
            },
            {"event": "metrics", "data": {"counters": {"n": 1}}},
            {
                "event": "replication.decision",
                "function": "f",
                "outcome": "accepted",
                "policy": "shortest",
                "sequence_rtls": 3,
                "copies": ["L1"],
            },
        ]
        text = format_trace_digest(events)
        assert "trace: unit" in text
        assert "work" in text
        assert "1 candidate jumps considered" in text

    def test_spanless_trace(self):
        events = [{"event": "metrics", "data": {"counters": {"n": 1}}}]
        text = format_trace_digest(events)
        assert "no spans recorded" in text
