"""CLI observability: --trace, REPRO_TRACE, `repro trace`, bench --json."""

import json

from repro.cli import main
from repro.obs.sink import TRACE_ENV_VAR, read_events


def _decision_events(path):
    events, problems = read_events(path)
    assert problems == []
    return [e for e in events if e["event"] == "replication.decision"]


class TestTraceFlag:
    def test_measure_trace_emits_jsonl(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["measure", "wc", "--replication", "jumps", "--trace", str(out)]
        )
        assert code == 0
        events, problems = read_events(out)
        assert problems == []
        kinds = {e["event"] for e in events}
        assert kinds == {"meta", "span", "metrics", "replication.decision"}
        # Nested spans per pass: pass spans must carry a parent.
        spans = [e for e in events if e["event"] == "span"]
        pass_spans = [
            s for s in spans if s["name"].startswith("opt.") and s["name"] != "opt.function"
        ]
        assert pass_spans and all(s["parent_id"] is not None for s in pass_spans)
        assert _decision_events(out)

    def test_trace_flag_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["measure", "wc", "--replication", "jumps", "--trace", str(out)])
        err = capsys.readouterr().err
        assert "observability summary" in err
        assert "wrote trace" in err
        assert "candidate jumps considered" in err

    def test_env_var_activates_tracing(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "env.jsonl"
        monkeypatch.setenv(TRACE_ENV_VAR, str(out))
        assert main(["measure", "wc", "--replication", "jumps"]) == 0
        assert _decision_events(out)

    def test_explicit_flag_beats_env(self, tmp_path, monkeypatch, capsys):
        env_path = tmp_path / "env.jsonl"
        flag_path = tmp_path / "flag.jsonl"
        monkeypatch.setenv(TRACE_ENV_VAR, str(env_path))
        main(["measure", "wc", "--trace", str(flag_path)])
        assert flag_path.exists()
        assert not env_path.exists()

    def test_env_var_does_not_trace_the_trace_command(
        self, tmp_path, monkeypatch, capsys
    ):
        out = tmp_path / "t.jsonl"
        main(["measure", "wc", "--replication", "jumps", "--trace", str(out)])
        capsys.readouterr()
        before = out.read_text()
        # Rendering the digest with REPRO_TRACE pointing at the same file
        # must not clobber it.
        monkeypatch.setenv(TRACE_ENV_VAR, str(out))
        assert main(["trace", str(out)]) == 0
        assert out.read_text() == before

    def test_dot_trace_annotates_replicated_blocks(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert (
            main(["dot", "wc", "--replication", "jumps", "--trace", str(out)])
            == 0
        )
        assert "lightblue" in capsys.readouterr().out


class TestTraceCommand:
    def test_renders_digest(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["measure", "wc", "--replication", "jumps", "--trace", str(out)])
        capsys.readouterr()
        assert main(["trace", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "Span breakdown" in rendered
        assert "opt.function" in rendered
        assert "jumps.sweep" in rendered
        assert "Replication decision log" in rendered
        assert "candidate jumps considered" in rendered
        assert "Metrics" in rendered

    def test_missing_file_errors(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace file" in capsys.readouterr().err

    def test_empty_file_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 1

    def test_truncated_file_still_renders(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["measure", "wc", "--replication", "jumps", "--trace", str(out)])
        capsys.readouterr()
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[: len(lines) // 2]) + '\n{"trunc')
        assert main(["trace", str(out)]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err


class TestBenchJson:
    def test_json_payload_has_passes_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--programs",
                "wc",
                "--targets",
                "sparc",
                "--configs",
                "jumps",
                "--no-cache",
                "--parallel",
                "1",
                "--quiet",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert "passes" in payload
        assert payload["passes"], "fresh cells must aggregate pass records"
        sample = next(iter(payload["passes"].values()))
        assert {"calls", "changed", "seconds", "rtl_delta", "jumps_removed"} == set(
            sample
        )
        assert "metrics" in payload
        assert payload["metrics"]["counters"]["ease.runs"] == 1
        assert payload["metrics"]["counters"]["replication.accepted"] >= 1
