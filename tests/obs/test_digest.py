"""Digest aggregation: span trees and decision summaries."""

from repro.obs.digest import aggregate_spans, decision_digest, split_events


def _span(name, span_id, parent_id=None, duration=1.0):
    return {
        "event": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start": 0.0,
        "duration": duration,
    }


class TestSplit:
    def test_split_partitions_and_merges_metrics(self):
        events = [
            {"event": "meta", "schema": 1},
            _span("a", 0),
            {"event": "replication.decision", "outcome": "accepted"},
            {"event": "metrics", "data": {"counters": {"n": 1}}},
            {"event": "metrics", "data": {"counters": {"n": 2}}},
        ]
        spans, decisions, metrics = split_events(events)
        assert len(spans) == 1
        assert len(decisions) == 1
        assert metrics["counters"]["n"] == 3


class TestAggregateSpans:
    def test_same_name_same_parent_folds_into_one_node(self):
        spans = [
            _span("root", 0, duration=10.0),
            _span("child", 1, parent_id=0, duration=2.0),
            _span("child", 2, parent_id=0, duration=3.0),
        ]
        (root,) = aggregate_spans(spans)
        assert root["calls"] == 1 and root["total"] == 10.0
        (child,) = root["children"]
        assert child["calls"] == 2 and child["total"] == 5.0
        assert root["self"] == 5.0

    def test_same_name_under_different_parents_stays_separate(self):
        spans = [
            _span("a", 0, duration=1.0),
            _span("b", 1, duration=1.0),
            _span("shared", 2, parent_id=0, duration=0.5),
            _span("shared", 3, parent_id=1, duration=0.25),
        ]
        roots = aggregate_spans(spans)
        assert len(roots) == 2
        shared_totals = sorted(r["children"][0]["total"] for r in roots)
        assert shared_totals == [0.25, 0.5]

    def test_roots_and_children_sorted_heaviest_first(self):
        spans = [
            _span("light", 0, duration=1.0),
            _span("heavy", 1, duration=9.0),
            _span("c1", 2, parent_id=1, duration=1.0),
            _span("c2", 3, parent_id=1, duration=4.0),
        ]
        roots = aggregate_spans(spans)
        assert [r["name"] for r in roots] == ["heavy", "light"]
        assert [c["name"] for c in roots[0]["children"]] == ["c2", "c1"]

    def test_multi_root_repeats_fold_together(self):
        # Two separate cells produce the same root name (e.g. exec.cell
        # merged from two workers): they share one aggregate node.
        spans = [
            _span("cell", 0, duration=1.0),
            _span("cell", 1, duration=2.0),
        ]
        (root,) = aggregate_spans(spans)
        assert root["calls"] == 2 and root["total"] == 3.0

    def test_self_never_negative(self):
        # Children can overlap/outlast the parent by clock jitter.
        spans = [
            _span("root", 0, duration=1.0),
            _span("child", 1, parent_id=0, duration=2.0),
        ]
        (root,) = aggregate_spans(spans)
        assert root["self"] == 0.0

    def test_empty_input(self):
        assert aggregate_spans([]) == []


def _decision(**overrides):
    base = {
        "event": "replication.decision",
        "function": "f",
        "block": "B1",
        "target": "L1",
        "mode": "jumps",
        "policy": "shortest",
        "outcome": "accepted",
        "reason": "",
        "sequence_kind": "fallthrough",
        "sequence_blocks": 1,
        "sequence_rtls": 3,
        "attempts": 1,
        "rollbacks": 0,
        "copies": ["L1000"],
    }
    base.update(overrides)
    return base


class TestDecisionDigest:
    def test_empty(self):
        digest = decision_digest([])
        assert digest["total"] == 0
        assert digest["functions"] == []

    def test_outcomes_reasons_and_bill(self):
        decisions = [
            _decision(),
            _decision(function="g", sequence_rtls=5, copies=["L1", "L2"]),
            _decision(outcome="rejected", reason="max_rtls", copies=[]),
            _decision(outcome="kept", reason="self_loop", copies=[]),
        ]
        digest = decision_digest(decisions)
        assert digest["total"] == 4
        assert digest["outcomes"] == {"accepted": 2, "rejected": 1, "kept": 1}
        assert digest["reasons"] == {"max_rtls": 1, "self_loop": 1}
        assert digest["rtls_replicated"] == 8
        assert digest["blocks_copied"] == 3

    def test_functions_ranked_by_rtls(self):
        decisions = [
            _decision(function="small", sequence_rtls=1),
            _decision(function="big", sequence_rtls=9),
        ]
        digest = decision_digest(decisions)
        assert [row["function"] for row in digest["functions"]] == ["small", "big"][
            ::-1
        ]

    def test_per_policy_outcomes(self):
        decisions = [
            _decision(policy="shortest"),
            _decision(policy="returns", outcome="rejected", reason="max_rtls"),
        ]
        digest = decision_digest(decisions)
        assert digest["policies"]["shortest"] == {"accepted": 1}
        assert digest["policies"]["returns"] == {"rejected": 1}

    def test_rollbacks_counted_per_function(self):
        decisions = [_decision(rollbacks=2), _decision(rollbacks=1)]
        digest = decision_digest(decisions)
        assert digest["functions"][0]["rollbacks"] == 3
