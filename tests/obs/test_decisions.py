"""Replication decision log — unit behavior and real-run coverage."""

from repro.api import compile_and_measure
from repro.obs import observing
from repro.obs.decisions import DecisionLog, ReplicationDecision

VALID_OUTCOMES = {"accepted", "redundant", "rejected", "kept"}
VALID_REASONS = {
    "",
    "irreducible",
    "max_rtls",
    "loop_completion",
    "inadmissible",
    "no_candidates",
    "filtered",
    "self_loop",
    "unresolved_target",
    "stale_target",
}


def _decision(**overrides) -> ReplicationDecision:
    base = dict(
        function="f",
        block="B1",
        target="L1",
        mode="jumps",
        policy="shortest",
        outcome="accepted",
    )
    base.update(overrides)
    return ReplicationDecision(**base)


class TestLog:
    def test_record_and_export(self):
        log = DecisionLog()
        log.record(_decision(copies=["L1000"]))
        assert len(log) == 1
        (row,) = log.as_dicts()
        assert row["outcome"] == "accepted"
        assert row["copies"] == ["L1000"]

    def test_disabled_log_drops_everything(self):
        log = DecisionLog(enabled=False)
        log.record(_decision())
        assert len(log) == 0

    def test_merge_dicts_round_trip(self):
        source = DecisionLog()
        source.record(_decision(function="g", outcome="rejected", reason="max_rtls"))
        sink = DecisionLog()
        sink.merge_dicts(source.as_dicts())
        assert len(sink) == 1
        assert sink.decisions[0].reason == "max_rtls"

    def test_replicated_labels_filters_by_function(self):
        log = DecisionLog()
        log.record(_decision(function="f", copies=["L1", "L2"]))
        log.record(_decision(function="g", copies=["L3"]))
        log.record(_decision(function="f", outcome="rejected"))
        assert log.replicated_labels() == {"L1", "L2", "L3"}
        assert log.replicated_labels("f") == {"L1", "L2"}
        assert log.replicated_labels("g") == {"L3"}


class TestRealRuns:
    """Decisions recorded by actually running the replication engine."""

    def _decisions(self, name: str, replication: str = "jumps", **kwargs):
        with observing(spans=False) as obs:
            result = compile_and_measure(name, replication=replication, **kwargs)
        return obs.decisions.decisions, result

    def test_one_event_per_candidate_with_valid_fields(self):
        decisions, result = self._decisions("wc")
        assert decisions, "wc must present at least one candidate jump"
        for d in decisions:
            assert d.outcome in VALID_OUTCOMES
            assert d.reason in VALID_REASONS
            assert d.mode == "jumps"
            assert d.policy == "shortest"
            assert d.function and d.block and d.target

    def test_accepted_decisions_carry_the_replication_bill(self):
        decisions, result = self._decisions("wc")
        accepted = [d for d in decisions if d.outcome == "accepted"]
        stats = result.replication_stats
        assert len(accepted) == stats.jumps_replaced
        assert sum(d.sequence_rtls for d in accepted) == stats.rtls_replicated
        for d in accepted:
            assert d.copies, "an accepted replication creates replica blocks"
            assert d.sequence_blocks >= 1
            assert d.sequence_kind in ("fallthrough", "returns")

    def test_rejection_has_a_reason(self):
        # A tight RTL bound forces rejections with reason max_rtls.
        decisions, _ = self._decisions("wc", max_rtls=0)
        rejected = [d for d in decisions if d.outcome == "rejected"]
        assert rejected, "max_rtls=0 must reject every candidate"
        assert all(d.reason for d in rejected)
        assert any(d.reason == "max_rtls" for d in rejected)

    def test_rollbacks_match_stats(self):
        decisions, result = self._decisions("deroff")
        assert sum(d.rollbacks for d in decisions) == result.replication_stats.rollbacks

    def test_loops_mode_is_tagged(self):
        decisions, _ = self._decisions("wc", replication="loops")
        assert decisions
        assert all(d.mode == "loops" for d in decisions)
