"""CLI tests (in-process, via repro.cli.main)."""

import pytest

from repro.cli import main


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        """
        int main() {
            int i, s;
            s = 0;
            for (i = 0; i < 10; i++) s += i;
            printf("%d\\n", s);
            return s;
        }
        """
    )
    return path


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("wc", "sieve", "mincost"):
            assert name in out

    def test_run_exit_code_and_output(self, c_file, capsys):
        code = main(["run", str(c_file)])
        assert code == 45
        assert capsys.readouterr().out == "45\n"

    def test_run_benchmark_by_name(self, capsys):
        assert main(["run", "queens"]) == 0
        assert "92 solutions" in capsys.readouterr().out

    def test_compile_prints_rtl(self, c_file, capsys):
        assert main(["compile", str(c_file), "--replication", "jumps"]) == 0
        out = capsys.readouterr().out
        assert "function main" in out
        assert "PC=RT;" in out
        assert "PC=NZ" in out  # conditional branches survived

    def test_measure_fields(self, c_file, capsys):
        assert main(["measure", str(c_file), "--target", "m68020"]) == 0
        out = capsys.readouterr().out
        assert "dynamic instructions" in out
        assert "exit code" in out

    def test_compare_consistent_outputs(self, c_file, capsys):
        assert main(["compare", str(c_file)]) == 0
        out = capsys.readouterr().out
        assert "SIMPLE" in out and "LOOPS" in out and "JUMPS" in out

    def test_cache_sweep(self, c_file, capsys):
        assert main(["cache", str(c_file), "--sizes", "128", "1024"]) == 0
        out = capsys.readouterr().out
        assert "128B" in out and "1KB" in out

    def test_stdin_file(self, tmp_path, capsys):
        prog = tmp_path / "echo.c"
        prog.write_text(
            "int main() { int c; c = getchar();"
            " while (c != -1) { putchar(c); c = getchar(); } return 0; }"
        )
        data = tmp_path / "input.txt"
        data.write_bytes(b"hello")
        assert main(["run", str(prog), "--stdin", str(data)]) == 0
        assert capsys.readouterr().out == "hello"

    def test_missing_program_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "/nonexistent/file.c"])

    def test_policy_and_maxlen_flags(self, c_file):
        assert (
            main(
                [
                    "measure",
                    str(c_file),
                    "--replication",
                    "jumps",
                    "--policy",
                    "returns",
                    "--max-rtls",
                    "8",
                ]
            )
            == 0
        )


class TestEaseEngineFlag:
    def _bench_json(self, tmp_path, *extra):
        import json

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--no-cache",
                "--parallel",
                "1",
                "--quiet",
                "--programs",
                "wc",
                "--configs",
                "none",
                "--json",
                str(out),
                *extra,
            ]
        )
        assert code == 0
        return json.loads(out.read_text())

    def test_bench_json_reports_default_engine(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_EASE_ENGINE", raising=False)
        data = self._bench_json(tmp_path)
        assert data["ease_engine"] == "compiled"
        assert data["cells"]
        for cell in data["cells"]:
            assert cell["ease_engine"] == "compiled"

    def test_bench_json_reports_selected_engine(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_EASE_ENGINE", raising=False)
        data = self._bench_json(tmp_path, "--ease-engine", "interp")
        assert data["ease_engine"] == "interp"
        for cell in data["cells"]:
            assert cell["ease_engine"] == "interp"

    def test_measure_accepts_engine_flag(self, c_file, capsys):
        for engine in ("compiled", "interp"):
            assert main(["measure", str(c_file), "--ease-engine", engine]) == 0
            assert "dynamic instructions" in capsys.readouterr().out


class TestDotCommand:
    def test_dot_output(self, capsys):
        assert main(["dot", "queens", "--function", "place"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "place"')
        assert "->" in out


class TestStatsCommand:
    def test_stats_output(self, capsys):
        assert main(["stats", "wc", "--replication", "jumps"]) == 0
        out = capsys.readouterr().out
        assert "Instruction mix" in out
        assert "Per function" in out
        assert "Natural loops" in out
        # JUMPS leaves no unconditional jumps in wc.
        assert "Surviving unconditional jumps" not in out

    def test_stats_reports_survivors(self, capsys):
        assert main(["stats", "wc", "--replication", "none"]) == 0
        out = capsys.readouterr().out
        assert "Surviving unconditional jumps" in out
