"""Direct-mapped cache simulator tests, including hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CacheConfig, CacheResult, simulate_cache


def run(addresses, size=64, line=16, ctx=False, interval=10_000):
    """Replay a flat address list as one block repeated once."""
    config = CacheConfig(size=size, line_size=line, context_switch_interval=interval)
    return simulate_cache([0], {0: list(addresses)}, config, context_switches=ctx)


class TestBasics:
    def test_cold_miss_then_hit(self):
        result = run([0, 0, 4, 12])
        # All four accesses fall in line 0: one cold miss, three hits.
        assert result.accesses == 4
        assert result.misses == 1
        assert result.fetch_cost == 1 * 10 + 3 * 1

    def test_distinct_lines_all_miss(self):
        result = run([0, 16, 32, 48])
        assert result.misses == 4

    def test_conflict_misses(self):
        # A 64-byte cache has 4 lines; addresses 0 and 64 map to line 0.
        result = run([0, 64, 0, 64])
        assert result.misses == 4

    def test_no_conflict_in_bigger_cache(self):
        result = run([0, 64, 0, 64], size=128)
        assert result.misses == 2

    def test_miss_ratio(self):
        result = run([0, 0, 0, 64])
        assert result.miss_ratio == pytest.approx(2 / 4)

    def test_multi_block_trace(self):
        config = CacheConfig(size=64)
        fetches = {0: [0, 4], 1: [16]}
        result = simulate_cache([0, 1, 0], fetches, config)
        assert result.accesses == 5
        assert result.misses == 2  # lines 0 and 1 once each

    def test_empty_trace(self):
        result = simulate_cache([], {}, CacheConfig(size=64))
        assert result.accesses == 0
        assert result.miss_ratio == 0.0


class TestContextSwitches:
    def test_flush_causes_rereferences_to_miss(self):
        # With an interval of 10 units, a cost of 10 triggers a flush.
        warm = run([0] * 30, ctx=False, interval=10)
        cold = run([0] * 30, ctx=True, interval=10)
        assert cold.misses > warm.misses
        assert cold.flushes > 0

    def test_interval_counts_cost_not_accesses(self):
        result = run([0, 16, 32, 48] * 10, ctx=True, interval=10)
        # Every miss costs 10 -> a flush roughly every miss.
        assert result.flushes >= result.misses // 2

    def test_no_flushes_without_context_switching(self):
        result = run([0] * 1000, ctx=False, interval=10)
        assert result.flushes == 0


class TestConfigValidation:
    def test_bad_line_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(size=100)

    def test_line_count_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(size=48, line_size=16)

    def test_paper_configuration_defaults(self):
        config = CacheConfig()
        assert config.line_size == 16
        assert config.miss_penalty == 10
        assert config.context_switch_interval == 10_000


@st.composite
def traces(draw):
    n_blocks = draw(st.integers(1, 5))
    fetches = {
        i: draw(
            st.lists(
                st.integers(0, 1 << 12).map(lambda a: a * 2), min_size=1, max_size=8
            )
        )
        for i in range(n_blocks)
    }
    trace = draw(st.lists(st.integers(0, n_blocks - 1), max_size=40))
    return trace, fetches


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(traces(), st.sampled_from([64, 128, 1024]))
    def test_cost_identity(self, data, size):
        trace, fetches = data
        result = simulate_cache(trace, fetches, CacheConfig(size=size))
        assert result.fetch_cost == result.hits * 1 + result.misses * 10
        assert result.accesses == sum(len(fetches[b]) for b in trace)
        assert 0 <= result.misses <= result.accesses

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_bigger_cache_never_misses_more(self, data):
        trace, fetches = data
        small = simulate_cache(trace, fetches, CacheConfig(size=64))
        # Direct-mapped caches don't obey inclusion in general, but doubling
        # the size while keeping the line size halves index pressure; for a
        # direct-mapped cache this CAN increase misses in adversarial cases,
        # so compare against a fully-covering cache instead.
        huge = simulate_cache(trace, fetches, CacheConfig(size=1 << 16))
        assert huge.misses <= small.misses

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_fully_covering_cache_only_cold_misses(self, data):
        trace, fetches = data
        result = simulate_cache(trace, fetches, CacheConfig(size=1 << 16))
        distinct_lines = {
            addr >> 4 for block in trace for addr in fetches[block]
        }
        assert result.misses == len(distinct_lines)

    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_context_switching_never_reduces_misses(self, data):
        trace, fetches = data
        config = CacheConfig(size=128, context_switch_interval=50)
        plain = simulate_cache(trace, fetches, config, context_switches=False)
        flushed = simulate_cache(trace, fetches, config, context_switches=True)
        assert flushed.misses >= plain.misses
