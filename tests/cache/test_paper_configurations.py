"""Tests for the Table-6 convenience sweep."""

from repro.cache import (
    PAPER_CACHE_SIZES,
    CacheConfig,
    simulate_cache,
)
from repro.cache.direct_mapped import simulate_paper_configurations


class TestPaperConfigurations:
    def test_all_four_sizes(self):
        trace = [0] * 5
        fetches = {0: [0, 16, 32, 48]}
        results = simulate_paper_configurations(trace, fetches)
        assert set(results) == set(PAPER_CACHE_SIZES)

    def test_matches_individual_runs(self):
        trace = [0, 0, 0]
        fetches = {0: [0, 1024, 2048, 16]}
        sweep = simulate_paper_configurations(trace, fetches)
        for size in PAPER_CACHE_SIZES:
            single = simulate_cache(trace, fetches, CacheConfig(size=size))
            assert sweep[size].misses == single.misses
            assert sweep[size].fetch_cost == single.fetch_cost

    def test_context_switch_variant(self):
        trace = [0] * 2000
        fetches = {0: [0, 16]}
        plain = simulate_paper_configurations(trace, fetches, False)
        flushed = simulate_paper_configurations(trace, fetches, True)
        for size in PAPER_CACHE_SIZES:
            assert flushed[size].misses >= plain[size].misses
