"""Hash-seed determinism of the multi-configuration cache engine.

``simulate_multi_cache`` used to build its per-line-size flattening with
``for shift in set(shifts)``, whose iteration order depends on
``PYTHONHASHSEED``.  The plan construction must be first-seen ordered
(``dict.fromkeys``) so two runs of the same simulation — in different
processes, under randomized hashing — produce bit-identical results in
identical internal order.
"""

import subprocess
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[2] / "src")

# Mixed line sizes on purpose: 16- and 32-byte lines give two distinct
# shifts, interleaved, so the de-duplicated iteration order is exercised.
_SCRIPT = """
from repro.cache import CacheConfig, simulate_multi_cache

trace = ([0, 1, 2, 1] * 50 + [3, 4]) * 3
fetches = {i: [i * 64 + j * 4 for j in range(5)] for i in range(5)}
configs = [
    CacheConfig(size=256, line_size=16),
    CacheConfig(size=256, line_size=32),
    CacheConfig(size=1024, line_size=16),
    CacheConfig(size=1024, line_size=32),
]
for ctx in (False, True):
    for r in simulate_multi_cache(trace, fetches, configs, context_switches=ctx):
        print(r.accesses, r.misses, r.fetch_cost, r.flushes)
"""


def _run(hashseed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": _SRC, "PYTHONHASHSEED": hashseed},
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_results_identical_across_hash_seeds():
    baseline = _run("0")
    assert baseline.strip()
    for seed in ("1", "42", "random"):
        assert _run(seed) == baseline, f"PYTHONHASHSEED={seed} diverged"
