"""Engine parity: the single-pass multi-configuration cache engine must
return byte-identical ``CacheResult``s to the per-size reference replay,
for all four paper cache sizes and both context-switch settings — the
differential oracle that gates the fast-forward optimization.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite.programs import PROGRAMS
from repro.cache import (
    PAPER_CACHE_SIZES,
    CacheConfig,
    MultiCacheStats,
    resolve_cachesim_engine,
    simulate_cache,
    simulate_multi_cache,
    simulate_paper_configurations,
)
from repro.ease import measure_program
from repro.ease.trace import RleTraceSink
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

PAPER_CONFIGS = [CacheConfig(size=size) for size in PAPER_CACHE_SIZES]


def assert_parity(trace, fetches, configs, ctx, interval=10_000):
    multi = simulate_multi_cache(
        trace, fetches, configs, context_switches=ctx
    )
    for config, got in zip(configs, multi):
        want = simulate_cache(trace, fetches, config, context_switches=ctx)
        assert got.accesses == want.accesses, config
        assert got.misses == want.misses, config
        assert got.fetch_cost == want.fetch_cost, config
        assert got.flushes == want.flushes, config


@st.composite
def traces(draw):
    """A block trace with loop structure (so fast-forwarding triggers)."""
    n_blocks = draw(st.integers(1, 6))
    fetches = {
        i: draw(
            st.lists(
                st.integers(0, 1 << 11).map(lambda a: a * 4),
                min_size=0,
                max_size=6,
            )
        )
        for i in range(n_blocks)
    }
    blocks = st.integers(0, n_blocks - 1)
    pieces = draw(
        st.lists(
            st.one_of(
                st.lists(blocks, max_size=8),  # literal stretch
                st.tuples(  # repeated loop body
                    st.lists(blocks, min_size=1, max_size=4),
                    st.integers(2, 400),
                ).map(lambda t: t[0] * t[1]),
            ),
            max_size=6,
        )
    )
    trace = [b for piece in pieces for b in piece]
    return trace, fetches


class TestFuzzedTraces:
    @settings(max_examples=120, deadline=None)
    @given(traces(), st.booleans())
    def test_paper_sizes_parity(self, data, ctx):
        trace, fetches = data
        assert_parity(trace, fetches, PAPER_CONFIGS, ctx)

    @settings(max_examples=80, deadline=None)
    @given(traces(), st.booleans())
    def test_tiny_caches_parity(self, data, ctx):
        # Tiny caches + a short flush interval stress conflict misses and
        # the fast-forward/flush boundary far harder than the paper sizes.
        trace, fetches = data
        configs = [
            CacheConfig(size=64, context_switch_interval=50),
            CacheConfig(size=128, context_switch_interval=50),
            CacheConfig(size=1024, context_switch_interval=50),
        ]
        assert_parity(trace, fetches, configs, ctx)

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_mixed_context_flags_parity(self, data):
        # One walk can mix with/without-context-switch states (the full
        # Table-6 grid as 8 states); each must match its own reference.
        trace, fetches = data
        configs = PAPER_CONFIGS * 2
        flags = [False] * len(PAPER_CONFIGS) + [True] * len(PAPER_CONFIGS)
        multi = simulate_multi_cache(trace, fetches, configs, flags)
        for config, ctx, got in zip(configs, flags, multi):
            want = simulate_cache(trace, fetches, config, context_switches=ctx)
            assert (got.accesses, got.misses, got.fetch_cost, got.flushes) == (
                want.accesses,
                want.misses,
                want.fetch_cost,
                want.flushes,
            )

    def test_context_flags_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            simulate_multi_cache([0], {0: [0]}, PAPER_CONFIGS, [True, False])

    @settings(max_examples=60, deadline=None)
    @given(traces(), st.booleans())
    def test_compressed_trace_parity(self, data, ctx):
        # The engine consumes RLE records directly; the reference engine
        # iterates the expanded trace.  Results must still match.
        trace, fetches = data
        sink = RleTraceSink()
        for block_id in trace:
            sink.emit(block_id)
        compressed = sink.finish()
        multi = simulate_multi_cache(
            compressed, fetches, PAPER_CONFIGS, context_switches=ctx
        )
        for config, got in zip(PAPER_CONFIGS, multi):
            want = simulate_cache(trace, fetches, config, context_switches=ctx)
            assert (got.accesses, got.misses, got.fetch_cost, got.flushes) == (
                want.accesses,
                want.misses,
                want.fetch_cost,
                want.flushes,
            )


class TestRealPrograms:
    @pytest.fixture(scope="class")
    def measurements(self):
        out = {}
        target = get_target("sparc")
        for name in ("wc", "sieve", "bubblesort"):
            for replication in ("none", "jumps"):
                bench = PROGRAMS[name]
                program = compile_c(bench.source)
                optimize_program(
                    program, target, OptimizationConfig(replication=replication)
                )
                m = measure_program(program, target, stdin=bench.stdin, trace=True)
                out[(name, replication)] = (m.trace, m.block_fetches)
        return out

    @pytest.mark.parametrize("ctx", [False, True])
    def test_interpreter_traces_parity(self, measurements, ctx):
        for (name, replication), (trace, fetches) in measurements.items():
            assert_parity(trace, fetches, PAPER_CONFIGS, ctx)

    def test_fastforward_actually_fires(self, measurements):
        # The optimization must engage on real loopy programs, not just
        # be correct when idle.
        stats = MultiCacheStats()
        trace, fetches = measurements[("sieve", "none")]
        simulate_multi_cache(trace, fetches, PAPER_CONFIGS, stats=stats)
        assert stats.fastforward_iters > 0
        assert stats.fastforward_hits > 0


class TestZeroFetchBlocks:
    """Regression: block ids absent from ``block_fetches`` (empty basic
    blocks, or a trace replayed against a different layout) must count as
    zero accesses instead of raising ``KeyError``."""

    def test_reference_engine_skips_unknown_blocks(self):
        result = simulate_cache(
            [0, 7, 1, 7], {0: [0], 1: [16]}, CacheConfig(size=64)
        )
        assert result.accesses == 2
        assert result.misses == 2

    def test_multi_engine_skips_unknown_blocks(self):
        results = simulate_multi_cache(
            [0, 7, 1, 7], {0: [0], 1: [16]}, PAPER_CONFIGS
        )
        for result in results:
            assert result.accesses == 2

    def test_empty_fetch_list_counts_nothing(self):
        result = simulate_cache([0, 1, 0], {0: [], 1: [0]}, CacheConfig(size=64))
        assert result.accesses == 1

    def test_associative_engine_skips_unknown_blocks(self):
        from repro.cache import AssociativeCacheConfig, simulate_associative_cache

        result = simulate_associative_cache(
            [0, 9], {0: [0, 4]}, AssociativeCacheConfig(size=64, associativity=2)
        )
        assert result.accesses == 2


class TestDispatch:
    def test_paper_configurations_engines_agree(self):
        trace = [0, 1, 2] * 300 + [3]
        fetches = {i: [i * 32 + j * 4 for j in range(4)] for i in range(4)}
        for ctx in (False, True):
            ref = simulate_paper_configurations(
                trace, fetches, context_switches=ctx, engine="reference"
            )
            fast = simulate_paper_configurations(
                trace, fetches, context_switches=ctx, engine="multi"
            )
            assert ref.keys() == fast.keys()
            for size in ref:
                assert (
                    ref[size].accesses,
                    ref[size].misses,
                    ref[size].fetch_cost,
                    ref[size].flushes,
                ) == (
                    fast[size].accesses,
                    fast[size].misses,
                    fast[size].fetch_cost,
                    fast[size].flushes,
                )

    def test_resolver_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHESIM_ENGINE", raising=False)
        assert resolve_cachesim_engine() == "multi"
        assert resolve_cachesim_engine("reference") == "reference"
        monkeypatch.setenv("REPRO_CACHESIM_ENGINE", "reference")
        assert resolve_cachesim_engine() == "reference"
        assert resolve_cachesim_engine("multi") == "multi"
        with pytest.raises(ValueError):
            resolve_cachesim_engine("turbo")
