"""Set-associative cache tests, including equivalence with direct-mapped."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    AssociativeCacheConfig,
    CacheConfig,
    simulate_associative_cache,
    simulate_cache,
)
from tests.cache.test_direct_mapped import traces


def run(addresses, size=64, ways=2, ctx=False, interval=10_000):
    config = AssociativeCacheConfig(
        size=size, associativity=ways, context_switch_interval=interval
    )
    return simulate_associative_cache(
        [0], {0: list(addresses)}, config, context_switches=ctx
    )


class TestBasics:
    def test_two_way_resolves_direct_conflict(self):
        # Lines 0 and 64 conflict in a 64-byte direct-mapped cache; a
        # 2-way cache of the same size holds both.
        direct = simulate_cache([0], {0: [0, 64, 0, 64]}, CacheConfig(size=64))
        assoc = run([0, 64, 0, 64], size=64, ways=2)
        assert direct.misses == 4
        assert assoc.misses == 2

    def test_lru_eviction_order(self):
        # 2-way, one set pair: touch A, B, C (evicts A), then A misses.
        result = run([0, 64, 128, 0], size=32, ways=2)
        # 32B/16B = 2 lines = 1 set of 2 ways: A, B fill; C evicts A; A miss.
        assert result.misses == 4

    def test_lru_keeps_recently_used(self):
        # A, B, A, C: LRU evicts B (not A), so the next A hits.
        result = run([0, 64, 0, 128, 0], size=32, ways=2)
        assert result.misses == 3  # A, B, C miss; both A re-touches hit

    def test_fully_associative(self):
        config = AssociativeCacheConfig(size=64, associativity=4)
        result = simulate_associative_cache(
            [0], {0: [0, 16, 32, 48, 0, 16, 32, 48]}, config
        )
        assert result.misses == 4
        assert result.hits == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AssociativeCacheConfig(size=64, associativity=3)
        with pytest.raises(ValueError):
            AssociativeCacheConfig(size=100)
        with pytest.raises(ValueError):
            AssociativeCacheConfig(size=64, associativity=0)

    def test_context_switch_flush(self):
        cold = run([0] * 30, ways=2, ctx=True, interval=10)
        assert cold.flushes > 0
        assert cold.misses > 1


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(traces(), st.sampled_from([64, 128, 256]))
    def test_one_way_equals_direct_mapped(self, data, size):
        trace, fetches = data
        direct = simulate_cache(trace, fetches, CacheConfig(size=size))
        assoc = simulate_associative_cache(
            trace, fetches, AssociativeCacheConfig(size=size, associativity=1)
        )
        assert direct.misses == assoc.misses
        assert direct.fetch_cost == assoc.fetch_cost

    @settings(max_examples=60, deadline=None)
    @given(traces(), st.sampled_from([64, 128, 256]))
    def test_lru_inclusion_more_ways_never_miss_more(self, data, size):
        # LRU obeys the inclusion property when varying associativity at a
        # fixed size only if set mappings nest; compare instead against a
        # fully associative cache of the same size, which can only do
        # better than any same-size LRU configuration... which is also not
        # universally true for misses. The robust property: a fully
        # associative LRU cache of *unbounded* size only cold-misses.
        trace, fetches = data
        big = simulate_associative_cache(
            trace,
            fetches,
            AssociativeCacheConfig(size=1 << 15, associativity=1 << 11),
        )
        distinct = {a >> 4 for b in trace for a in fetches[b]}
        assert big.misses == len(distinct)

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_cost_identity(self, data):
        trace, fetches = data
        result = simulate_associative_cache(
            trace, fetches, AssociativeCacheConfig(size=128, associativity=2)
        )
        assert result.fetch_cost == result.hits + 10 * result.misses
