"""Additional interpreter coverage: widths, reuse, entry points."""

import pytest

from repro.cfg import Program
from repro.cfg.block import GlobalData
from repro.ease import Interpreter
from tests.conftest import function_from_text


def program_of(text, name="main", globals_=()):
    program = Program()
    program.add_function(function_from_text(name, text))
    for data in globals_:
        program.add_global(data)
    return program


class TestWidths:
    def test_word_width_roundtrip(self):
        program = program_of(
            """
            a[0]=buf.;
            W[a[0]]=513;
            rv[0]=W[a[0]];
            PC=RT;
            """,
            globals_=[GlobalData("buf", 8)],
        )
        assert Interpreter(program).run().exit_code == 513

    def test_word_truncates_to_16_bits(self):
        program = program_of(
            """
            a[0]=buf.;
            W[a[0]]=65537;
            rv[0]=W[a[0]];
            PC=RT;
            """,
            globals_=[GlobalData("buf", 8)],
        )
        assert Interpreter(program).run().exit_code == 1

    def test_byte_store_truncates(self):
        program = program_of(
            """
            a[0]=buf.;
            B[a[0]]=300;
            rv[0]=B[a[0]];
            PC=RT;
            """,
            globals_=[GlobalData("buf", 8)],
        )
        assert Interpreter(program).run().exit_code == 300 & 0xFF

    def test_little_endian_layout(self):
        program = program_of(
            """
            a[0]=buf.;
            W[a[0]]=258;
            rv[0]=B[a[0]]*1000+B[a[0]+1];
            PC=RT;
            """,
            globals_=[GlobalData("buf", 8)],
        )
        # 258 = 0x0102 -> bytes 0x02, 0x01.
        assert Interpreter(program).run().exit_code == 2001


class TestLifecycle:
    def test_interpreter_reusable_across_runs(self):
        program = program_of(
            """
            d[0]=0;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?5;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """
        )
        interp = Interpreter(program)
        first = interp.run()
        second = interp.run()
        assert first.exit_code == second.exit_code == 5
        assert first.block_counts == second.block_counts

    def test_globals_reinitialized_between_runs(self):
        program = program_of(
            """
            a[0]=counter.;
            d[0]=L[a[0]];
            L[a[0]]=d[0]+1;
            rv[0]=d[0];
            PC=RT;
            """,
            globals_=[GlobalData("counter", 4, b"\x07\x00\x00\x00")],
        )
        interp = Interpreter(program)
        assert interp.run().exit_code == 7
        assert interp.run().exit_code == 7  # fresh memory each run

    def test_custom_entry_point(self):
        program = Program()
        program.add_function(function_from_text("main", "rv[0]=1;\nPC=RT;"))
        program.add_function(function_from_text("other", "rv[0]=2;\nPC=RT;"))
        interp = Interpreter(program)
        assert interp.run(entry="other").exit_code == 2

    def test_unknown_entry_raises(self):
        program = program_of("PC=RT;")
        with pytest.raises(KeyError):
            Interpreter(program).run(entry="nothere")

    def test_calls_executed_counter(self):
        program = Program()
        program.add_function(
            function_from_text(
                "main",
                """
                arg[0]=0;
                CALL _f,1;
                CALL _f,1;
                rv[0]=0;
                PC=RT;
                """,
            )
        )
        program.add_function(function_from_text("f", "rv[0]=arg[0];\nPC=RT;"))
        result = Interpreter(program).run()
        assert result.calls_executed == 2

    def test_count_for_helper(self):
        program = program_of("rv[0]=0;\nPC=RT;")
        result = Interpreter(program).run()
        assert result.count_for("main") == 1
        assert result.count_for("ghost") == 0

    def test_count_for_sums_all_blocks_of_a_function(self):
        program = Program()
        program.add_function(
            function_from_text(
                "main",
                """
                arg[0]=0;
                CALL _f,1;
                CALL _f,1;
                CALL _f,1;
                rv[0]=0;
                PC=RT;
                """,
            )
        )
        program.add_function(function_from_text("f", "rv[0]=arg[0];\nPC=RT;"))
        result = Interpreter(program).run()
        assert result.count_for("f") >= 3  # entry block runs once per call
        assert result.count_for("f") == sum(
            count
            for (func, _block), count in result.block_counts.items()
            if func == "f"
        )

    def test_count_for_on_hand_populated_result(self):
        # Results built by hand (no interpreter run) must still answer
        # count_for via the fallback scan over ``block_counts``.
        from repro.ease.interp import ExecutionResult

        result = ExecutionResult()
        result.block_counts[("f", 0)] = 2
        result.block_counts[("f", 3)] = 5
        result.block_counts[("g", 0)] = 1
        assert result.count_for("f") == 7
        assert result.count_for("g") == 1
        assert result.count_for("missing") == 0
