"""Pipeline cost-model tests."""

import pytest

from repro.ease import PipelineModel, measure_pipeline
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

LOOP_SOURCE = """
int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 100; i++)
        s += i;
    return s;
}
"""


def measured(replication, source=LOOP_SOURCE, model=PipelineModel()):
    program = compile_c(source)
    target = get_target("sparc")
    optimize_program(program, target, OptimizationConfig(replication=replication))
    return measure_pipeline(program, target, model=model)


class TestPipelineModel:
    def test_cycles_decompose(self):
        result = measured("none")
        assert result.cycles == result.instructions + 2 * result.transfers_taken

    def test_straight_line_has_one_taken_transfer(self):
        # Only the final return is taken.
        result = measured("none", source="int main() { return 1 + 2; }")
        assert result.transfers_taken == 1
        assert result.transfers_not_taken == 0

    def test_replication_reduces_taken_transfers(self):
        simple = measured("none")
        jumps = measured("jumps")
        # The loop's per-iteration unconditional jump (always taken)
        # becomes a fall-through + reversed branch (taken only at the
        # loop back edge, which was taken before too) — strictly fewer
        # taken transfers.
        assert jumps.transfers_taken < simple.transfers_taken
        assert jumps.cycles < simple.cycles

    def test_zero_penalty_reduces_to_instruction_count(self):
        result = measured("none", model=PipelineModel(taken_penalty=0))
        assert result.cycles == result.instructions

    def test_penalty_scaling(self):
        cheap = measured("none", model=PipelineModel(taken_penalty=1))
        steep = measured("none", model=PipelineModel(taken_penalty=10))
        assert steep.cycles > cheap.cycles
        assert steep.instructions == cheap.instructions

    def test_needs_trace(self):
        from repro.ease import Interpreter, measure_program, pipeline_cost

        program = compile_c("int main() { return 0; }")
        target = get_target("sparc")
        optimize_program(program, target, OptimizationConfig())
        interp = Interpreter(program)
        m = measure_program(program, target, interpreter=interp)  # no trace
        with pytest.raises(ValueError):
            pipeline_cost(m, interp, program)
