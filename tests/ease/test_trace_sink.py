"""Trace-layer tests: RLE round-trip, chunk/flush edges, sink protocol."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite.programs import PROGRAMS
from repro.ease import Interpreter, measure_program
from repro.ease.trace import (
    CompressedTrace,
    RawListSink,
    RleTraceSink,
    make_sink,
)
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target


def compress(ids, **kwargs):
    sink = RleTraceSink(**kwargs)
    for block_id in ids:
        sink.emit(block_id)
    return sink.finish()


class TestRoundTrip:
    def test_empty(self):
        trace = compress([])
        assert trace.to_list() == []
        assert len(trace) == 0
        assert not trace

    def test_plain_literals(self):
        ids = [1, 2, 3, 4, 5]
        trace = compress(ids)
        assert trace.to_list() == ids
        assert trace == ids

    def test_simple_loop_folds(self):
        ids = [7, 8, 9] * 500
        trace = compress(ids)
        assert trace.to_list() == ids
        assert trace.run_records >= 1
        assert trace.compression_ratio > 100

    def test_partial_final_lap(self):
        # The run ends mid-body: the matched prefix must re-surface.
        ids = [1, 2, 3] * 10 + [1, 2, 99]
        trace = compress(ids)
        assert trace.to_list() == ids

    def test_nested_repetition_in_prefix(self):
        # Sealing a run re-buffers its prefix; a repetition inside the
        # prefix may itself start a run.  Expansion must survive both.
        ids = ([5, 5, 6] * 8) + [5, 5, 99] + [4] * 20
        trace = compress(ids)
        assert trace.to_list() == ids

    def test_single_block_loop(self):
        ids = [3] * 1000
        trace = compress(ids)
        assert trace.to_list() == ids
        assert trace.record_count <= 2

    def test_body_longer_than_max_not_folded(self):
        body = list(range(10))
        ids = body * 6
        trace = compress(ids, max_body=4)
        assert trace.to_list() == ids

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.integers(0, 6), max_size=300),
        st.sampled_from([1, 2, 3, 8, 64]),
        st.sampled_from([2, 3, 17, 4096]),
    )
    def test_fuzzed_round_trip(self, ids, max_body, chunk_size):
        trace = compress(ids, max_body=max_body, chunk_size=chunk_size)
        assert trace.to_list() == ids
        assert len(trace) == len(ids)
        assert trace == ids


class TestChunkAndFlushEdges:
    def test_chunk_boundary_splits_literals(self):
        ids = list(range(10))
        trace = compress(ids, chunk_size=4)
        assert trace.to_list() == ids
        assert trace.record_count >= 2

    def test_loop_spanning_chunk_boundary(self):
        # Detection state resets at a chunk seal; correctness must not.
        ids = [1, 2] * 50
        for chunk in (2, 3, 5, 7):
            assert compress(ids, chunk_size=chunk).to_list() == ids

    def test_finish_idempotent(self):
        sink = RleTraceSink()
        for block_id in [1, 2, 1, 2, 1, 2]:
            sink.emit(block_id)
        first = sink.finish()
        second = sink.finish()
        assert first is second

    def test_finish_seals_open_run(self):
        ids = [4, 5] * 100  # run still active at finish time
        trace = compress(ids)
        assert trace.to_list() == ids

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RleTraceSink(max_body=0)
        with pytest.raises(ValueError):
            RleTraceSink(chunk_size=1)


class TestCompressedTraceBehaviour:
    def test_equality_against_lists_and_traces(self):
        ids = [1, 2, 3, 1, 2, 3]
        trace = compress(ids)
        assert trace == ids
        assert trace == compress(ids)
        assert not (trace == ids + [9])
        assert trace != [9] * 6

    def test_unhashable_like_a_list(self):
        with pytest.raises(TypeError):
            hash(compress([1, 2]))

    def test_pickle_round_trip(self):
        ids = [1, 2, 3] * 40 + [7, 8]
        trace = compress(ids)
        clone = pickle.loads(pickle.dumps(trace))
        assert isinstance(clone, CompressedTrace)
        assert clone.to_list() == ids
        assert clone.record_count == trace.record_count

    def test_nbytes_smaller_than_raw_for_loops(self):
        import sys

        ids = [1, 2, 3, 4] * 5000
        trace = compress(ids)
        assert trace.nbytes < sys.getsizeof(ids) / 10


class TestMakeSink:
    def test_false_and_none_disable(self):
        assert make_sink(False) is None
        assert make_sink(None) is None

    def test_true_selects_compression(self):
        assert isinstance(make_sink(True), RleTraceSink)

    def test_instance_passes_through(self):
        sink = RawListSink()
        assert make_sink(sink) is sink


class TestInterpreterIntegration:
    def run_both(self, name):
        bench = PROGRAMS[name]
        program = compile_c(bench.source)
        target = get_target("sparc")
        optimize_program(program, target, OptimizationConfig(replication="jumps"))
        interp = Interpreter(program)
        raw = interp.run(stdin=bench.stdin, trace=RawListSink())
        compressed = interp.run(stdin=bench.stdin, trace=True)
        return raw, compressed

    @pytest.mark.parametrize("name", ["wc", "sieve", "queens"])
    def test_compressed_equals_raw_sink_output(self, name):
        raw, compressed = self.run_both(name)
        assert isinstance(raw.trace, list)
        assert isinstance(compressed.trace, CompressedTrace)
        assert compressed.trace.to_list() == raw.trace
        assert len(compressed.trace) == len(raw.trace)

    def test_loopy_program_compresses(self):
        _, compressed = self.run_both("sieve")
        assert compressed.trace.compression_ratio > 5

    def test_measure_program_raw_sink_passthrough(self):
        program = compile_c("int main() { return 0; }")
        target = get_target("sparc")
        optimize_program(program, target, OptimizationConfig())
        m = measure_program(program, target, trace=RawListSink())
        assert isinstance(m.trace, list)
