"""Engine parity: the compiled EASE engine vs the closure interpreter.

The compiled engine (``repro.ease.compile``) is a performance
optimization, so the closure interpreter is its differential reference:
for every program, both engines must agree on program output, exit
code, the final globals image, per-block execution counts, the number
of interpreted calls, *and* the compressed block-trace stream (the
Table-6 input — byte-identical, not just equivalent).

Coverage is the full 14-program Table-5 suite (optimized, ``jumps``
replication — the block shapes the compiler actually fuses) plus fuzzed
mini-C from the verification campaign's generator.  Step-limit
accounting gets its own boundary tests: both engines must raise
:class:`StepLimitExceeded` on exactly the same executed block with the
same message, including limits landing mid-way through a fused chain.
"""

import pytest

from repro.benchsuite.programs import PROGRAMS, program_names
from repro.ease import (
    CompiledInterpreter,
    Interpreter,
    StepLimitExceeded,
    make_interpreter,
)
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target
from repro.verify.fuzz import generate_program

FUZZ_SEEDS = list(range(16))


def optimized(source):
    program = compile_c(source)
    optimize_program(
        program, get_target("sparc"), OptimizationConfig(replication="jumps")
    )
    return program


def observe(interp, stdin=b"", trace=True):
    result = interp.run(stdin=stdin, trace=trace)
    return {
        "output": result.output,
        "exit_code": result.exit_code,
        "globals_image": result.globals_image,
        "block_counts": dict(result.block_counts),
        "calls_executed": result.calls_executed,
        "trace": result.trace if trace else None,
    }


def assert_engine_parity(program, stdin=b"", max_steps=200_000_000):
    """Run both engines; every observable must match.  Returns the
    compiled engine so callers can inspect fallbacks."""
    want = observe(Interpreter(program, max_steps=max_steps), stdin)
    compiled = CompiledInterpreter(program, max_steps=max_steps)
    got = observe(compiled, stdin)
    for field in ("output", "exit_code", "globals_image", "calls_executed"):
        assert got[field] == want[field], field
    assert got["block_counts"] == want["block_counts"]
    # CompressedTrace equality is record-exact: the compiled engine must
    # feed the RLE sink the *same stream*, not a rearrangement of it.
    assert got["trace"] == want["trace"]
    return compiled


class TestSuitePrograms:
    """All 14 Table-5 programs, optimized the way Table 5 runs them."""

    @pytest.fixture(scope="class")
    def suite(self):
        return {
            name: (optimized(PROGRAMS[name].source), PROGRAMS[name].stdin)
            for name in program_names()
        }

    @pytest.mark.parametrize("name", program_names())
    def test_parity(self, suite, name):
        program, stdin = suite[name]
        compiled = assert_engine_parity(program, stdin=stdin)
        # Every suite function must actually go through the compiler —
        # a silent fallback would make this parity test vacuous for the
        # functions that matter.
        assert compiled.fallbacks == {}, compiled.fallbacks

    def test_unoptimized_parity(self, suite):
        # The engines must also agree on front-end output (no
        # replication, different block shapes: more jumps, no fusion
        # across the shapes replication produces).
        for name in ("wc", "queens", "compact"):
            program = compile_c(PROGRAMS[name].source)
            assert_engine_parity(program, stdin=PROGRAMS[name].stdin)


class TestFuzzedPrograms:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_parity(self, seed):
        assert_engine_parity(optimized(generate_program(seed)))

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:6])
    def test_parity_unoptimized(self, seed):
        assert_engine_parity(compile_c(generate_program(seed)))


# A loop whose replicated body fuses into multi-block chains, plus a
# compiled-to-compiled call in the hot path: limits can land mid-chain
# and mid-call, the two places step accounting is easiest to get wrong.
STEP_LIMIT_SOURCE = """int add(int x, int y) {
    if (x > y) {
        return x + y + 1;
    }
    return x + y;
}
int main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < 40; i++) {
        s = add(s, i);
        if (s > 300) {
            s = s - 13;
        }
    }
    printf("%d\\n", s);
    return s & 255;
}
"""


class TestStepLimitParity:
    """StepLimitExceeded must fire on the same executed block in both
    engines — exact-boundary regression tests (satellite of the
    compiled-engine PR)."""

    @pytest.fixture(scope="class")
    def program(self):
        return optimized(STEP_LIMIT_SOURCE)

    @pytest.fixture(scope="class")
    def total_steps(self, program):
        result = Interpreter(program, max_steps=10_000_000).run()
        return sum(result.block_counts.values())

    def test_exact_limit_passes_both_engines(self, program, total_steps):
        # max_steps == blocks executed: the final block's debit leaves
        # zero budget but does not trip.  Both engines must complete,
        # with full observable parity.
        assert_engine_parity(program, max_steps=total_steps)

    def test_one_below_limit_raises_both_engines(self, program, total_steps):
        for engine_cls in (Interpreter, CompiledInterpreter):
            with pytest.raises(StepLimitExceeded) as exc:
                engine_cls(program, max_steps=total_steps - 1).run()
            assert str(exc.value) == f"exceeded {total_steps - 1} block steps"

    @pytest.mark.parametrize("offset", [2, 3, 5, 17, 101])
    def test_boundary_sweep_engines_agree(self, program, total_steps, offset):
        # Limits landing mid-run — including mid-fused-chain and inside
        # the called function — must trip identically.  Identical
        # exception type and message; neither engine runs further than
        # the other (parity of the raise itself).
        limit = total_steps - offset
        for engine_cls in (Interpreter, CompiledInterpreter):
            with pytest.raises(StepLimitExceeded) as exc:
                engine_cls(program, max_steps=limit).run()
            assert str(exc.value) == f"exceeded {limit} block steps"

    def test_limit_one_agrees(self, program):
        for engine_cls in (Interpreter, CompiledInterpreter):
            with pytest.raises(StepLimitExceeded):
                engine_cls(program, max_steps=1).run()

    def test_interpreter_reusable_after_limit(self, program, total_steps):
        # run() re-arms the budget: an engine that tripped must run
        # cleanly afterwards with a sufficient limit (both engines).
        for engine_cls in (Interpreter, CompiledInterpreter):
            interp = engine_cls(program, max_steps=total_steps - 1)
            with pytest.raises(StepLimitExceeded):
                interp.run()
            interp.max_steps = total_steps
            result = interp.run()
            assert sum(result.block_counts.values()) == total_steps


class TestEngineSelection:
    def test_make_interpreter_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_EASE_ENGINE", raising=False)
        program = compile_c("int main() { return 7; }")
        assert isinstance(make_interpreter(program), CompiledInterpreter)

    def test_env_selects_interp(self, monkeypatch):
        monkeypatch.setenv("REPRO_EASE_ENGINE", "interp")
        program = compile_c("int main() { return 7; }")
        interp = make_interpreter(program)
        assert not isinstance(interp, CompiledInterpreter)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EASE_ENGINE", "interp")
        program = compile_c("int main() { return 7; }")
        assert isinstance(
            make_interpreter(program, "compiled"), CompiledInterpreter
        )

    def test_unknown_engine_rejected(self):
        program = compile_c("int main() { return 7; }")
        with pytest.raises(ValueError):
            make_interpreter(program, "turbo")
