"""Measurement-layer tests (EASE substitute)."""

from repro.ease import Interpreter, measure_program
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

SOURCE = """
int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 50; i++)
        s += i;
    printf("%d\\n", s);
    return s;
}
"""


def measured(target_name="sparc", replication="none", source=SOURCE, trace=False):
    program = compile_c(source)
    target = get_target(target_name)
    optimize_program(program, target, OptimizationConfig(replication=replication))
    return measure_program(program, target, trace=trace)


class TestCounts:
    def test_static_count_matches_weighted_rtls(self):
        m = measured("m68020")
        # On the 68020 every RTL is one instruction.
        assert m.static_insns > 0

    def test_dynamic_ge_static_for_looping_program(self):
        m = measured()
        assert m.dynamic_insns > m.static_insns

    def test_output_and_exit_code_captured(self):
        m = measured()
        assert m.output == b"1225\n"
        assert m.exit_code == 1225

    def test_jump_counts_drop_with_replication(self):
        simple = measured(replication="none")
        jumps = measured(replication="jumps")
        assert simple.dynamic_jumps > 0
        assert jumps.dynamic_jumps == 0

    def test_sparc_counts_sethi_pairs(self):
        # A global access forces address formation on the SPARC: the RTL
        # counts as two instructions there, one on the 68020.
        source = """
        int g;
        int main() { g = 1; return g; }
        """
        sparc = measured("sparc", source=source)
        m68k = measured("m68020", source=source)
        assert sparc.code_bytes % 4 == 0
        assert sparc.static_insns >= m68k.static_insns

    def test_nops_counted_on_sparc_only(self):
        source = "int main() { return 0; }"
        assert measured("sparc", source=source).static_nops >= 0
        assert measured("m68020", source=source).static_nops == 0


class TestLayoutAndTrace:
    def test_block_fetches_cover_all_blocks(self):
        m = measured(trace=True)
        assert m.trace is not None
        for block_id in set(m.trace):
            assert block_id in m.block_fetches

    def test_fetch_addresses_are_increasing_within_block(self):
        m = measured(trace=True)
        for fetches in m.block_fetches.values():
            assert fetches == sorted(fetches)

    def test_trace_expands_to_dynamic_count(self):
        m = measured(trace=True)
        total_fetches = sum(len(m.block_fetches[b]) for b in m.trace)
        assert total_fetches == m.dynamic_insns

    def test_insns_between_branches(self):
        m = measured()
        assert 1.0 <= m.insns_between_branches <= 50.0


class TestLayoutDetails:
    def test_68020_fetch_addresses_follow_variable_sizes(self):
        program = compile_c("int main() { return 123456; }")
        target = get_target("m68020")
        optimize_program(program, target, OptimizationConfig())
        from repro.ease import Interpreter

        interp = Interpreter(program)
        m = measure_program(program, target, trace=True, interpreter=interp)
        func = program.functions["main"]
        block_id = interp.global_block_id("main", 0)
        fetches = m.block_fetches[block_id]
        sizes = [target.insn_size(i) for i in func.blocks[0].insns]
        for index in range(1, len(fetches)):
            assert fetches[index] - fetches[index - 1] == sizes[index - 1]

    def test_code_bytes_covers_all_functions(self):
        source = """
        int f() { return 1; }
        int g() { return 2; }
        int main() { return f() + g(); }
        """
        program = compile_c(source)
        target = get_target("m68020")
        optimize_program(program, target, OptimizationConfig())
        m = measure_program(program, target)
        total = sum(
            target.insn_size(i)
            for func in program.functions.values()
            for i in func.insns()
        )
        # Function alignment may add padding, never shrink.
        assert m.code_bytes >= total

    def test_jump_table_charged_as_data(self):
        source = """
        int main() {
            int x;
            x = getchar();
            switch (x & 7) {
            case 0: return 1;
            case 1: return 2;
            case 2: return 3;
            case 3: return 4;
            default: return 0;
            }
        }
        """
        program = compile_c(source)
        target = get_target("sparc")
        config = OptimizationConfig()
        optimize_program(program, target, config)
        m_with = measure_program(program, target, stdin=b"a")
        from repro.rtl import IndirectJump

        tables = sum(
            4 * len(i.targets)
            for f in program.functions.values()
            for i in f.insns()
            if isinstance(i, IndirectJump)
        )
        insn_bytes = sum(
            target.insn_size(i)
            for f in program.functions.values()
            for i in f.insns()
        )
        if tables:
            assert m_with.code_bytes >= insn_bytes + tables
