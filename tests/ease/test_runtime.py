"""Runtime (builtin library) tests, via small C programs."""

from tests.conftest import run_c


class TestPrintf:
    def test_width_and_flags_combinations(self):
        out, _ = run_c(
            r'int main() { printf("[%3d][%-3d][%03d]", 7, 7, 7); return 0; }'
        )
        assert out == b"[  7][7  ][007]"

    def test_string_width(self):
        out, _ = run_c(r'int main() { printf("[%5s]", "ab"); return 0; }')
        assert out == b"[   ab]"

    def test_octal_hex(self):
        out, _ = run_c(r'int main() { printf("%o %x %07o", 64, 64, 64); return 0; }')
        assert out == b"100 40 0000100"

    def test_unsigned(self):
        out, _ = run_c(r'int main() { printf("%u", 0 - 1); return 0; }')
        assert out == b"4294967295"

    def test_percent_literal(self):
        out, _ = run_c(r'int main() { printf("100%%"); return 0; }')
        assert out == b"100%"

    def test_long_modifier(self):
        out, _ = run_c(r'int main() { printf("%ld", 7); return 0; }')
        assert out == b"7"


class TestStringRoutines:
    def test_strcmp_ordering(self):
        out, code = run_c(
            """
            int main() {
                return (strcmp("abc", "abd") < 0)
                     + (strcmp("b", "a") > 0) * 10
                     + (strcmp("same", "same") == 0) * 100;
            }
            """
        )
        assert code == 111

    def test_strcpy_returns_destination(self):
        _, code = run_c(
            """
            char buf[8];
            int main() {
                char *r;
                r = strcpy(buf, "ok");
                return r[0];
            }
            """
        )
        assert code == ord("o")

    def test_strlen_empty(self):
        _, code = run_c('int main() { return strlen(""); }')
        assert code == 0


class TestIO:
    def test_getchar_eof_is_minus_one(self):
        _, code = run_c("int main() { return getchar(); }", b"")
        assert code == -1

    def test_getchar_sequence(self):
        out, _ = run_c(
            """
            int main() {
                int a, b;
                a = getchar();
                b = getchar();
                putchar(b);
                putchar(a);
                return 0;
            }
            """,
            b"xy",
        )
        assert out == b"yx"


class TestAllocator:
    def test_malloc_returns_distinct_aligned_chunks(self):
        _, code = run_c(
            """
            int main() {
                char *a;
                char *b;
                a = malloc(5);
                b = malloc(5);
                if (a == b) return 1;
                if (b < a + 5) return 2;
                return (b - a) % 4 == 0 || 1;
            }
            """
        )
        assert code == 1

    def test_malloc_memory_is_usable(self):
        _, code = run_c(
            """
            int main() {
                int *p;
                int i, s;
                p = malloc(40);
                for (i = 0; i < 10; i++) p[i] = i;
                s = 0;
                for (i = 0; i < 10; i++) s += p[i];
                return s;
            }
            """
        )
        assert code == 45
