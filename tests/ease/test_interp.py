"""RTL interpreter tests (direct, on hand-written RTL programs)."""

import pytest

from repro.cfg import Program
from repro.ease import Interpreter, StepLimitExceeded
from repro.cfg.block import GlobalData
from tests.conftest import function_from_text


def program_with(main_text, globals_=(), extra_funcs=()):
    program = Program()
    func = function_from_text("main", main_text)
    program.add_function(func)
    for name, text, frame in extra_funcs:
        other = function_from_text(name, text)
        for local, size in frame:
            other.add_local(local, size)
        program.add_function(other)
    for data in globals_:
        program.add_global(data)
    return program


class TestBasics:
    def test_register_arithmetic(self):
        program = program_with(
            """
            d[0]=6;
            d[1]=7;
            rv[0]=d[0]*d[1];
            PC=RT;
            """
        )
        assert Interpreter(program).run().exit_code == 42

    def test_conditional_branch(self):
        program = program_with(
            """
            d[0]=5;
            NZ=d[0]?3;
            PC=NZ>0,L1;
            rv[0]=0;
            PC=RT;
            L1:
              rv[0]=1;
              PC=RT;
            """
        )
        assert Interpreter(program).run().exit_code == 1

    def test_loop_counts_blocks(self):
        program = program_with(
            """
            d[0]=0;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?10;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """
        )
        result = Interpreter(program).run()
        assert result.exit_code == 10
        loop_count = result.block_counts[("main", 1)]
        assert loop_count == 10

    def test_memory_widths(self):
        data = GlobalData("buf", 8)
        program = program_with(
            """
            a[0]=buf.;
            L[a[0]]=305419896;
            d[0]=B[a[0]];
            d[1]=B[a[0]+3];
            rv[0]=d[0]*256+d[1];
            PC=RT;
            """,
            globals_=[data],
        )
        # 0x12345678 little-endian: byte0 = 0x78, byte3 = 0x12.
        assert Interpreter(program).run().exit_code == 0x78 * 256 + 0x12

    def test_signed_load(self):
        data = GlobalData("x", 4)
        program = program_with(
            """
            a[0]=x.;
            L[a[0]]=-5;
            rv[0]=L[a[0]];
            PC=RT;
            """,
            globals_=[data],
        )
        assert Interpreter(program).run().exit_code == -5

    def test_global_initialization_and_relocation(self):
        text = GlobalData("msg", 3, b"ab\x00")
        pointer = GlobalData("p", 4, b"\x00\x00\x00\x00", relocs=[(0, "msg")])
        program = program_with(
            """
            a[0]=p.;
            a[1]=L[a[0]];
            rv[0]=B[a[1]+1];
            PC=RT;
            """,
            globals_=[text, pointer],
        )
        assert Interpreter(program).run().exit_code == ord("b")

    def test_indirect_jump_selects_target(self):
        program = program_with(
            """
            d[0]=1;
            PC=L[d[0]]<L0,L1,L2>;
            L0:
              rv[0]=100;
              PC=RT;
            L1:
              rv[0]=200;
              PC=RT;
            L2:
              rv[0]=300;
              PC=RT;
            """
        )
        assert Interpreter(program).run().exit_code == 200

    def test_indirect_jump_out_of_range(self):
        program = program_with(
            """
            d[0]=9;
            PC=L[d[0]]<L0>;
            L0:
              PC=RT;
            """
        )
        with pytest.raises(IndexError):
            Interpreter(program).run()

    def test_division_by_zero_traps(self):
        program = program_with(
            """
            d[0]=0;
            rv[0]=1/d[0];
            PC=RT;
            """
        )
        with pytest.raises(ZeroDivisionError):
            Interpreter(program).run()

    def test_step_limit(self):
        program = program_with(
            """
            L1:
              d[0]=d[0]+1;
              PC=L1;
            """
        )
        with pytest.raises(StepLimitExceeded):
            Interpreter(program, max_steps=1000).run()


class TestCalls:
    def test_call_and_return_value(self):
        program = program_with(
            """
            arg[0]=20;
            CALL _double,1;
            rv[0]=rv[0]+2;
            PC=RT;
            """,
            extra_funcs=[
                (
                    "double",
                    """
                    rv[0]=arg[0]*2;
                    PC=RT;
                    """,
                    [],
                )
            ],
        )
        assert Interpreter(program).run().exit_code == 42

    def test_registers_callee_saved(self):
        program = program_with(
            """
            d[0]=7;
            arg[0]=0;
            CALL _clobber,1;
            rv[0]=d[0];
            PC=RT;
            """,
            extra_funcs=[
                (
                    "clobber",
                    """
                    d[0]=999;
                    rv[0]=0;
                    PC=RT;
                    """,
                    [],
                )
            ],
        )
        assert Interpreter(program).run().exit_code == 7

    def test_frames_are_disjoint_across_recursion(self):
        # f(n): local = n; if n>0 call f(n-1); return local
        program = program_with(
            """
            arg[0]=3;
            CALL _f,1;
            PC=RT;
            """,
            extra_funcs=[
                (
                    "f",
                    """
                    L[FP+local.]=arg[0];
                    NZ=arg[0]?0;
                    PC=NZ<=0,L1;
                    arg[0]=arg[0]-1;
                    CALL _f,1;
                    L1:
                      rv[0]=L[FP+local.];
                      PC=RT;
                    """,
                    [("local", 4)],
                )
            ],
        )
        # Wait: arg[0] is modified before the recursive call, but restored
        # by callee-save on return; local must still hold the outer n.
        assert Interpreter(program).run().exit_code == 3

    def test_unknown_function_raises(self):
        program = program_with("CALL _nosuch,0;\nPC=RT;")
        with pytest.raises(NameError):
            Interpreter(program).run()

    def test_builtin_dispatch(self):
        program = program_with(
            """
            arg[0]=88;
            CALL _putchar,1;
            rv[0]=0;
            PC=RT;
            """
        )
        assert Interpreter(program).run().output == b"X"


class TestTrace:
    def test_trace_records_blocks_in_order(self):
        program = program_with(
            """
            d[0]=0;
            L1:
              d[0]=d[0]+1;
              NZ=d[0]?3;
              PC=NZ<0,L1;
            rv[0]=d[0];
            PC=RT;
            """
        )
        interp = Interpreter(program)
        result = interp.run(trace=True)
        entry = interp.global_block_id("main", 0)
        loop = interp.global_block_id("main", 1)
        exit_ = interp.global_block_id("main", 2)
        assert result.trace == [entry, loop, loop, loop, exit_]
