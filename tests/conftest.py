"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Optional, Tuple

import pytest

from repro.cfg import Function, build_function
from repro.ease import Interpreter
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.rtl import parse_insns
from repro.targets import get_target


def function_from_text(name: str, text: str) -> Function:
    """Build a function from RTL text in the paper's notation."""
    return build_function(name, parse_insns(text))


def run_c(
    source: str,
    stdin: bytes = b"",
    target: Optional[str] = None,
    replication: str = "none",
    max_steps: int = 20_000_000,
    validate_cfg: bool = True,
) -> Tuple[bytes, int]:
    """Compile mini-C (optionally optimizing) and run it.

    With ``target=None`` the raw front-end output is interpreted —
    the semantic reference used throughout the test suite.  Optimized
    runs validate CFG invariants after every pass by default, so any
    test going through this helper doubles as an invariant check.
    """
    program = compile_c(source)
    if target is not None:
        optimize_program(
            program,
            get_target(target),
            OptimizationConfig(replication=replication, validate_cfg=validate_cfg),
        )
    result = Interpreter(program, max_steps=max_steps).run(stdin=stdin)
    return result.output, result.exit_code


@pytest.fixture
def make_function():
    return function_from_text
