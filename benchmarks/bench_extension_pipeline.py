"""Extension — control-transfer cost on a simple pipeline.

The paper reasons that replication helps pipelined machines (bigger
blocks, fewer no-ops, §5.2/§7) but measures only instruction counts.
This harness applies an explicit taken-branch penalty: every taken
control transfer costs 2 refill cycles.  Replication converts
always-taken unconditional jumps into fall-throughs, so the cycle saving
exceeds the pure instruction-count saving.
"""

from __future__ import annotations

from repro.benchsuite import PROGRAMS, compile_benchmark
from repro.ease import measure_pipeline
from repro.report import format_table, mean
from repro.targets import get_target

from conftest import selected_programs


def test_pipeline_cycles(benchmark, suite_measurements):
    target = get_target("sparc")

    def build():
        rows = []
        cycle_savings = []
        insn_savings = []
        for name in selected_programs():
            results = {}
            for config in ("none", "jumps"):
                program = compile_benchmark(name, target, config)
                results[config] = measure_pipeline(
                    program, target, stdin=PROGRAMS[name].stdin
                )
            simple = results["none"]
            jumps = results["jumps"]
            cycle_saving = (jumps.cycles - simple.cycles) / simple.cycles
            insn_saving = (
                jumps.instructions - simple.instructions
            ) / simple.instructions
            cycle_savings.append(cycle_saving)
            insn_savings.append(insn_saving)
            rows.append(
                [
                    name,
                    simple.transfers_taken,
                    jumps.transfers_taken,
                    f"{simple.cpi:.3f}",
                    f"{jumps.cpi:.3f}",
                    f"{insn_saving * 100:+.2f}%",
                    f"{cycle_saving * 100:+.2f}%",
                ]
            )
        return rows, mean(insn_savings), mean(cycle_savings)

    rows, insn_mean, cycle_mean = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Extension: pipeline model (SPARC, taken-branch penalty = 2)")
    print(
        format_table(
            [
                "program",
                "taken (SIMPLE)",
                "taken (JUMPS)",
                "CPI (SIMPLE)",
                "CPI (JUMPS)",
                "Δ insns",
                "Δ cycles",
            ],
            rows,
        )
    )
    print(
        f"\nmean saving: instructions {insn_mean * 100:+.2f}%, "
        f"cycles {cycle_mean * 100:+.2f}%"
    )
    # Shape: on a pipeline, replication saves *more* cycles than raw
    # instructions, because eliminated jumps were always-taken transfers.
    assert cycle_mean <= insn_mean + 1e-9
