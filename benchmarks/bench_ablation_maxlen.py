"""Ablation — bounding the replication sequence length (§6, future work).

"The increase in code size could be reduced by limiting the maximum
length of a replication sequence to a specified number of RTLs.  The
improvements in the dynamic behavior may drop slightly for this case
while the performance of small caches should benefit."

This harness sweeps the bound and reports static growth and dynamic
savings relative to SIMPLE, scored via :mod:`repro.benchsuite.scoring`
(the autotuner's code path; a parity test pins the equivalence).
"""

from __future__ import annotations

from repro.benchsuite import run_benchmark
from repro.benchsuite.scoring import (
    aggregate_scores,
    format_change,
    score_measurement,
)
from repro.report import format_table

from conftest import selected_programs

BOUNDS = (2, 4, 8, 16, None)


def test_maxlen_ablation(benchmark, suite_measurements):
    def build():
        rows = []
        for bound in BOUNDS:
            scores = []
            for name in selected_programs():
                simple = suite_measurements[("sparc", "none", name)]
                m = run_benchmark(
                    name, target="sparc", replication="jumps", max_rtls=bound
                )
                scores.append(score_measurement(name, m, simple))
            aggregate = aggregate_scores(scores)
            label = str(bound) if bound is not None else "unbounded"
            rows.append(
                [
                    label,
                    format_change(aggregate.static_change_mean),
                    format_change(aggregate.dynamic_change_mean),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: max replication sequence length (SPARC, mean vs SIMPLE)")
    print(format_table(["max RTLs", "Δ static", "Δ dynamic"], rows))

    # Shape: static growth is monotone non-decreasing in the bound, and the
    # unbounded configuration saves at least as much dynamically as the
    # tightest bound.
    static_growth = [float(r[1].rstrip("%")) for r in rows]
    assert static_growth[0] <= static_growth[-1] + 0.2
    dyn_change = [float(r[2].rstrip("%")) for r in rows]
    assert dyn_change[-1] <= dyn_change[0] + 0.2
