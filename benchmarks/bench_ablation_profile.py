"""Ablation — profile-guided replication (extension).

The paper replicates every unconditional jump (+53 % static on average);
its related work cites profile-driven growth control for inlining.  This
harness sweeps a hotness threshold: only jumps accounting for at least
that fraction of all executed jumps are replicated.

Expected shape: dynamic savings concentrate in a handful of hot jumps, so
a moderate threshold keeps most of the speedup at a fraction of the code
growth — and a threshold of 1 degenerates to (almost) SIMPLE.
"""

from __future__ import annotations

from repro.benchsuite import PROGRAMS
from repro.core import profile_guided_replication
from repro.ease import measure_program
from repro.frontend import compile_c
from repro.report import format_table, mean
from repro.targets import get_target

from conftest import selected_programs

THRESHOLDS = (0.0, 0.02, 0.1, 0.5)


def test_profile_guided_threshold_sweep(benchmark, suite_measurements):
    target = get_target("sparc")

    def build():
        rows = []
        for threshold in THRESHOLDS:
            statics = []
            dynamics = []
            hot_total = 0
            cold_total = 0
            for name in selected_programs():
                simple = suite_measurements[("sparc", "none", name)]
                bench = PROGRAMS[name]
                program = compile_c(bench.source)
                result = profile_guided_replication(
                    program, target, train_stdin=bench.stdin, threshold=threshold
                )
                m = measure_program(program, target, stdin=bench.stdin)
                assert m.output == simple.output  # training == testing input
                statics.append(
                    (m.static_insns - simple.static_insns) / simple.static_insns
                )
                dynamics.append(
                    (m.dynamic_insns - simple.dynamic_insns)
                    / simple.dynamic_insns
                )
                hot_total += result.hot_jumps
                cold_total += result.cold_jumps
            rows.append(
                [
                    f"{threshold:g}",
                    f"{mean(statics) * 100:+.2f}%",
                    f"{mean(dynamics) * 100:+.2f}%",
                    hot_total,
                    cold_total,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: profile-guided replication (SPARC, mean vs SIMPLE)")
    print(
        format_table(
            ["threshold", "Δ static", "Δ dynamic", "hot jumps", "cold jumps"],
            rows,
        )
    )

    # Shape: raising the threshold never increases static growth, and the
    # strictest threshold saves the least dynamically.
    statics = [float(r[1].rstrip("%")) for r in rows]
    dynamics = [float(r[2].rstrip("%")) for r in rows]
    assert statics[-1] <= statics[0] + 0.2
    assert dynamics[0] <= dynamics[-1] + 0.2
