"""Acceptance benchmark for the compilation-service daemon.

Measures three things and records them in ``BENCH_SERVE.json`` at the
repository root:

1. **cold CLI** — a fresh ``repro bench`` subprocess over the full
   Table-4/5 matrix (14 programs x 2 targets x 3 configurations = 84
   cells) with an empty cache: interpreter start-up plus every cell
   computed from scratch;
2. **warm daemon** — the same CLI invocation routed through a running
   daemon (``--server``) whose cache was populated by a first served
   run: the client pays start-up, the daemon answers everything from
   its cache.  The headline ratio is cold CLI over warm daemon and is
   gated at >= 5x;
3. **coalescing** — four concurrent clients each submitting the same
   14-program matrix against a fresh daemon.  The daemon must perform
   the work of ONE client: fresh computations equal the unique cell
   count and every duplicate submission is answered by coalescing onto
   an in-flight job or by the cache pre-pass.

The run fails (non-zero exit) unless the count projection of the
served results — program/target/config, static and dynamic counts,
code bytes — is byte-identical to the direct path's, the warm-daemon
speedup reaches 5x, and the coalescing phase computed nothing twice.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.benchsuite import program_names  # noqa: E402
from repro.exec import CellSpec  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

MIN_WARM_SPEEDUP = 5.0
COALESCE_CLIENTS = 4


def run_cli(argv, timeout=1800):
    """Run a ``repro`` CLI subprocess and return its wall time."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        timeout=timeout,
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise SystemExit(f"repro {argv[0]} exited {proc.returncode}")
    return elapsed


def count_projection(payload):
    """The measurement-only view of a ``repro bench --json`` payload.

    Keeps everything the paper's tables are built from and drops
    timings, cache provenance, and machine facts — the parts that
    legitimately differ between the direct and the served path.
    """
    return [
        {
            "program": cell["program"],
            "target": cell["target"],
            "config": cell["config"],
            "ok": cell["ok"],
            "static_insns": cell["static_insns"],
            "dynamic_insns": cell["dynamic_insns"],
            "dynamic_jumps": cell["dynamic_jumps"],
            "dynamic_nops": cell["dynamic_nops"],
            "code_bytes": cell["code_bytes"],
        }
        for cell in payload["cells"]
    ]


def projection_bytes(json_path):
    payload = json.loads(Path(json_path).read_text())
    return json.dumps(count_projection(payload), sort_keys=True).encode()


class Daemon:
    """A ``repro serve`` subprocess bound to a throwaway socket."""

    def __init__(self, workers, cache_dir, tag):
        self.socket = Path(tempfile.mkdtemp(prefix=f"repro-bench-{tag}-"))
        self.socket = self.socket / "serve.sock"
        self.cache_dir = cache_dir
        env = dict(os.environ, PYTHONPATH=str(SRC))
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                str(self.socket),
                "--workers",
                str(workers),
                "--cache-dir",
                str(cache_dir),
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120
        while not self.socket.exists():
            if self.proc.poll() is not None:
                raise SystemExit("daemon died during start-up")
            if time.monotonic() > deadline:
                raise SystemExit("daemon never bound its socket")
            time.sleep(0.05)

    def stop(self):
        client = ServeClient.try_connect(self.socket)
        if client is not None:
            with client:
                client.shutdown()
        try:
            self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
        shutil.rmtree(self.socket.parent, ignore_errors=True)


def coalescing_phase(workers):
    """Four concurrent clients, one shared 14-program matrix."""
    specs = [
        CellSpec(program=name, target="sparc", replication="jumps")
        for name in program_names()
    ]
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-coalesce-cache-")
    daemon = Daemon(workers, cache_dir, tag="coalesce")
    barrier = threading.Barrier(COALESCE_CLIENTS)
    projections = [None] * COALESCE_CLIENTS
    errors = []

    def one_client(slot):
        try:
            with ServeClient(daemon.socket, timeout=600.0) as client:
                barrier.wait()
                results = client.run_matrix(specs)
                projections[slot] = [
                    (
                        r.spec.label,
                        r.ok,
                        r.measurement.static_insns,
                        r.measurement.dynamic_insns,
                        r.measurement.dynamic_jumps,
                        r.measurement.dynamic_nops,
                    )
                    for r in results
                ]
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(f"client {slot}: {exc!r}")

    threads = [
        threading.Thread(target=one_client, args=(slot,))
        for slot in range(COALESCE_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats_client = ServeClient(daemon.socket, timeout=60.0)
    with stats_client:
        jobs = stats_client.stats()["jobs"]
    daemon.stop()
    shutil.rmtree(cache_dir, ignore_errors=True)

    if errors:
        raise SystemExit("coalescing phase failed:\n" + "\n".join(errors))
    if any(p is None for p in projections):
        raise SystemExit("coalescing phase: a client returned nothing")
    if any(p != projections[0] for p in projections[1:]):
        raise SystemExit("coalescing phase: clients disagree on results")

    unique = len(specs)
    computed = jobs.get("completed", 0) + jobs.get("failed", 0)
    deduplicated = jobs.get("coalesced", 0) + jobs.get("skipped", 0)
    submitted = jobs.get("submitted", 0)
    report = {
        "clients": COALESCE_CLIENTS,
        "matrix_cells": unique,
        "cells_submitted": submitted,
        "computed": computed,
        "coalesced": jobs.get("coalesced", 0),
        "cache_skipped": jobs.get("skipped", 0),
        "work_of_one": computed == unique,
    }
    if computed != unique:
        raise SystemExit(
            f"coalescing phase computed {computed} cells for {unique} "
            f"unique specs — duplicates were not coalesced"
        )
    if deduplicated != (COALESCE_CLIENTS - 1) * unique:
        raise SystemExit(
            f"coalescing phase deduplicated {deduplicated} submissions, "
            f"expected {(COALESCE_CLIENTS - 1) * unique}"
        )
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1)
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_SERVE.json"
    )
    args = parser.parse_args()

    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
    direct_json = scratch / "direct.json"
    served_cold_json = scratch / "served-cold.json"
    served_warm_json = scratch / "served-warm.json"
    try:
        # 1. Cold CLI: fresh interpreter, empty cache, direct path.
        cold_cache = scratch / "cli-cache"
        cold_cli = run_cli(
            [
                "bench",
                "--quiet",
                "--cache-dir",
                str(cold_cache),
                "--json",
                str(direct_json),
            ]
        )
        print(f"cold CLI:          {cold_cli:7.2f}s")

        # 2. Served: first run populates the daemon's cache, the
        #    re-run is answered entirely from it.
        daemon_cache = scratch / "daemon-cache"
        daemon = Daemon(args.workers, daemon_cache, tag="serve")
        try:
            served_cold = run_cli(
                [
                    "bench",
                    "--quiet",
                    "--server",
                    str(daemon.socket),
                    "--json",
                    str(served_cold_json),
                ]
            )
            print(f"daemon first run:  {served_cold:7.2f}s")
            served_warm = run_cli(
                [
                    "bench",
                    "--quiet",
                    "--server",
                    str(daemon.socket),
                    "--json",
                    str(served_warm_json),
                ]
            )
            print(f"warm daemon rerun: {served_warm:7.2f}s")
        finally:
            daemon.stop()

        # 3. Byte-identical count projections across all three runs.
        direct = projection_bytes(direct_json)
        mismatched = [
            name
            for name, path in (
                ("served-cold", served_cold_json),
                ("served-warm", served_warm_json),
            )
            if projection_bytes(path) != direct
        ]
        if mismatched:
            raise SystemExit(
                f"served results diverge from the direct path: {mismatched}"
            )
        print("byte-identical:    yes (direct == served-cold == served-warm)")

        # 4. Coalescing: four clients, the work of one.
        coalescing = coalescing_phase(args.workers)
        print(
            f"coalescing:        {coalescing['cells_submitted']} submitted, "
            f"{coalescing['computed']} computed, "
            f"{coalescing['coalesced']} coalesced, "
            f"{coalescing['cache_skipped']} cache-skipped"
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    speedup = cold_cli / served_warm if served_warm > 0 else float("inf")
    matrix_cells = len(program_names()) * 2 * 3
    payload = {
        "benchmark": "full Table-4/5 matrix via the compilation-service daemon",
        "matrix_cells": matrix_cells,
        "workers": args.workers,
        "machine": {
            "cpu_count": os.cpu_count(),
            "available_cores": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "cold_cli_seconds": round(cold_cli, 3),
        "daemon_first_run_seconds": round(served_cold, 3),
        "warm_daemon_seconds": round(served_warm, 3),
        "speedup_warm_daemon_vs_cold_cli": round(speedup, 2),
        "byte_identical": True,
        "coalescing": coalescing,
        "note": (
            "cold CLI recomputes every cell in a fresh process; the warm "
            "daemon answers the same matrix from its content-addressed "
            "cache, so the ratio is architectural, not core-count-bound"
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"speedup: {payload['speedup_warm_daemon_vs_cold_cli']}x warm daemon"
        f" vs cold CLI -> wrote {args.out}"
    )
    if speedup < MIN_WARM_SPEEDUP:
        raise SystemExit(
            f"warm-daemon speedup {speedup:.2f}x is below the "
            f"{MIN_WARM_SPEEDUP}x acceptance floor"
        )


if __name__ == "__main__":
    main()
