"""Acceptance benchmark for the per-function replication autotuner.

Runs the full autotuning sweep over the paper's 14 benchmark programs
and records the outcome in ``BENCH_TUNE.json`` at the repository root:

1. **headline** — the per-function tuned configuration scores at least
   as well as the paper's best *fixed global* policy on the Table-5/6
   aggregate (mean dynamic change vs SIMPLE), and reports by how much
   it beats the untuned baseline;
2. **verify gate** — every combined per-program winner re-ran under
   ``--verify full`` (the differential execution oracle), so tuned
   output is byte-identical in behavior to the unoptimized program;
   any gate failure fails the bench;
3. **valve silence** — summed over *every* cell the sweep ran
   (candidates, baselines, fixed policies, combined winners),
   ``valve_trips`` must be zero: the §5.2 convergence guard, not the
   backstop valves, terminates replication;
4. **fuzz campaign** — a fresh unbounded campaign (``--fuzz N``
   programs, differential oracle, no ``max_rtls`` workaround) must come
   back with zero failures and zero valve trips.

Usage::

    PYTHONPATH=src python benchmarks/bench_autotune.py [--quick] [--fuzz N]

``--quick`` shrinks the sweep to 3 programs and a reduced grid for the
CI ``tune-smoke`` job; the committed artifact is a full run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.benchsuite.programs import program_names  # noqa: E402
from repro.benchsuite.scoring import format_change  # noqa: E402
from repro.exec import ResultCache  # noqa: E402
from repro.report import format_table  # noqa: E402
from repro.tune import TuneGrid, tune  # noqa: E402
from repro.verify.fuzz import run_campaign  # noqa: E402

QUICK_PROGRAMS = 3
QUICK_FUZZ = 10

VALVE_KEYS = ("valve_trips", "valve_block_trips", "valve_budget_trips")


def machine_facts() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "available_cores": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke: {QUICK_PROGRAMS} programs, reduced grid, "
        f"{QUICK_FUZZ}-program fuzz campaign",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=None,
        help="fuzz-campaign size (default: 200 full, "
        f"{QUICK_FUZZ} with --quick)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_TUNE.json")
    args = parser.parse_args()

    programs = program_names()
    grid = TuneGrid()
    if args.quick:
        programs = programs[:QUICK_PROGRAMS]
        grid = TuneGrid(bounds=(None, 8), orders=("standard", "late"))
    fuzz_count = args.fuzz if args.fuzz is not None else (
        QUICK_FUZZ if args.quick else 200
    )

    failures: list = []

    # ---- 1+2+3: the sweep (winners verified, valves accounted) ----------
    with tempfile.TemporaryDirectory(prefix="repro-bench-tune-") as scratch:
        start = time.perf_counter()
        report = tune(
            programs,
            grid=grid,
            workers=args.workers,
            cache=ResultCache(Path(scratch) / "cache"),
            verify_gate=True,
            on_progress=lambda message: print(f"  {message}"),
        )
        tune_seconds = time.perf_counter() - start

    rows = []
    for program_report in report.programs:
        best_fixed_policy, best_fixed = min(
            program_report.fixed.items(),
            key=lambda item: item[1].dynamic_insns,
        )
        winners = {
            f.function: f.winner.label
            for f in program_report.functions
            if f.improved
        }
        rows.append(
            [
                program_report.program,
                format_change(program_report.baseline.dynamic_change),
                format_change(program_report.tuned.dynamic_change),
                f"{format_change(best_fixed.dynamic_change)} ({best_fixed_policy})",
                ", ".join(f"{k}={v}" for k, v in sorted(winners.items())) or "-",
            ]
        )
        if program_report.tuned.dynamic_insns > best_fixed.dynamic_insns:
            failures.append(
                f"{program_report.program}: tuned dynamic "
                f"{program_report.tuned.dynamic_insns} worse than best fixed "
                f"policy {best_fixed_policy} ({best_fixed.dynamic_insns})"
            )
        if program_report.gate_failure is not None:
            failures.append(
                f"{program_report.program}: verify gate failed — "
                f"{program_report.gate_failure}"
            )

    print()
    print(f"Autotuning {len(programs)} programs, {len(grid)}-point grid")
    print(
        format_table(
            ["program", "Δdyn base", "Δdyn tuned", "Δdyn best fixed", "winners"],
            rows,
        )
    )

    tuned = report.tuned_aggregate
    baseline = report.baseline_aggregate
    fixed = {
        policy: report.fixed_aggregate(policy) for policy in grid.policies
    }
    best_fixed_policy = min(
        fixed, key=lambda policy: fixed[policy].dynamic_change_mean
    )
    print(
        f"aggregate dynamic: tuned {format_change(tuned.dynamic_change_mean)}"
        f" vs baseline {format_change(baseline.dynamic_change_mean)}"
        f" vs best fixed {format_change(fixed[best_fixed_policy].dynamic_change_mean)}"
        f" ({best_fixed_policy})"
    )
    if tuned.dynamic_change_mean > fixed[best_fixed_policy].dynamic_change_mean:
        failures.append(
            "aggregate: tuned dynamic mean "
            f"{tuned.dynamic_change_mean:+.4f}% worse than best fixed "
            f"policy {best_fixed_policy}"
        )

    for key in VALVE_KEYS:
        if report.replication_totals.get(key, 0):
            failures.append(
                f"sweep: {key} = {report.replication_totals[key]} "
                "(the convergence guard should keep valves silent)"
            )
    print(f"sweep valve totals: {report.replication_totals}")

    # ---- 4: fresh unbounded fuzz campaign -------------------------------
    print(f"fuzzing {fuzz_count} programs (unbounded, full oracle)...")
    start = time.perf_counter()
    campaign = run_campaign(fuzz_count, mode="full")
    fuzz_seconds = time.perf_counter() - start
    print(
        f"fuzz campaign: {campaign.programs_run} run, "
        f"{campaign.failures} failures, totals {campaign.totals}"
    )
    if campaign.failures:
        failure = campaign.first_failure or {}
        failures.append(
            f"fuzz: {campaign.failures} failure(s); first at seed "
            f"{failure.get('seed')}: {failure.get('error')}"
        )
    for key in VALVE_KEYS:
        if campaign.totals.get(key, 0):
            failures.append(f"fuzz: {key} = {campaign.totals[key]}")

    payload = {
        "benchmark": "per-function replication autotuner vs fixed global policy",
        "quick": args.quick,
        "machine": machine_facts(),
        "programs": list(programs),
        "grid": {
            "policies": list(grid.policies),
            "bounds": list(grid.bounds),
            "orders": list(grid.orders),
            "points": len(grid),
        },
        "tune_seconds": round(tune_seconds, 3),
        "aggregates": {
            "tuned": tuned.as_dict(),
            "baseline": baseline.as_dict(),
            "fixed": {policy: fixed[policy].as_dict() for policy in fixed},
            "best_fixed_policy": best_fixed_policy,
        },
        "tuned_beats_or_ties_best_fixed": tuned.dynamic_change_mean
        <= fixed[best_fixed_policy].dynamic_change_mean,
        "verify_gate": {
            "mode": "full",
            "gate_failures": [
                p.program for p in report.programs if p.gate_failure
            ],
            "byte_identical": all(
                p.gate_failure is None for p in report.programs
            ),
        },
        "valve_evidence": {
            "sweep_totals": dict(sorted(report.replication_totals.items())),
            "fuzz_campaign": {
                "programs_run": campaign.programs_run,
                "failures": campaign.failures,
                "max_rtls": None,
                "seconds": round(fuzz_seconds, 3),
                "totals": dict(sorted(campaign.totals.items())),
            },
        },
        "programs_detail": [p.as_dict() for p in report.programs],
        "tuned_config": report.config.as_dict(),
        "note": (
            "tuned >= best fixed holds by construction (the fixed global "
            "configuration is a grid point of every function's sweep); the "
            "bench asserts it end-to-end, after the full-verify gate"
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        raise SystemExit("bench_autotune failures:\n" + "\n".join(failures))


if __name__ == "__main__":
    main()
