"""Acceptance benchmark for the parallel cached execution layer.

Runs the full Table-4/5 matrix (14 programs × 2 targets × 3
configurations = 84 cells, no traces) three ways and records the wall
times in ``BENCH_EXEC.json`` at the repository root:

1. **serial cold** — every cell executed inline, no cache (the old
   in-process runner's behaviour on a fresh interpreter);
2. **parallel cold** — :class:`repro.exec.ParallelRunner` on N workers
   with an empty persistent cache;
3. **parallel warm** — the same run again, now fully served from the
   on-disk cache.

Cold parallel speedup is hardware-gated — it scales with available
cores (recorded in the JSON), so a single-core container shows ~1× while
a 4-core machine shows ≥2×.  Warm-cache speedup is architectural and
shows up everywhere.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_exec.py [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.benchsuite import program_names
from repro.exec import CellSpec, ParallelRunner, ResultCache, execute_cell

REPO_ROOT = Path(__file__).resolve().parent.parent

TARGETS = ("sparc", "m68020")
CONFIGS = ("none", "loops", "jumps")


def matrix_specs():
    return [
        CellSpec(program=name, target=target, replication=config)
        for target in TARGETS
        for config in CONFIGS
        for name in program_names()
    ]


def check_all_ok(results, label):
    failed = [r for r in results if not r.ok]
    if failed:
        details = "\n".join(r.spec.label for r in failed)
        raise SystemExit(f"{label}: {len(failed)} cells failed:\n{details}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_EXEC.json"
    )
    args = parser.parse_args()

    specs = matrix_specs()
    print(f"matrix: {len(specs)} cells, workers: {args.workers}")

    # 1. Serial, uncached: one inline execute_cell per matrix cell.
    start = time.perf_counter()
    serial_results = [execute_cell(spec) for spec in specs]
    serial_cold = time.perf_counter() - start
    check_all_ok(serial_results, "serial cold")
    print(f"serial cold:    {serial_cold:7.2f}s")

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        # 2. Parallel, cold cache.
        runner = ParallelRunner(workers=args.workers, cache=ResultCache(cache_dir))
        start = time.perf_counter()
        parallel_results = runner.run(specs)
        parallel_cold = time.perf_counter() - start
        check_all_ok(parallel_results, "parallel cold")
        assert not any(r.cache_hit for r in parallel_results)
        print(f"parallel cold:  {parallel_cold:7.2f}s")

        # Differential sanity: parallel results match the serial run.
        for s, p in zip(serial_results, parallel_results):
            assert s.measurement.output == p.measurement.output, s.spec.label
            assert s.measurement.dynamic_insns == p.measurement.dynamic_insns

        # 3. Parallel, warm cache: everything served from disk.
        warm_runner = ParallelRunner(
            workers=args.workers, cache=ResultCache(cache_dir)
        )
        start = time.perf_counter()
        warm_results = warm_runner.run(specs)
        parallel_warm = time.perf_counter() - start
        check_all_ok(warm_results, "parallel warm")
        hits = sum(r.cache_hit for r in warm_results)
        print(f"parallel warm:  {parallel_warm:7.2f}s ({hits}/{len(specs)} hits)")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "benchmark": "full Table-4/5 matrix via the parallel cached exec layer",
        "matrix_cells": len(specs),
        "workers": args.workers,
        "machine": {
            "cpu_count": os.cpu_count(),
            "available_cores": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "serial_cold_seconds": round(serial_cold, 3),
        "parallel_cold_seconds": round(parallel_cold, 3),
        "parallel_warm_seconds": round(parallel_warm, 3),
        "speedup_cold": round(serial_cold / parallel_cold, 2),
        "speedup_warm": round(serial_cold / parallel_warm, 2),
        "warm_cache_hits": hits,
        "note": (
            "cold speedup is bounded by available cores; "
            "warm speedup is cache-architectural"
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"speedup: cold {payload['speedup_cold']}x, warm {payload['speedup_warm']}x"
        f" -> wrote {args.out}"
    )


if __name__ == "__main__":
    main()
