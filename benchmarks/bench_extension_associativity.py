"""Extension — cache associativity vs. code replication.

The paper's Table 6 uses direct-mapped caches; part of JUMPS' small-cache
penalty is *conflict* misses from the grown code.  This harness compares
direct-mapped against 2-way and 4-way LRU caches of the same (scaled)
sizes: associativity should absorb some of the replication-induced
conflicts while the capacity effect remains.
"""

from __future__ import annotations

from repro.cache import (
    AssociativeCacheConfig,
    CacheConfig,
    simulate_associative_cache,
    simulate_cache,
)
from repro.report import format_table, mean

from conftest import selected_programs

SIZES = (128, 256, 512)
WAYS = (1, 2, 4)


def _stats(traced, config_name, size, ways):
    ratios = []
    costs = []
    for name in selected_programs():
        m = traced[("sparc", config_name, name)]
        if ways == 1:
            result = simulate_cache(m.trace, m.block_fetches, CacheConfig(size=size))
        else:
            result = simulate_associative_cache(
                m.trace,
                m.block_fetches,
                AssociativeCacheConfig(size=size, associativity=ways),
            )
        ratios.append(result.miss_ratio)
        costs.append(result.fetch_cost)
    return ratios, costs


def test_associativity_interaction(benchmark, traced_measurements):
    def build():
        table = {}
        for size in SIZES:
            for ways in WAYS:
                for config in ("none", "jumps"):
                    table[(size, ways, config)] = _stats(
                        traced_measurements, config, size, ways
                    )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)

    print()
    print("Extension: associativity × replication (SPARC, scaled sizes)")
    rows = []
    for size in SIZES:
        for ways in WAYS:
            base_r, base_c = table[(size, ways, "none")]
            jump_r, jump_c = table[(size, ways, "jumps")]
            rows.append(
                [
                    f"{size}B {ways}-way",
                    f"{mean(base_r) * 100:.2f}%",
                    f"{mean(jump_r) * 100:.2f}%",
                    f"{mean([(j - b) / b * 100 for j, b in zip(jump_c, base_c)]):+.2f}%",
                ]
            )
    print(
        format_table(
            ["cache", "SIMPLE miss", "JUMPS miss", "JUMPS Δ fetch cost"], rows
        )
    )

    # Shape: once the cache is big enough to avoid LRU loop-thrashing
    # (at 128 B a loop slightly larger than the cache makes LRU strictly
    # *worse* than direct mapping — a classic effect, visible in the
    # table), higher associativity absorbs the replication-induced
    # conflict misses...
    one_way = mean(table[(512, 1, "jumps")][0])
    four_way = mean(table[(512, 4, "jumps")][0])
    assert four_way <= one_way + 1e-9, (one_way, four_way)
    # ...and the fetch cost of JUMPS is an improvement at the largest
    # size regardless of associativity.
    for ways in WAYS:
        base = table[(512, ways, "none")][1]
        jump = table[(512, ways, "jumps")][1]
        assert mean([(j - b) / b for j, b in zip(jump, base)]) < 0
