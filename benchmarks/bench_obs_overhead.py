"""Overhead budget of the observability layer.

The acceptance bar: with tracing *disabled* (no ambient observer — the
normal state for every measurement run), the instrumentation hooks must
add less than 5% wall time to the compile-optimize-measure pipeline.

The pre-instrumentation pipeline no longer exists to diff against, so
the bound is established constructively: every disabled hook costs one
``repro.obs.active()`` call returning ``None`` (plus a ``None`` check),
so total overhead <= (hook executions) x (cost of one ``active()``
call).  The test counts the hook executions of a real run by tracing it
once, times the bare ``active()`` call, and asserts the product —
with a generous safety factor — stays under the 5% budget.
"""

from __future__ import annotations

from time import perf_counter

from repro.api import compile_and_measure
from repro.obs import active, observing

PROGRAM = "queens"
ROUNDS = 3
#: Headroom multiplier on the estimated hook count: some call sites
#: check ``active()`` more than once per recorded event, counters
#: incremented with ``amount > 1`` are estimated as one touch, and
#: future instrumentation should not immediately bust the budget.
SAFETY_FACTOR = 10


def _pipeline_seconds() -> float:
    start = perf_counter()
    compile_and_measure(PROGRAM, replication="jumps")
    return perf_counter() - start


def _hook_executions() -> int:
    """Estimate of the observability touch points one pipeline run executes.

    Each span costs an enter and an exit; each decision and histogram
    observation one touch.  Counter values are *not* summed — a counter
    incremented by 769193 dynamic instructions is still one ``inc()``
    call — so counters are estimated at the invocation-heavy ceiling,
    ``opt.pass_invocations``-style once-per-recorded-event, via the
    pass-invocation counter plus one touch per counter name.
    """
    with observing() as obs:
        compile_and_measure(PROGRAM, replication="jumps")
    snap = obs.snapshot()
    counters = snap["metrics"]["counters"]
    counter_touches = int(counters.get("opt.pass_invocations", 0)) * 2 + len(
        counters
    )
    histogram_touches = sum(
        h["count"] for h in snap["metrics"]["histograms"].values()
    )
    return (
        2 * len(snap["spans"])
        + len(snap["decisions"])
        + counter_touches
        + histogram_touches
    )


def test_disabled_tracing_overhead_under_5_percent():
    assert active() is None, "overhead baseline needs no ambient observer"
    _pipeline_seconds()  # warm imports and in-process caches

    pipeline = min(_pipeline_seconds() for _ in range(ROUNDS))
    hooks = _hook_executions()

    # Time the disabled hook: one active() call returning None.
    n = 200_000
    start = perf_counter()
    for _ in range(n):
        active()
    per_hook = (perf_counter() - start) / n

    overhead = hooks * SAFETY_FACTOR * per_hook
    assert overhead < 0.05 * pipeline, (
        f"disabled observability too expensive: {hooks} hooks x "
        f"{SAFETY_FACTOR} safety x {per_hook * 1e9:.0f}ns = "
        f"{overhead * 1000:.2f}ms against a {pipeline * 1000:.1f}ms "
        f"pipeline ({overhead / pipeline * 100:.2f}%)"
    )


def test_hook_cost_is_one_global_read(benchmark):
    """The per-touch-point cost with no observer: active() returning None."""
    assert active() is None
    benchmark(active)


def test_enabled_tracing_cost_reported(capsys):
    """Informational: what full tracing costs relative to disabled."""
    _pipeline_seconds()  # warm
    disabled = min(_pipeline_seconds() for _ in range(ROUNDS))
    with observing():
        enabled = min(_pipeline_seconds() for _ in range(ROUNDS))
    with capsys.disabled():
        print(
            f"\n[obs overhead] {PROGRAM}: disabled={disabled:.4f}s "
            f"enabled={enabled:.4f}s "
            f"(+{(enabled / disabled - 1) * 100:.1f}%)"
        )
