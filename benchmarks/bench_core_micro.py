"""Micro-benchmarks of the core machinery itself.

These use pytest-benchmark conventionally (multiple rounds) to time:

* the Floyd/Warshall shortest-path matrix (step 1 of JUMPS),
* one full JUMPS run on a branchy function,
* the Figure-3 optimizer pipeline on a mid-size program,
* the direct-mapped cache simulator's replay loop.
"""

from __future__ import annotations

from repro.benchsuite import PROGRAMS, run_benchmark
from repro.cache import CacheConfig, simulate_cache
from repro.cfg import build_function
from repro.core import ShortestPathMatrix, clone_function, replicate_jumps
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.rtl import parse_insns
from repro.targets import get_target

_BRANCHY = """
  NZ=d[0]?1;
  PC=NZ==0,L2;
  d[1]=1;
  PC=L9;
L2:
  NZ=d[0]?2;
  PC=NZ==0,L3;
  d[1]=2;
  PC=L9;
L3:
  NZ=d[0]?3;
  PC=NZ==0,L4;
  d[1]=3;
  PC=L9;
L4:
  d[1]=4;
L9:
  d[2]=d[1]*2;
  PC=RT;
"""


def _branchy_function():
    return build_function("branchy", parse_insns(_BRANCHY))


def test_shortest_path_matrix(benchmark):
    func = _branchy_function()
    benchmark(ShortestPathMatrix, func)


def test_jumps_replication(benchmark):
    template = _branchy_function()

    def run():
        func = clone_function(template)
        replicate_jumps(func)
        return func

    result = benchmark(run)
    assert result.jump_count() == 0


def test_full_pipeline_wc(benchmark):
    target = get_target("sparc")
    source = PROGRAMS["wc"].source

    def run():
        program = compile_c(source)
        optimize_program(program, target, OptimizationConfig(replication="jumps"))
        return program

    program = benchmark(run)
    assert program.jump_count() == 0


def test_cache_replay(benchmark):
    m = run_benchmark("wc", target="sparc", replication="jumps", trace=True)
    config = CacheConfig(size=1024)
    result = benchmark(
        simulate_cache, m.trace, m.block_fetches, config, False
    )
    assert result.accesses > 0
