"""Table 6 — Δ miss ratio and Δ instruction fetch cost for direct-mapped
caches, with and without context switches.

Paper's finding: miss-ratio deltas are small; JUMPS *increases* misses on
the smallest cache (capacity effects of the grown code) but the total
fetch cost *decreases* for caches that still hold the program, because
fewer instructions execute; context switching changes little.

Two sweeps are reported:

* the paper's original sizes (1/2/4/8 KB) — informative, but our programs
  are ~8× smaller than the paper's (no library code, scaled workloads),
  so every program fits even the smallest cache;
* *scaled* sizes (128/256/512/1024 bytes) keeping the code-size to
  cache-size ratio comparable to the paper's setup — this is where the
  paper's small-cache capacity effect reappears, and where the shape
  assertions are checked.  (DESIGN.md §5 records this substitution.)
"""

from __future__ import annotations

from typing import Dict

from repro.cache import PAPER_CACHE_SIZES, CacheConfig, simulate_multi_cache
from repro.report import format_table, mean

from conftest import TARGETS, selected_programs

SCALED_CACHE_SIZES = (128, 256, 512, 1024)
_CTX = (True, False)


def _sweep(traced, target, config, sizes, ctx):
    """Per size: ([miss ratios...], [fetch costs...]) across the suite.

    One single-pass multi-configuration walk per program covers every
    size at once (engine parity with the reference simulator is asserted
    in ``tests/cache/test_engine_parity.py``).
    """
    ratios = {size: [] for size in sizes}
    costs = {size: [] for size in sizes}
    configs = [CacheConfig(size=size) for size in sizes]
    for name in selected_programs():
        m = traced[(target, config, name)]
        results = simulate_multi_cache(
            m.trace, m.block_fetches, configs, context_switches=ctx
        )
        for size, result in zip(sizes, results):
            ratios[size].append(result.miss_ratio)
            costs[size].append(result.fetch_cost)
    return {size: (ratios[size], costs[size]) for size in sizes}


def _print_tables(table, sizes, title):
    for metric in ("Cache Miss Ratio", "Instruction Fetch Cost"):
        print()
        print(f"Table 6 ({title}): Percent Change in {metric} (vs SIMPLE)")
        headers = ["processor", "ctx sw."] + [
            f"{_size_label(size)} {cfg}"
            for size in sizes
            for cfg in ("LOOPS", "JUMPS")
        ]
        rows = []
        for target in TARGETS:
            for ctx in _CTX:
                row = [target, "on" if ctx else "off"]
                for size in sizes:
                    base_r, base_c = table[(target, ctx, size, "none")]
                    for config in ("loops", "jumps"):
                        ratios, costs = table[(target, ctx, size, config)]
                        if metric == "Cache Miss Ratio":
                            delta = mean(
                                [(r - b) * 100 for r, b in zip(ratios, base_r)]
                            )
                        else:
                            delta = mean(
                                [(c - b) / b * 100 for c, b in zip(costs, base_c)]
                            )
                        row.append(f"{delta:+.2f}%")
                rows.append(row)
        print(format_table(headers, rows))


def _size_label(size: int) -> str:
    return f"{size // 1024}Kb" if size >= 1024 else f"{size}b"


def test_table6_cache_behaviour(benchmark, traced_measurements):
    all_sizes = tuple(SCALED_CACHE_SIZES) + tuple(PAPER_CACHE_SIZES)

    def build() -> Dict[tuple, tuple]:
        table: Dict[tuple, tuple] = {}
        for target in TARGETS:
            for ctx in _CTX:
                for config in ("none", "loops", "jumps"):
                    sweep = _sweep(
                        traced_measurements, target, config, all_sizes, ctx
                    )
                    for size, stats in sweep.items():
                        table[(target, ctx, size, config)] = stats
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    _print_tables(table, SCALED_CACHE_SIZES, "scaled sizes")
    _print_tables(table, PAPER_CACHE_SIZES, "paper sizes")

    # Shape assertions on the scaled sweep:
    # (1) fetch cost under JUMPS improves vs SIMPLE once the program fits
    #     (largest scaled cache), on both processors;
    for target in TARGETS:
        for ctx in _CTX:
            base = table[(target, ctx, 1024, "none")][1]
            jumps = table[(target, ctx, 1024, "jumps")][1]
            delta = mean([(c - b) / b for c, b in zip(jumps, base)])
            assert delta < 0, (target, ctx, delta)
    # (2) miss-ratio effects (either direction) concentrate at the small
    #     end of the sweep: the magnitude of the JUMPS miss-ratio delta on
    #     the smallest cache dominates the largest one, where programs fit
    #     and the delta all but vanishes.
    for target in TARGETS:
        small = mean(
            [
                abs(r - b)
                for r, b in zip(
                    table[(target, False, 128, "jumps")][0],
                    table[(target, False, 128, "none")][0],
                )
            ]
        )
        large = mean(
            [
                abs(r - b)
                for r, b in zip(
                    table[(target, False, 1024, "jumps")][0],
                    table[(target, False, 1024, "none")][0],
                )
            ]
        )
        assert small >= large - 1e-9, (target, small, large)
