"""Ablation — the step-2 heuristic of JUMPS (§4, step 2).

The paper leaves the choice between "favoring returns" and "favoring
loops" to a heuristic.  This harness compares three policies: shortest
sequence (the default), always-favor-returns and always-favor-loops, on
static growth and dynamic savings.

Scores come from :mod:`repro.benchsuite.scoring` — the same code path
the per-function autotuner uses, so a bench row and a tuner decision can
never disagree (a parity test pins this).
"""

from __future__ import annotations

from repro.benchsuite import run_benchmark
from repro.benchsuite.scoring import aggregate_scores, score_measurement
from repro.report import format_table

from conftest import selected_programs

POLICIES = ("shortest", "returns", "loops")


def _as_policy(name):
    from repro.api import POLICIES as P

    return P[name]


def test_policy_ablation(benchmark, suite_measurements):
    def build():
        rows = []
        scores = {policy: [] for policy in POLICIES}
        for name in selected_programs():
            simple = suite_measurements[("sparc", "none", name)]
            row = [name]
            for policy in POLICIES:
                m = run_benchmark(
                    name, target="sparc", replication="jumps", policy=_as_policy(policy)
                )
                score = score_measurement(name, m, simple)
                scores[policy].append(score)
                row.extend(score.formatted())
            rows.append(row)
        return rows, scores

    (rows, scores) = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["program"]
    for p in POLICIES:
        headers += [f"{p} st", f"{p} dyn"]
    print()
    print("Ablation: JUMPS step-2 policy (SPARC, vs SIMPLE)")
    print(format_table(headers, rows))

    # All policies must preserve behaviour and eliminate the jumps; the
    # shortest policy should not replicate more than favoring returns on
    # average (it minimizes growth by construction).
    shortest = aggregate_scores(scores["shortest"])
    returns = aggregate_scores(scores["returns"])
    shortest_static = shortest.static_insns_total / shortest.programs
    returns_static = returns.static_insns_total / returns.programs
    assert shortest_static <= returns_static * 1.05
