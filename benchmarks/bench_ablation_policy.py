"""Ablation — the step-2 heuristic of JUMPS (§4, step 2).

The paper leaves the choice between "favoring returns" and "favoring
loops" to a heuristic.  This harness compares three policies: shortest
sequence (the default), always-favor-returns and always-favor-loops, on
static growth and dynamic savings.
"""

from __future__ import annotations

from repro.benchsuite import run_benchmark
from repro.report import format_table, mean, pct

from conftest import selected_programs

POLICIES = ("shortest", "returns", "loops")


def test_policy_ablation(benchmark, suite_measurements):
    def build():
        rows = []
        for name in selected_programs():
            simple = suite_measurements[("sparc", "none", name)]
            row = [name]
            for policy in POLICIES:
                m = run_benchmark(
                    name, target="sparc", replication="jumps", policy=_as_policy(policy)
                )
                row.append(pct(m.static_insns, simple.static_insns))
                row.append(pct(m.dynamic_insns, simple.dynamic_insns))
            rows.append(row)
        return rows

    def _as_policy(name):
        from repro.api import POLICIES as P

        return P[name]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["program"] + [
        f"{p}({kind})" for p in POLICIES for kind in ("st", "dyn")
    ]
    # Reorder header to match row layout (st, dyn per policy).
    headers = ["program"]
    for p in POLICIES:
        headers += [f"{p} st", f"{p} dyn"]
    print()
    print("Ablation: JUMPS step-2 policy (SPARC, vs SIMPLE)")
    print(format_table(headers, rows))

    # All policies must preserve behaviour and eliminate the jumps; the
    # shortest policy should not replicate more than favoring returns on
    # average (it minimizes growth by construction).
    names = selected_programs()
    shortest_static = mean(
        [
            run_benchmark(n, "sparc", "jumps", policy=_as_policy("shortest")).static_insns
            for n in names
        ]
    )
    returns_static = mean(
        [
            run_benchmark(n, "sparc", "jumps", policy=_as_policy("returns")).static_insns
            for n in names
        ]
    )
    assert shortest_static <= returns_static * 1.05
