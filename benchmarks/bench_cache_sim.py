"""Acceptance benchmark for the streaming dynamic-measurement pipeline.

Compares the two Table-6 cache-simulation pipelines over the benchmark
suite and records the results in ``BENCH_CACHE.json`` at the repository
root:

* **reference** — the raw ``List[int]`` block trace replayed once per
  cache size through :func:`repro.cache.simulate_cache` (the pre-PR
  pipeline: 4 sizes x 2 context-switch settings = 8 full trace walks
  per program/configuration);
* **multi** — the RLE :class:`~repro.ease.trace.CompressedTrace` walked
  **once** with all eight cache states (4 sizes x 2 context-switch
  settings) side by side, fast-forwarding steady-state loop iterations
  (:func:`repro.cache.simulate_multi_cache`).

Every simulation doubles as a differential test: the benchmark exits
non-zero if any ``CacheResult`` field differs between the engines.  The
acceptance bars are a >=3x simulation wall-time reduction on the
four-size sweep and a >=10x peak-trace-memory reduction (compressed vs
raw list); the sink's marginal feed cost over a raw-list append is
reported separately as ``end_to_end_speedup``.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache_sim.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.benchsuite import PROGRAMS, program_names
from repro.cache import (
    PAPER_CACHE_SIZES,
    CacheConfig,
    MultiCacheStats,
    simulate_cache,
    simulate_multi_cache,
)
from repro.ease import measure_program
from repro.ease.trace import RawListSink, RleTraceSink
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

REPO_ROOT = Path(__file__).resolve().parent.parent

PAPER_CONFIGS = [CacheConfig(size=size) for size in PAPER_CACHE_SIZES]
_CTX = (False, True)


def trace_one(name: str, replication: str):
    """Measure one program once, returning (raw trace, fetches)."""
    bench = PROGRAMS[name]
    program = compile_c(bench.source)
    optimize_program(
        program, get_target("sparc"), OptimizationConfig(replication=replication)
    )
    m = measure_program(
        program, get_target("sparc"), stdin=bench.stdin, trace=RawListSink()
    )
    return m.trace, m.block_fetches


#: Timing repetitions per pipeline; best-of-N suppresses scheduler noise.
REPEATS = 3


def feed(sink, raw):
    """Drive ``raw`` through ``sink`` as the interpreter would, timed."""
    emit = sink.emit
    start = time.perf_counter()
    for block_id in raw:
        emit(block_id)
    trace = sink.finish()
    return trace, time.perf_counter() - start


def best_of(fn):
    """Run ``fn`` ``REPEATS`` times; return (last result, min seconds)."""
    seconds = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        seconds.append(time.perf_counter() - start)
    return result, min(seconds)


def fields(result):
    return (result.accesses, result.misses, result.fetch_cost, result.flushes)


def bench_case(label, raw, fetches, parity_failures):
    """Time both pipelines on one trace; returns the per-case record.

    The headline ``speedup`` compares *simulation* wall time (the 8 raw
    trace walks of the reference sweep vs the single compressed-record
    walk of the multi engine).  In production both pipelines receive the
    trace from the interpreter's emit stream — the reference appends
    into a raw list, the streaming pipeline feeds an
    :class:`RleTraceSink` — so the compression work the new pipeline
    actually adds is the sink's *marginal* feed cost over a raw-list
    append; it is recorded per case and charged in the separate
    ``end_to_end_speedup``.  All timings are best-of-``REPEATS``.
    """
    (_, raw_feed_seconds) = min(
        (feed(RawListSink(), raw) for _ in range(REPEATS)), key=lambda r: r[1]
    )
    (compressed, rle_feed_seconds) = min(
        (feed(RleTraceSink(), raw) for _ in range(REPEATS)), key=lambda r: r[1]
    )
    sink_overhead_seconds = max(0.0, rle_feed_seconds - raw_feed_seconds)

    reference, reference_seconds = best_of(
        lambda: {
            (ctx, config.size): simulate_cache(raw, fetches, config, ctx)
            for ctx in _CTX
            for config in PAPER_CONFIGS
        }
    )

    grid = [(ctx, config) for ctx in _CTX for config in PAPER_CONFIGS]
    last_stats = []

    def run_multi():
        stats = MultiCacheStats()
        results = simulate_multi_cache(
            compressed,
            fetches,
            [config for _, config in grid],
            [ctx for ctx, _ in grid],
            stats=stats,
        )
        last_stats[:] = [stats]
        return results

    results, multi_seconds = best_of(run_multi)
    stats = last_stats[0]
    multi = {
        (ctx, config.size): result
        for (ctx, config), result in zip(grid, results)
    }

    for key, want in reference.items():
        if fields(multi[key]) != fields(want):
            parity_failures.append(
                f"{label} ctx={key[0]} size={key[1]}: "
                f"multi={fields(multi[key])} reference={fields(want)}"
            )

    raw_bytes = sys.getsizeof(raw)
    return {
        "case": label,
        "trace_blocks": len(raw),
        "rle_records": compressed.record_count,
        "compression_ratio": round(compressed.compression_ratio, 1),
        "raw_trace_bytes": raw_bytes,
        "compressed_trace_bytes": compressed.nbytes,
        "memory_reduction": round(raw_bytes / compressed.nbytes, 1)
        if compressed.nbytes
        else None,
        "raw_feed_seconds": round(raw_feed_seconds, 4),
        "rle_feed_seconds": round(rle_feed_seconds, 4),
        "sink_overhead_seconds": round(sink_overhead_seconds, 4),
        "reference_seconds": round(reference_seconds, 4),
        "multi_seconds": round(multi_seconds, 4),
        "speedup": round(reference_seconds / multi_seconds, 2)
        if multi_seconds
        else None,
        "fastforward_iters": stats.fastforward_iters,
        "fastforward_hits": stats.fastforward_hits,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: 4 suite programs instead of the full suite",
    )
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_CACHE.json")
    args = parser.parse_args()

    programs = (
        ["wc", "sieve", "bubblesort", "queens"] if args.quick else program_names()
    )
    configs = ("none", "jumps")
    print(
        f"suite: {len(programs)} programs x {configs} x "
        f"{len(PAPER_CACHE_SIZES)} sizes x ctx {_CTX}"
    )

    parity_failures = []
    cases = []
    for name in programs:
        for replication in configs:
            raw, fetches = trace_one(name, replication)
            case = bench_case(
                f"{name}/{replication}", raw, fetches, parity_failures
            )
            cases.append(case)
            print(
                f"  {case['case']:>16}: {case['trace_blocks']:>9} blocks "
                f"-> {case['rle_records']:>5} records "
                f"({case['compression_ratio']:>7.1f}x), "
                f"ref {case['reference_seconds']:7.3f}s, "
                f"multi {case['multi_seconds']:6.3f}s "
                f"-> {case['speedup']}x"
            )

    ref_total = sum(c["reference_seconds"] for c in cases)
    multi_total = sum(c["multi_seconds"] for c in cases)
    # End-to-end additionally charges the sink's marginal cost over a
    # raw-list append to the new pipeline — the compression work the
    # interpreter actually adds (see bench_case docstring).
    overhead_total = sum(c["sink_overhead_seconds"] for c in cases)
    end_to_end_total = multi_total + overhead_total
    raw_bytes = sum(c["raw_trace_bytes"] for c in cases)
    compressed_bytes = sum(c["compressed_trace_bytes"] for c in cases)
    peak_raw = max(c["raw_trace_bytes"] for c in cases)
    peak_compressed = max(c["compressed_trace_bytes"] for c in cases)
    totals = {
        "reference_seconds": round(ref_total, 3),
        "multi_seconds": round(multi_total, 3),
        "sink_overhead_seconds": round(overhead_total, 3),
        "speedup": round(ref_total / multi_total, 2) if multi_total else None,
        "end_to_end_speedup": round(ref_total / end_to_end_total, 2)
        if end_to_end_total
        else None,
        "raw_trace_bytes": raw_bytes,
        "compressed_trace_bytes": compressed_bytes,
        "memory_reduction": round(raw_bytes / compressed_bytes, 1)
        if compressed_bytes
        else None,
        "peak_raw_trace_bytes": peak_raw,
        "peak_compressed_trace_bytes": peak_compressed,
        "peak_memory_reduction": round(peak_raw / peak_compressed, 1)
        if peak_compressed
        else None,
        "fastforward_iters": sum(c["fastforward_iters"] for c in cases),
        "fastforward_hits": sum(c["fastforward_hits"] for c in cases),
    }
    print(
        f"totals: ref {totals['reference_seconds']}s, "
        f"multi {totals['multi_seconds']}s -> {totals['speedup']}x simulation "
        f"({totals['end_to_end_speedup']}x incl. "
        f"{totals['sink_overhead_seconds']}s sink overhead); "
        f"trace memory {totals['memory_reduction']}x smaller "
        f"(peak {totals['peak_memory_reduction']}x)"
    )

    payload = {
        "benchmark": "Table-6 cache simulation: reference vs multi engine",
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "cache_sizes": list(PAPER_CACHE_SIZES),
        "context_switch_settings": [bool(ctx) for ctx in _CTX],
        "programs": len(programs),
        "cases": cases,
        "totals": totals,
        "parity": not parity_failures,
        "parity_failures": parity_failures,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if parity_failures:
        print("ENGINE PARITY FAILED:", "; ".join(parity_failures), file=sys.stderr)
        raise SystemExit(1)
    if not args.quick:
        if totals["speedup"] is not None and totals["speedup"] < 3.0:
            print(
                f"WARNING: sweep speedup {totals['speedup']}x below the 3x bar",
                file=sys.stderr,
            )
        if (
            totals["peak_memory_reduction"] is not None
            and totals["peak_memory_reduction"] < 10.0
        ):
            print(
                f"WARNING: peak memory reduction "
                f"{totals['peak_memory_reduction']}x below the 10x bar",
                file=sys.stderr,
            )


if __name__ == "__main__":
    main()
