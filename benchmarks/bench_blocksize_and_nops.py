"""§5.2's text measurements — basic-block size and delay-slot no-ops.

Paper's finding (SPARC): after code replication about 1.5 more
instructions are found between branches, and 50% of the executed no-op
instructions were eliminated, improving scheduling opportunities for
pipelined and multiple-issue machines.
"""

from __future__ import annotations

from repro.report import format_table, mean

from conftest import CONFIGS, CONFIG_LABEL, selected_programs


def test_blocksize_and_nop_elimination(benchmark, suite_measurements):
    def build():
        rows = []
        for name in selected_programs():
            row = [name]
            for config in CONFIGS:
                m = suite_measurements[("sparc", config, name)]
                row.append(f"{m.insns_between_branches:.2f}")
            for config in CONFIGS:
                m = suite_measurements[("sparc", config, name)]
                row.append(m.dynamic_nops)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["program"] + [
        f"gap {CONFIG_LABEL[c]}" for c in CONFIGS
    ] + [f"nops {CONFIG_LABEL[c]}" for c in CONFIGS]
    print()
    print("§5.2 (SPARC): instructions between branches and executed no-ops")
    print(format_table(headers, rows))

    names = selected_programs()
    simple_gap = mean(
        [suite_measurements[("sparc", "none", n)].insns_between_branches for n in names]
    )
    jumps_gap = mean(
        [suite_measurements[("sparc", "jumps", n)].insns_between_branches for n in names]
    )
    print(f"\naverage instructions between branches: SIMPLE {simple_gap:.2f} "
          f"JUMPS {jumps_gap:.2f} (+{jumps_gap - simple_gap:.2f})")
    assert jumps_gap > simple_gap  # bigger blocks after replication

    simple_nops = sum(
        suite_measurements[("sparc", "none", n)].dynamic_nops for n in names
    )
    jumps_nops = sum(
        suite_measurements[("sparc", "jumps", n)].dynamic_nops for n in names
    )
    print(f"executed no-ops: SIMPLE {simple_nops} JUMPS {jumps_nops} "
          f"({100.0 * (simple_nops - jumps_nops) / max(1, simple_nops):.0f}% eliminated)")
    assert jumps_nops < simple_nops  # replication removes executed no-ops
