"""Acceptance benchmark for the demand-driven step-1 engine (PR 3).

Measures the optimizer's replication hot path — the JUMPS pass and its
step-1 shortest-path share — under both engines and records the results
in ``BENCH_OPT.json`` at the repository root:

1. **Table-3 suite** — the 14 benchmark programs through the full JUMPS
   pipeline, dense vs lazy, with the per-pass time split read off the
   tracer spans (``jumps.sweep`` / ``jumps.step1.shortest_paths``).
2. **Fuzzed functions** — deterministic ≥200-block unstructured CFGs
   (the regime where the dense O(n³) Floyd/Warshall matrix hurts),
   bounded JUMPS runs, dense vs lazy.  The acceptance bar is a ≥2×
   JUMPS wall-time reduction here.
3. **AnalysisManager** — cold (invalidated) vs warm (cached) natural-loop
   queries on the largest fuzzed function.

Every engine comparison doubles as a differential test: the benchmark
exits non-zero if the two engines produce different replication decision
logs or different final RTL anywhere.

Usage::

    PYTHONPATH=src python benchmarks/bench_opt_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro.benchsuite import PROGRAMS, program_names
from repro.cfg import get_analyses
from repro.cfg.block import BasicBlock, Function
from repro.cfg.graph import compute_flow
from repro.core import CodeReplicator, Policy, ReplicationMode, clone_function
from repro.frontend import compile_c
from repro.obs import observing
from repro.opt import OptimizationConfig, optimize_program
from repro.rtl import (
    Assign,
    BinOp,
    Compare,
    CondBranch,
    Const,
    Jump,
    Reg,
    Return,
    format_function,
)
from repro.targets import get_target

REPO_ROOT = Path(__file__).resolve().parent.parent

ENGINES = ("dense", "lazy")


# --------------------------------------------------------------- fuzzed CFGs


def fuzzed_function(n_blocks: int, seed: int) -> Function:
    """A deterministic unstructured CFG in the style of the fuzzer tests.

    Fuel-bounded like ``tests/core/test_random_cfgs.py``: every block
    burns one unit, backward conditional branches stop once the fuel is
    gone, and unconditional jumps (~6% of blocks — Table 2 reports jumps
    are 4-8% of instructions in real code) only go forward.
    """
    rng = random.Random(seed)
    fuel = Reg("d", 6)
    func = Function(f"fuzz{seed}")
    entry = BasicBlock("INIT")
    entry.insns.append(Assign(fuel, Const(n_blocks * 3)))
    for k in range(4):
        entry.insns.append(Assign(Reg("d", k), Const(rng.randint(-9, 9))))
    blocks = [BasicBlock(f"N{i}") for i in range(n_blocks)]
    func.blocks = [entry] + blocks
    for index, block in enumerate(blocks):
        block.insns.append(Assign(fuel, BinOp("-", fuel, Const(1))))
        for _ in range(rng.randint(0, 2)):
            dst = Reg("d", rng.randint(0, 3))
            op = rng.choice(["+", "-", "*", "^", "&", "|"])
            block.insns.append(
                Assign(dst, BinOp(op, Reg("d", rng.randint(0, 3)), Const(rng.randint(-7, 7))))
            )
        is_last = index == n_blocks - 1
        roll = rng.random()
        if is_last or roll < 0.04:
            block.insns.append(Assign(Reg("rv", 0), Reg("d", 0)))
            block.insns.append(Return())
        elif roll < 0.10:  # ~6% unconditional forward jumps
            block.insns.append(Jump(f"N{rng.randint(index + 1, n_blocks - 1)}"))
        elif roll < 0.55:
            target = rng.randint(0, n_blocks - 1)
            if target != index:
                block.insns.append(Compare(fuel, Const(0)))
                block.insns.append(CondBranch(">", f"N{target}"))
        # otherwise: fall through.
    compute_flow(func)
    return func


# ------------------------------------------------------------- measurement


def span_totals(spans):
    """Summed duration per span name."""
    totals = {}
    for span in spans:
        totals[span["name"]] = totals.get(span["name"], 0.0) + span["duration"]
    return totals


def run_suite(engine: str, programs):
    """Full JUMPS pipeline over the suite under one engine."""
    decisions = []
    rtl = {}
    opt_seconds = 0.0
    jumps_seconds = 0.0
    step1_seconds = 0.0
    for name in programs:
        program = compile_c(PROGRAMS[name].source)
        config = OptimizationConfig(replication="jumps", spm_engine=engine)
        with observing() as obs:
            start = time.perf_counter()
            optimize_program(program, get_target("sparc"), config)
            opt_seconds += time.perf_counter() - start
        totals = span_totals(obs.snapshot()["spans"])
        jumps_seconds += totals.get("jumps.sweep", 0.0)
        step1_seconds += totals.get("jumps.step1.shortest_paths", 0.0)
        decisions.extend(obs.decisions.as_dicts())
        rtl[name] = "\n\n".join(
            format_function(f) for f in program.functions.values()
        )
    return {
        "opt_seconds": round(opt_seconds, 4),
        "jumps_seconds": round(jumps_seconds, 4),
        "step1_seconds": round(step1_seconds, 4),
        "step1_share": round(step1_seconds / jumps_seconds, 4)
        if jumps_seconds
        else 0.0,
        "_decisions": decisions,
        "_rtl": rtl,
    }


FUZZ_MAX_RTLS = 16


def run_fuzz_case(func: Function, engine: str):
    """One bounded JUMPS run; returns timings + parity fingerprints.

    The §6 sequence-length bound (``max_rtls``) matters here: without it
    the pass spends most of its time in tentative apply / reducibility /
    undo cycles for long hopeless sequences — work identical under both
    engines — which drowns the step-1 comparison the case exists to make.
    """
    work = clone_function(func)
    replicator = CodeReplicator(
        mode=ReplicationMode.JUMPS,
        policy=Policy.SHORTEST,
        max_replications_per_function=80,
        max_function_blocks=len(func.blocks) * 2,
        max_rtls=FUZZ_MAX_RTLS,
        engine=engine,
    )
    with observing() as obs:
        start = time.perf_counter()
        replicator.run(work)
        wall = time.perf_counter() - start
    totals = span_totals(obs.snapshot()["spans"])
    return {
        "seconds": wall,
        "step1_seconds": totals.get("jumps.step1.shortest_paths", 0.0),
        "decisions": obs.decisions.as_dicts(),
        "rtl": format_function(work),
        "dijkstra_runs": obs.metrics.counters.get("sssp.dijkstra_runs", 0),
    }


def bench_analysis_cache(func: Function, repeats: int):
    """Cold (invalidated) vs warm (cached) loop queries on one function."""
    am = get_analyses(func)
    start = time.perf_counter()
    for _ in range(repeats):
        am.invalidate()
        am.loops()
    cold = time.perf_counter() - start
    am.invalidate()
    with observing(spans=False) as obs:
        start = time.perf_counter()
        for _ in range(repeats):
            am.loops()
        warm = time.perf_counter() - start
        hits = obs.metrics.counters.get("analysis.cache.hit", 0)
        misses = obs.metrics.counters.get("analysis.cache.miss", 0)
    return {
        "repeats": repeats,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 6),
        "speedup": round(cold / warm, 1) if warm else None,
        "cache_hits": hits,
        "cache_misses": misses,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: 4 suite programs, one 200-block fuzz case",
    )
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_OPT.json")
    args = parser.parse_args()

    parity_failures = []

    # 1. The Table-3 suite through the full pipeline.
    suite_programs = (
        ["wc", "sieve", "bubblesort", "queens"] if args.quick else program_names()
    )
    print(f"suite: {len(suite_programs)} programs x {ENGINES}")
    suite = {}
    for engine in ENGINES:
        suite[engine] = run_suite(engine, suite_programs)
        print(
            f"  {engine:>5}: opt {suite[engine]['opt_seconds']:6.2f}s, "
            f"jumps {suite[engine]['jumps_seconds']:6.3f}s "
            f"(step1 {suite[engine]['step1_share']:.0%})"
        )
    if suite["dense"]["_decisions"] != suite["lazy"]["_decisions"]:
        parity_failures.append("suite decision logs differ")
    if suite["dense"]["_rtl"] != suite["lazy"]["_rtl"]:
        parity_failures.append("suite final RTL differs")
    for engine in ENGINES:
        suite[engine].pop("_decisions")
        suite[engine].pop("_rtl")

    # 2. Fuzzed ≥200-block functions: the dense-matrix worst case.
    sizes = [200] if args.quick else [200, 300, 400]
    fuzz_cases = []
    for i, size in enumerate(sizes):
        func = fuzzed_function(size, seed=1000 + i)
        case = {"blocks": len(func.blocks), "seed": 1000 + i, "max_rtls": FUZZ_MAX_RTLS}
        runs = {engine: run_fuzz_case(func, engine) for engine in ENGINES}
        if runs["dense"]["decisions"] != runs["lazy"]["decisions"]:
            parity_failures.append(f"fuzz[{size}] decision logs differ")
        if runs["dense"]["rtl"] != runs["lazy"]["rtl"]:
            parity_failures.append(f"fuzz[{size}] final RTL differs")
        for engine in ENGINES:
            case[f"{engine}_seconds"] = round(runs[engine]["seconds"], 4)
            case[f"{engine}_step1_seconds"] = round(
                runs[engine]["step1_seconds"], 4
            )
        case["dijkstra_runs"] = runs["lazy"]["dijkstra_runs"]
        case["speedup"] = (
            round(runs["dense"]["seconds"] / runs["lazy"]["seconds"], 2)
            if runs["lazy"]["seconds"]
            else None
        )
        fuzz_cases.append(case)
        print(
            f"  fuzz {case['blocks']:>4} blocks: dense {case['dense_seconds']:6.3f}s, "
            f"lazy {case['lazy_seconds']:6.3f}s -> {case['speedup']}x "
            f"({case['dijkstra_runs']} dijkstra runs)"
        )

    # 3. AnalysisManager cold vs warm on the largest fuzzed function.
    cache = bench_analysis_cache(
        fuzzed_function(sizes[-1], seed=2000), repeats=20 if args.quick else 100
    )
    print(
        f"  analysis cache: cold {cache['cold_seconds']}s, "
        f"warm {cache['warm_seconds']}s -> {cache['speedup']}x"
    )

    payload = {
        "benchmark": "JUMPS hot path: dense vs lazy step-1 engine",
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "suite": {"programs": len(suite_programs), "engines": suite},
        "fuzz": fuzz_cases,
        "analysis_cache": cache,
        "decision_parity": not parity_failures,
        "parity_failures": parity_failures,
        "min_fuzz_speedup": min(c["speedup"] for c in fuzz_cases),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if parity_failures:
        print("DECISION PARITY FAILED:", "; ".join(parity_failures), file=sys.stderr)
        raise SystemExit(1)
    if payload["min_fuzz_speedup"] < 2.0 and not args.quick:
        print(
            f"WARNING: fuzz speedup {payload['min_fuzz_speedup']}x below the 2x bar",
            file=sys.stderr,
        )


if __name__ == "__main__":
    main()
