"""Acceptance benchmark for the compiled EASE execution engine.

Runs the Table-5 benchmark suite (optimized, ``jumps`` replication — the
configuration whose dynamic counts the paper reports) through both EASE
execution engines and records the results in ``BENCH_EASE.json`` at the
repository root:

* **interp** — the closure interpreter
  (:class:`repro.ease.interp.Interpreter`), one Python call per executed
  RTL: the differential reference;
* **compiled** — :class:`repro.ease.compile.CompiledInterpreter`, each
  function translated once into a single Python code object (blocks
  fused, registers as locals, compare/branch fusion, direct
  compiled-to-compiled calls).

Every benchmarked program doubles as a differential test: both engines
run once traced and must agree on output, exit code, globals image,
per-block execution counts, interpreted calls, *and* the compressed
block-trace stream; the benchmark exits non-zero on any mismatch or on
any per-function compile fallback.  Timings are best-of-``REPEATS``
untraced runs; one-time translation cost is reported separately as
``compile_seconds`` (it is paid once per program, not per run).

The acceptance bar is a >=5x reduction in total EASE execution wall
time across the suite.

Usage::

    PYTHONPATH=src python benchmarks/bench_ease_compile.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.benchsuite import PROGRAMS, program_names
from repro.ease import CompiledInterpreter, Interpreter
from repro.frontend import compile_c
from repro.opt import OptimizationConfig, optimize_program
from repro.targets import get_target

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Timing repetitions per engine; best-of-N suppresses scheduler noise.
REPEATS = 3


def optimized(name: str):
    bench = PROGRAMS[name]
    program = compile_c(bench.source)
    optimize_program(
        program, get_target("sparc"), OptimizationConfig(replication="jumps")
    )
    return program, bench.stdin


def observe(interp, stdin):
    result = interp.run(stdin=stdin, trace=True)
    return {
        "output": result.output,
        "exit_code": result.exit_code,
        "globals_image": result.globals_image,
        "block_counts": dict(result.block_counts),
        "calls_executed": result.calls_executed,
        "trace": result.trace,
    }


def best_of(fn):
    seconds = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        seconds.append(time.perf_counter() - start)
    return min(seconds)


def bench_case(name: str, parity_failures):
    program, stdin = optimized(name)
    reference = Interpreter(program)
    compiled = CompiledInterpreter(program)

    # --- parity gate (traced: the Table-6 stream must also match) ----
    want = observe(reference, stdin)
    got = observe(compiled, stdin)
    for field in (
        "output",
        "exit_code",
        "globals_image",
        "block_counts",
        "calls_executed",
        "trace",
    ):
        if got[field] != want[field]:
            parity_failures.append(f"{name}: {field} diverged")
    for func, reason in compiled.fallbacks.items():
        parity_failures.append(f"{name}: fallback {func}: {reason}")

    # --- timing (untraced, the Table-5 measurement configuration) ----
    interp_seconds = best_of(lambda: reference.run(stdin=stdin))
    compiled_seconds = best_of(lambda: compiled.run(stdin=stdin))

    return {
        "program": name,
        "interp_seconds": round(interp_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "speedup": round(interp_seconds / compiled_seconds, 2)
        if compiled_seconds
        else None,
        "compile_seconds": round(compiled.compile_seconds, 4),
        "compiled_functions": len(compiled.compiled_functions),
        "blocks_fused": compiled.blocks_fused,
        "fallbacks": dict(compiled.fallbacks),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: 4 suite programs instead of the full suite",
    )
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_EASE.json")
    args = parser.parse_args()

    programs = (
        ["wc", "sieve", "queens", "quicksort"] if args.quick else program_names()
    )
    print(f"suite: {len(programs)} programs, best-of-{REPEATS} per engine")

    parity_failures = []
    cases = []
    for name in programs:
        case = bench_case(name, parity_failures)
        cases.append(case)
        print(
            f"  {case['program']:>12}: interp {case['interp_seconds']:7.3f}s, "
            f"compiled {case['compiled_seconds']:7.3f}s "
            f"-> {case['speedup']}x "
            f"(translate {case['compile_seconds']:.3f}s, "
            f"{case['blocks_fused']} blocks fused)"
        )

    interp_total = sum(c["interp_seconds"] for c in cases)
    compiled_total = sum(c["compiled_seconds"] for c in cases)
    totals = {
        "interp_seconds": round(interp_total, 3),
        "compiled_seconds": round(compiled_total, 3),
        "speedup": round(interp_total / compiled_total, 2)
        if compiled_total
        else None,
        "compile_seconds": round(sum(c["compile_seconds"] for c in cases), 3),
        "blocks_fused": sum(c["blocks_fused"] for c in cases),
        "compiled_functions": sum(c["compiled_functions"] for c in cases),
    }
    print(
        f"totals: interp {totals['interp_seconds']}s, "
        f"compiled {totals['compiled_seconds']}s "
        f"-> {totals['speedup']}x execution "
        f"(one-time translation {totals['compile_seconds']}s)"
    )

    payload = {
        "benchmark": "EASE execution: closure interpreter vs compiled engine",
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "configuration": {"target": "sparc", "replication": "jumps"},
        "repeats": REPEATS,
        "programs": len(programs),
        "cases": cases,
        "totals": totals,
        "parity": not parity_failures,
        "parity_failures": parity_failures,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if parity_failures:
        print("ENGINE PARITY FAILED:", "; ".join(parity_failures), file=sys.stderr)
        raise SystemExit(1)
    if not args.quick and totals["speedup"] is not None and totals["speedup"] < 5.0:
        print(
            f"WARNING: suite speedup {totals['speedup']}x below the 5x bar",
            file=sys.stderr,
        )


if __name__ == "__main__":
    main()
