"""Shared machinery for the experiment harnesses.

Each ``bench_table*.py`` regenerates one table or figure of the paper.
Measurements are memoized inside :mod:`repro.benchsuite.runner`, so the
full suite compiles and interprets each (program, target, configuration)
combination exactly once per pytest session.

Environment knobs:

* ``REPRO_BENCH_PROGRAMS`` — comma-separated subset of program names, for
  quick runs (e.g. ``REPRO_BENCH_PROGRAMS=wc,sieve pytest benchmarks/``).
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.benchsuite import program_names, run_benchmark
from repro.ease import Measurement

TARGETS = ("sparc", "m68020")
CONFIGS = ("none", "loops", "jumps")
CONFIG_LABEL = {"none": "SIMPLE", "loops": "LOOPS", "jumps": "JUMPS"}


def selected_programs() -> List[str]:
    override = os.environ.get("REPRO_BENCH_PROGRAMS")
    if override:
        return [name.strip() for name in override.split(",") if name.strip()]
    return program_names()


@pytest.fixture(scope="session")
def suite_measurements() -> Dict[tuple, Measurement]:
    """Measurements for every (target, config, program), without traces."""
    results: Dict[tuple, Measurement] = {}
    for target in TARGETS:
        for config in CONFIGS:
            for name in selected_programs():
                results[(target, config, name)] = run_benchmark(
                    name, target=target, replication=config
                )
    return results


@pytest.fixture(scope="session")
def traced_measurements() -> Dict[tuple, Measurement]:
    """Measurements with block traces (for the cache experiments)."""
    results: Dict[tuple, Measurement] = {}
    for target in TARGETS:
        for config in CONFIGS:
            for name in selected_programs():
                results[(target, config, name)] = run_benchmark(
                    name, target=target, replication=config, trace=True
                )
    return results
