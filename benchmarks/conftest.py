"""Shared machinery for the experiment harnesses.

Each ``bench_table*.py`` regenerates one table or figure of the paper.
The whole (program × target × configuration) matrix is produced in one
:func:`repro.benchsuite.run_matrix` call, which fans out over worker
processes and consults the persistent on-disk result cache, then seeds
the in-process memo — so the full suite compiles and interprets each
combination exactly once per pytest session (or not at all when the
cache is warm).

Environment knobs:

* ``REPRO_BENCH_PROGRAMS`` — comma-separated subset of program names, for
  quick runs (e.g. ``REPRO_BENCH_PROGRAMS=wc,sieve pytest benchmarks/``).
* ``REPRO_BENCH_PARALLEL`` — worker processes for the matrix (default
  ``0`` = inline; ``repro bench --parallel N`` is the CLI equivalent).
* ``REPRO_CACHE_DIR`` — persistent result cache directory (honoured by
  the runner itself; unset = no on-disk caching).
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.benchsuite import program_names, run_matrix
from repro.ease import Measurement

TARGETS = ("sparc", "m68020")
CONFIGS = ("none", "loops", "jumps")
CONFIG_LABEL = {"none": "SIMPLE", "loops": "LOOPS", "jumps": "JUMPS"}


def selected_programs() -> List[str]:
    override = os.environ.get("REPRO_BENCH_PROGRAMS")
    if override:
        return [name.strip() for name in override.split(",") if name.strip()]
    return program_names()


def _workers() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLEL", "0") or 0)


@pytest.fixture(scope="session")
def suite_measurements() -> Dict[tuple, Measurement]:
    """Measurements for every (target, config, program), without traces."""
    return run_matrix(
        names=selected_programs(),
        targets=TARGETS,
        configs=CONFIGS,
        workers=_workers(),
    )


@pytest.fixture(scope="session")
def traced_measurements() -> Dict[tuple, Measurement]:
    """Measurements with block traces (for the cache experiments)."""
    return run_matrix(
        names=selected_programs(),
        targets=TARGETS,
        configs=CONFIGS,
        trace=True,
        workers=_workers(),
    )
