"""Table 5 — static and dynamic instruction counts per program.

Paper's finding: LOOPS grows static code a few percent and saves ~2.4%
dynamically; JUMPS grows static code by tens of percent (~53% average)
and saves more dynamically (~5.7% average on the SPARC); LOOPS achieves
roughly 45% of JUMPS' dynamic savings.
"""

from __future__ import annotations

from repro.report import format_table, mean, pct

from conftest import TARGETS, selected_programs


def _rows_for(measurements, target):
    rows = []
    for name in selected_programs():
        simple = measurements[(target, "none", name)]
        loops = measurements[(target, "loops", name)]
        jumps = measurements[(target, "jumps", name)]
        rows.append(
            [
                name,
                simple.static_insns,
                pct(loops.static_insns, simple.static_insns),
                pct(jumps.static_insns, simple.static_insns),
                simple.dynamic_insns,
                pct(loops.dynamic_insns, simple.dynamic_insns),
                pct(jumps.dynamic_insns, simple.dynamic_insns),
            ]
        )
    return rows


def test_table5_instruction_counts(benchmark, suite_measurements):
    rows_by_target = benchmark.pedantic(
        lambda: {t: _rows_for(suite_measurements, t) for t in TARGETS},
        rounds=1,
        iterations=1,
    )
    headers = [
        "program",
        "SIMPLE(st)",
        "LOOPS(st)",
        "JUMPS(st)",
        "SIMPLE(dyn)",
        "LOOPS(dyn)",
        "JUMPS(dyn)",
    ]
    for target in TARGETS:
        print()
        print(f"Table 5 ({target}): Number of Static and Dynamic Instructions")
        print(format_table(headers, rows_by_target[target]))

    for target in TARGETS:
        names = selected_programs()
        simple_dyn = [suite_measurements[(target, "none", n)].dynamic_insns for n in names]
        loops_dyn = [suite_measurements[(target, "loops", n)].dynamic_insns for n in names]
        jumps_dyn = [suite_measurements[(target, "jumps", n)].dynamic_insns for n in names]
        loops_saving = mean(
            [(s - l) / s for s, l in zip(simple_dyn, loops_dyn)]
        )
        jumps_saving = mean(
            [(s - j) / s for s, j in zip(simple_dyn, jumps_dyn)]
        )
        # The paper's headline shape: JUMPS saves dynamically at least as
        # much as LOOPS, and both save something.
        assert jumps_saving >= loops_saving >= 0, (target, loops_saving, jumps_saving)
        assert jumps_saving > 0.005

        # Static: JUMPS never ends up smaller than LOOPS on average (code
        # replication trades size for speed).
        simple_st = [suite_measurements[(target, "none", n)].static_insns for n in names]
        loops_st = [suite_measurements[(target, "loops", n)].static_insns for n in names]
        jumps_st = [suite_measurements[(target, "jumps", n)].static_insns for n in names]
        assert mean(jumps_st) >= mean(loops_st) * 0.98
