"""Table 4 — percent of instructions that are unconditional jumps.

Paper's finding: on SIMPLE code, unconditional jumps are ~3-5% of static
and ~3-4% of dynamic instructions; LOOPS removes roughly 40% of the
dynamic ones; JUMPS leaves practically none (~0.1%).
"""

from __future__ import annotations

from repro.report import format_table, mean, stddev

from conftest import CONFIG_LABEL, CONFIGS, TARGETS, selected_programs


def _jump_percentages(measurements, target, config, kind):
    values = []
    for name in selected_programs():
        m = measurements[(target, config, name)]
        if kind == "static":
            values.append(100.0 * m.static_jumps / m.static_insns)
        else:
            values.append(100.0 * m.dynamic_jumps / max(1, m.dynamic_insns))
    return values


def test_table4_jump_frequency(benchmark, suite_measurements):
    def build():
        rows = []
        for target in TARGETS:
            for stat in ("average", "std. deviation"):
                row = [target if stat == "average" else "", stat]
                for kind in ("static", "dynamic"):
                    for config in CONFIGS:
                        values = _jump_percentages(
                            suite_measurements, target, config, kind
                        )
                        agg = mean(values) if stat == "average" else stddev(values)
                        row.append(f"{agg:.2f}%")
                rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["processor", ""] + [
        f"{kind[:3]}.{CONFIG_LABEL[c]}" for kind in ("static", "dynamic") for c in CONFIGS
    ]
    print()
    print("Table 4: Percent of Instructions that are Unconditional Jumps")
    print(format_table(headers, rows))

    # Shape assertions mirroring the paper's observations.
    for target in TARGETS:
        simple = mean(_jump_percentages(suite_measurements, target, "none", "dynamic"))
        loops = mean(_jump_percentages(suite_measurements, target, "loops", "dynamic"))
        jumps = mean(_jump_percentages(suite_measurements, target, "jumps", "dynamic"))
        assert simple > loops > jumps, (target, simple, loops, jumps)
        assert jumps < 0.5  # "practically no unconditional jumps are left"
