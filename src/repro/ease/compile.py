"""The compiled EASE execution engine: RTL → Python code objects.

The closure interpreter (:class:`~repro.ease.interp.Interpreter`) pays
one Python call per executed RTL plus one per block terminator.  This
module removes both: each function is translated *once* into the source
of a single Python function — straight-line basic blocks fused into
runs of plain statements, registers promoted to Python locals, branches
lowered to a ``while`` dispatch loop over a binary decision tree keyed
on block index — and ``compile()``d into one code object.  Executing a
block then costs inline local-variable arithmetic instead of a closure
call per RTL.

Semantics are the interpreter's, by construction:

* every arithmetic template mirrors :func:`repro.rtl.arith.eval_binop`
  exactly (32-bit wrap-around inlined branch-free, shift counts masked
  with the declared ``Machine.shift_mask`` model, C-style division via
  the *same* ``_div_trunc``/``_rem_trunc`` helpers);
* step accounting debits one block-step at every basic-block entry —
  including blocks fused into a predecessor's dispatch arm — so
  :class:`StepLimitExceeded` fires on exactly the same executed block
  as the interpreter (regression-tested at the limit boundary);
* per-block execution counts and the block-level trace stream are
  emitted at block entry in execution order, so a traced run feeds the
  existing :class:`~repro.ease.trace.RleTraceSink` a byte-identical
  stream and every Table-5/6 number is unchanged;
* calls flush promoted registers back to the machine state, delegate to
  the interpreter's ``_do_call`` (callee-save snapshot, builtins, stack
  checks), and reload only ``rv`` — exactly the callee-save contract.

Functions the compiler declines — pathologically large block counts
(the 4000-block replication-valve shapes), empty bodies, or any
codegen surprise — fall back *per function* to the interpreter's
threaded-code path, with a decision-log event and an
``ease.compile.fallbacks`` metric recording the reason; the two engines
interoperate freely through ``_do_call`` within one run.

Engine selection follows the established pattern: ``--ease-engine
{compiled,interp}`` / ``REPRO_EASE_ENGINE`` / :func:`make_interpreter`,
with the closure interpreter kept as the differential reference
(`tests/ease/test_compiled_parity.py` is the parity gate).
"""

from __future__ import annotations

import os
from struct import pack_into as _pack_into
from struct import unpack_from as _unpack_from
from time import perf_counter
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ..cfg.block import Function, Program
from ..obs import ReplicationDecision
from ..obs import active as _active_observer
from ..rtl.arith import SHIFT_MASK, _div_trunc, _rem_trunc, wrap32
from ..rtl.expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from ..rtl.insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Nop,
    Return,
)
from .interp import Interpreter, StepLimitExceeded
from .runtime import call_builtin, is_builtin
from .trace import TraceSink

__all__ = [
    "CompiledInterpreter",
    "CompileDeclined",
    "resolve_ease_engine",
    "make_interpreter",
    "EASE_ENGINES",
    "DEFAULT_EASE_ENGINE",
    "MAX_COMPILED_BLOCKS",
]

#: Engines selectable via ``--ease-engine`` / ``REPRO_EASE_ENGINE``.
EASE_ENGINES = ("compiled", "interp")

#: The default execution engine for dynamic measurement.  The closure
#: interpreter remains the differential reference (and the engine the
#: verification oracle runs on).
DEFAULT_EASE_ENGINE = "compiled"

#: Functions with more basic blocks than this are declined and fall
#: back to the interpreter: generating and ``compile()``ing a dispatch
#: body for a replication-valve-sized CFG costs more than it saves.
MAX_COMPILED_BLOCKS = 1024

_WRAP_LO = -(1 << 31)


def resolve_ease_engine(engine: Optional[str] = None) -> str:
    """Pick the EASE engine: argument > ``REPRO_EASE_ENGINE`` > compiled."""
    chosen = engine or os.environ.get("REPRO_EASE_ENGINE") or DEFAULT_EASE_ENGINE
    if chosen not in EASE_ENGINES:
        raise ValueError(
            f"unknown EASE engine {chosen!r}; expected one of {EASE_ENGINES}"
        )
    return chosen


def make_interpreter(
    program: Program,
    engine: Optional[str] = None,
    **kwargs,
) -> Interpreter:
    """Build the selected execution engine for ``program``.

    ``engine`` is ``"compiled"``, ``"interp"`` or ``None`` (defer to
    ``REPRO_EASE_ENGINE`` and ultimately the default); remaining keyword
    arguments go to the engine constructor (``mem_size``, ``max_steps``).
    """
    if resolve_ease_engine(engine) == "compiled":
        return CompiledInterpreter(program, **kwargs)
    return Interpreter(program, **kwargs)


class CompileDeclined(Exception):
    """Internal: this function shape should use the interpreter instead."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


def _is_atom(text: str) -> bool:
    """True for expression strings safe to duplicate (names, literals)."""
    return text.isidentifier() or text.isdigit() or (
        text.startswith("(-") and text.endswith(")") and text[2:-1].isdigit()
    )


def _static_footprint(func: Function) -> List[Tuple[str, int]]:
    """Every register ``func`` touches, minus rv — its callee-save set.

    Derivable from the RTL alone (no compilation needed), and identical
    to the compiled function's promoted-register set: a direct call
    site uses it to save/restore exactly the slots the callee can
    disturb.
    """
    seen: Dict[Tuple[str, int], None] = {}
    for block in func.blocks:
        for insn in block.insns:
            for reg in insn.used_regs():
                seen[(reg.bank, reg.index)] = None
            defined = insn.defined_reg()
            if defined is not None:
                seen[(defined.bank, defined.index)] = None
    seen.pop(("rv", 0), None)
    return list(seen)


class _FunctionCompiler:
    """Generates the Python source of one function's execution body."""

    def __init__(
        self,
        interp: "CompiledInterpreter",
        func: Function,
        traced: bool,
    ) -> None:
        self.interp = interp
        self.func = func
        self.traced = traced
        self.temp_counter = 0
        #: (bank, index) pairs referenced by the function, collected by a
        #: whole-function pre-scan *before* codegen — loaded into locals
        #: on entry, flushed at call sites and on exit.  The scan must be
        #: complete up front: a call site flushes every cached register,
        #: and codegen order is not execution order.
        self.regs_used: Dict[Tuple[str, int], None] = {}
        self.banks_used: Dict[str, None] = {}
        #: Block indices actually emitted (reachable); only these get
        #: execution counters.
        self.emitted: Set[int] = set()
        self.blocks_fused = 0
        self.uses_unpack = False
        self.uses_pack = False
        self.uses_call = False
        self.uses_builtin = False
        #: Reverse map of register locals, for compare/branch fusion.
        self._local_names: Dict[str, Tuple[str, int]] = {}
        #: Per-block: is cc live after the block's terminator?
        self.cc_live_out: List[bool] = []
        #: The current block's fusable Compare (see :meth:`block_body`).
        self._fuse_insn: Optional[Insn] = None
        self._fused_operands: Optional[Tuple[str, str]] = None
        #: Registers redefined between the fused Compare and its branch.
        self._fuse_written: Set[Tuple[str, int]] = set()
        #: Callee names referenced as ``_x_{name}`` globals; the compile
        #: pass injects the executors after every function is compiled.
        self.direct_calls: Dict[str, None] = {}

    # ------------------------------------------------------------ helpers

    def _temp(self) -> str:
        self.temp_counter += 1
        return f"_t{self.temp_counter}"

    def _reg(self, bank: str, index: int) -> str:
        self.regs_used[(bank, index)] = None
        self.banks_used[bank] = None
        name = f"_R_{bank}_{index}"
        self._local_names[name] = (bank, index)
        return name

    def _wrap_pre(self, text: str, pre: List[str]) -> str:
        """Signed-32 wrap of ``text`` as statements; returns the temp.

        Statement form — mask, then a rarely-taken sign-fix branch —
        measures faster than the branch-free ``((x + 2^31) & mask) -
        2^31`` expression, and matches :func:`wrap32` bit for bit.
        """
        temp = self._temp()
        pre.append(f"{temp} = {text} & 4294967295")
        pre.append(f"if {temp} >= 2147483648: {temp} -= 4294967296")
        return temp

    def _bind(self, text: str, pre: List[str]) -> str:
        """Materialize a non-atomic expression into a temp."""
        if _is_atom(text):
            return text
        temp = self._temp()
        pre.append(f"{temp} = {text}")
        return temp

    # ------------------------------------------------------------ expressions

    def expr(self, node: Expr, pre: List[str]) -> str:
        """Python source for ``node``; prelude statements go to ``pre``."""
        if isinstance(node, Const):
            value = node.value
            if not _WRAP_LO <= value < -_WRAP_LO:
                # The interpreter carries out-of-range constants through
                # eval_binop's per-op wrapping; our inline templates
                # assume in-range operands, so decline rather than risk
                # a divergence (the front end never emits these).
                raise CompileDeclined("constant outside signed-32 range")
            return str(value) if value >= 0 else f"(-{-value})"
        if isinstance(node, Reg):
            return self._reg(node.bank, node.index)
        if isinstance(node, Sym):
            # Link-time constant; the base constructor already resolved
            # every symbol (unknown ones raised there).
            return str(self.interp.symaddr[node.name])
        if isinstance(node, Local):
            offset = self.func.frame[node.name][0]
            return "fp" if offset == 0 else f"(fp + {offset})"
        if isinstance(node, Mem):
            addr = self.expr(node.addr, pre)
            if node.width == "B":
                return f"mem[{addr}]"
            # One struct call replaces the interpreter's per-byte
            # assembly: ``<H`` is its unsigned word read, ``<i`` its
            # sign-fixed long read, bit for bit.
            self.uses_unpack = True
            if node.width == "W":
                return f"_up('<H', mem, {addr})[0]"
            return f"_up('<i', mem, {addr})[0]"
        if isinstance(node, BinOp):
            left = self.expr(node.left, pre)
            right = self.expr(node.right, pre)
            op = node.op
            if op in ("+", "-", "*"):
                return self._wrap_pre(f"({left}) {op} ({right})", pre)
            if op in ("&", "|", "^"):
                # Bitwise ops on in-range signed-32 values stay in range.
                return f"(({left}) {op} ({right}))"
            if op == "<<":
                return self._wrap_pre(
                    f"({left}) << (({right}) & {SHIFT_MASK})", pre
                )
            if op == ">>":
                # Arithmetic shift of an in-range value stays in range.
                return f"(({left}) >> (({right}) & {SHIFT_MASK}))"
            if op == "/":
                if isinstance(node.right, Const) and node.right.value > 0:
                    # Truncating division by a known positive divisor
                    # inlines branchily; the quotient magnitude cannot
                    # exceed |dividend|, so no wrap is needed.
                    value = self._bind(left, pre)
                    c = node.right.value
                    return (
                        f"(-((-{value}) // {c}) if {value} < 0"
                        f" else {value} // {c})"
                    )
                return self._wrap_pre(f"_div(({left}), ({right}))", pre)
            if op == "%":
                # |remainder| < |divisor| <= 2^31, already in range.
                if isinstance(node.right, Const) and node.right.value > 0:
                    value = self._bind(left, pre)
                    c = node.right.value
                    return (
                        f"({value} % {c} if {value} >= 0"
                        f" else -((-{value}) % {c}))"
                    )
                return f"_rem(({left}), ({right}))"
            raise CompileDeclined(f"unknown binary operator {op!r}")
        if isinstance(node, UnOp):
            operand = self.expr(node.operand, pre)
            if node.op == "-":
                return self._wrap_pre(f"-({operand})", pre)
            if node.op == "~":
                return f"(~({operand}))"
            raise CompileDeclined(f"unknown unary operator {node.op!r}")
        raise CompileDeclined(f"cannot compile expression {node!r}")

    # ------------------------------------------------------------ instructions

    def insn(self, node: Insn, out: List[str]) -> None:
        if isinstance(node, Assign):
            pre: List[str] = []
            src = self.expr(node.src, pre)
            if isinstance(node.dst, Reg):
                out.extend(pre)
                out.append(f"{self._reg(node.dst.bank, node.dst.index)} = {src}")
                return
            addr = self.expr(node.dst.addr, pre)
            width = node.dst.width
            out.extend(pre)
            if width == "B":
                out.append(f"mem[{addr}] = ({src}) & 255")
                return
            # Single struct call; the masked value matches the
            # interpreter's byte-by-byte little-endian store exactly.
            self.uses_pack = True
            if width == "W":
                out.append(f"_pk('<H', mem, {addr}, ({src}) & 65535)")
                return
            out.append(f"_pk('<I', mem, {addr}, ({src}) & 4294967295)")
            return
        if isinstance(node, Compare):
            pre = []
            left = self.expr(node.left, pre)
            right = self.expr(node.right, pre)
            out.extend(pre)
            if node is self._fuse_insn:
                left = self._fuse_operand(left, self._fuse_written, out)
                right = self._fuse_operand(right, self._fuse_written, out)
                self._fused_operands = (left, right)
                return
            left = self._bind(left, out)
            right = self._bind(right, out)
            cc = self._reg("cc", 0)
            out.append(f"{cc} = ({left} > {right}) - ({left} < {right})")
            return
        if isinstance(node, Call):
            rv = self._reg("rv", 0)  # calls define rv
            name = node.func
            if name not in self.interp._functions and is_builtin(name):
                # Builtins read the arg bank (plus memory/stdio, which
                # are always current) and write rv directly — no
                # callee-save snapshot, no step accounting, exactly the
                # interpreter's builtin fast path.  Flush only the
                # cached arg registers and keep rv in its local.
                self.uses_builtin = True
                for (bank, index) in self.regs_used:
                    if bank == "arg":
                        out.append(f"_K_{bank}[{index}] = _R_{bank}_{index}")
                out.append(f"{rv} = _w32(_builtin(state, {name!r}, {node.nargs}))")
                return
            # Flush every promoted register so the callee sees current
            # state; the callee-save contract then guarantees each bank
            # except rv is back to the flushed value on return — reload
            # only rv.
            self.uses_call = True
            for (bank, index) in self.regs_used:
                out.append(f"_K_{bank}[{index}] = _R_{bank}_{index}")
            callee = self.interp.program.functions.get(name)
            if callee is not None:
                # Direct compiled-to-compiled call: the whole _do_call
                # protocol inlined, with the step budget threaded as a
                # parameter instead of four attribute accesses.  Only
                # the callee's footprint registers the caller does NOT
                # cache need bank saves: cached slots were just flushed
                # (their locals stay authoritative — the next consumer
                # of any cached slot re-flushes first), and a compiled
                # callee's bank delta is confined to its own footprint
                # plus rv.  ``_x_{name}`` is injected after the compile
                # pass; ``None`` (fallback callee) takes the generic
                # path.
                self.direct_calls[name] = None
                footprint = _static_footprint(callee)
                saves = [
                    (self._temp(), bank, index)
                    for bank, index in footprint
                    if (bank, index) not in self.regs_used
                ]
                for _temp, bank, _index in saves:
                    self.banks_used[bank] = None  # preamble binds _K_{bank}
                out.append(f"if _x_{name} is not None:")
                for temp, bank, index in saves:
                    out.append(f"    {temp} = _K_{bank}[{index}]")
                out.append(f"    _fb = state.fp - {callee.frame_size + 32}")
                out.append("    if _fb <= state.heap_ptr:")
                out.append(
                    "        raise MemoryError('interpreted stack overflow')"
                )
                out.append("    _ncalls += 1")
                out.append(
                    f"    _steps = _x_{name}(interp, state, result, _fb, _steps)"
                )
                for temp, bank, index in saves:
                    out.append(f"    _K_{bank}[{index}] = {temp}")
                out.append("else:")
                out.append("    interp._steps_left = _steps")
                out.append(f"    _call(state, {name!r}, {node.nargs})")
                out.append("    _steps = interp._steps_left")
            else:
                out.append("interp._steps_left = _steps")
                out.append(f"_call(state, {name!r}, {node.nargs})")
                out.append("_steps = interp._steps_left")
            out.append(f"{rv} = _K_rv[0]")
            return
        if isinstance(node, Nop):
            return  # counted via the block, no effect
        raise CompileDeclined(f"cannot compile instruction {node!r}")

    # ------------------------------------------------------------ blocks

    @staticmethod
    def _reads_cc(insn: Insn) -> bool:
        """Conservative: does executing ``insn`` observe cc?

        Calls count as readers — the callee inherits the caller's banks
        under the callee-save model and could branch on the inherited
        condition codes before setting them.
        """
        if isinstance(insn, Call):
            return True
        return any(
            reg.bank == "cc" and reg.index == 0 for reg in insn.used_regs()
        )

    @staticmethod
    def _writes_cc(insn: Insn) -> bool:
        defined = insn.defined_reg()
        return defined is not None and defined.bank == "cc" and defined.index == 0

    def _cc_liveness(self) -> List[bool]:
        """Per block: is cc read on some path after the terminator?

        Backward dataflow over the function CFG with the single cc
        register.  Returns (live out of a function) are ``False`` — the
        caller's condition codes are restored by the call protocol.
        """
        blocks = self.func.blocks
        n = len(blocks)
        index_of = {block.label: i for i, block in enumerate(blocks)}
        succs: List[List[int]] = []
        summary: List[Tuple[bool, bool]] = []  # (reads before write, writes)
        for i, block in enumerate(blocks):
            term = block.terminator
            s: List[int] = []
            if term is None:
                if i + 1 < n:
                    s.append(i + 1)
            elif isinstance(term, Jump):
                s.append(index_of[term.target])
            elif isinstance(term, CondBranch):
                s.append(index_of[term.target])
                if i + 1 < n:
                    s.append(i + 1)
            elif isinstance(term, IndirectJump):
                s.extend(index_of[label] for label in term.targets)
            succs.append(s)
            reads = writes = False
            for insn in block.insns:
                if self._reads_cc(insn):
                    reads = True
                    break
                if self._writes_cc(insn):
                    writes = True
                    break
            summary.append((reads, writes))
        live_in = [False] * n
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                reads, writes = summary[i]
                out = any(live_in[s] for s in succs[i])
                new = reads or (out and not writes)
                if new != live_in[i]:
                    live_in[i] = new
                    changed = True
        return [any(live_in[s] for s in succs[i]) for i in range(n)]

    def _fusable_compare(self, index: int) -> Optional[Insn]:
        """The block's last Compare, if its cc def dies at the branch.

        Fusable when the last cc writer in the block is a Compare and
        nothing after it observes cc except the block's own terminator
        (served directly by the fused relation test), with cc dead out
        of the block.  The generated code then tests the operands
        directly and skips materializing the sign value.
        """
        if self.cc_live_out[index]:
            return None
        block = self.func.blocks[index]
        last_writer = None
        for insn in block.insns:
            if self._writes_cc(insn):
                last_writer = insn
        if not isinstance(last_writer, Compare):
            return None
        seen = False
        for insn in block.insns:
            if insn is last_writer:
                seen = True
                continue
            if seen and not insn.is_transfer() and self._reads_cc(insn):
                return None
        return last_writer

    def _fuse_operand(
        self, text: str, written: Set[Tuple[str, int]], out: List[str]
    ) -> str:
        """An operand expression valid at the block's terminator.

        Constants and single-assignment temps are stable as-is; a
        register local survives unless something after the Compare
        redefines it; anything else (memory reads, address arithmetic)
        is pinned into a temp at the Compare's program point.
        """
        pair = self._local_names.get(text)
        if pair is not None:
            if pair not in written:
                return text
        elif _is_atom(text):
            return text
        temp = self._temp()
        out.append(f"{temp} = {text}")
        return temp

    def collect_regs(self) -> None:
        """Pre-scan every instruction for the function's register set.

        Must run before any codegen: call sites flush the *complete*
        cached-register set, and generation order is not execution
        order, so discovering registers lazily would leave stale bank
        values visible to callees.
        """
        for block in self.func.blocks:
            for insn in block.insns:
                for reg in insn.used_regs():
                    self._reg(reg.bank, reg.index)
                defined = insn.defined_reg()
                if defined is not None:
                    self._reg(defined.bank, defined.index)

    def block_body(self, index: int, out: List[str]) -> None:
        """Emit block ``index``'s entry accounting and fused ops."""
        self.emitted.add(index)
        func = self.func
        block = func.blocks[index]
        gid = self.interp.global_block_id(func.name, index)
        out.append("_steps -= 1")
        out.append("if _steps < 0:")
        out.append(f"    raise StepLimitExceeded({self._limit_message!r})")
        out.append(f"_c{index} += 1")
        if self.traced:
            out.append(f"_emit({gid})")
        # Compare/branch fusion: when the block ends in a conditional
        # branch fed by a Compare whose cc value dies at the branch, the
        # branch tests the operands directly and the sign value is never
        # materialized.  Restricting to CondBranch terminators keeps the
        # operand evaluation (and any fault it would raise) in place.
        self._fuse_insn = None
        self._fused_operands = None
        self._fuse_written = set()
        if isinstance(block.terminator, CondBranch):
            fuse = self._fusable_compare(index)
            if fuse is not None:
                self._fuse_insn = fuse
                seen = False
                for insn in block.insns:
                    if insn is fuse:
                        seen = True
                    elif seen and not insn.is_transfer():
                        defined = insn.defined_reg()
                        if defined is not None:
                            self._fuse_written.add((defined.bank, defined.index))
        for insn in block.insns:
            if not insn.is_transfer():
                self.insn(insn, out)

    @property
    def _limit_message(self) -> str:
        return f"exceeded {self.interp.max_steps} block steps"

    # ------------------------------------------------------------ layout

    def plan(self) -> Tuple[List[int], Dict[int, int]]:
        """Pick dispatch arms and count predecessors.

        A block needs its own dispatch arm when it is the entry, a
        conditional/indirect branch target, or has more than one
        predecessor.  Every other reachable block is reached through
        exactly one unconditional edge (fall-through or jump) and is
        fused into that predecessor's arm.
        """
        func = self.func
        n = len(func.blocks)
        index_of = {block.label: i for i, block in enumerate(func.blocks)}
        preds: Dict[int, int] = {i: 0 for i in range(n)}
        forced: Set[int] = {0}
        for i, block in enumerate(func.blocks):
            term = block.terminator
            if term is None:
                if i + 1 >= n:
                    raise CompileDeclined("block falls off the end")
                preds[i + 1] += 1
            elif isinstance(term, Jump):
                preds[index_of[term.target]] += 1
            elif isinstance(term, CondBranch):
                target = index_of[term.target]
                preds[target] += 1
                forced.add(target)
                if i + 1 < n:
                    preds[i + 1] += 1
            elif isinstance(term, IndirectJump):
                for label in term.targets:
                    target = index_of[label]
                    preds[target] += 1
                    forced.add(target)
            elif not isinstance(term, Return):
                raise CompileDeclined(f"cannot compile terminator {term!r}")
        arms = sorted(
            i for i in range(n) if i in forced or preds[i] >= 2
        )
        return arms, preds

    def arm_body(
        self, start: int, arm_set: Set[int], out: List[str]
    ) -> None:
        """Emit the chain of blocks starting at arm ``start``.

        The chain follows unconditional single-predecessor edges
        (fall-through and jumps), fusing each such block inline; every
        path ends in a transfer marker (``GOTO n`` / ``GOTODYN`` /
        ``RETURN``, resolved by :meth:`_finalize_arm`) or a raise.
        """
        func = self.func
        n = len(func.blocks)
        index_of = {block.label: i for i, block in enumerate(func.blocks)}
        visited: Set[int] = set()
        index = start
        while True:
            if index in visited:  # pragma: no cover - defensive
                raise CompileDeclined("cyclic fuse chain")
            visited.add(index)
            if index != start:
                self.blocks_fused += 1
            self.block_body(index, out)
            term = func.blocks[index].terminator
            if term is None:
                follow = index + 1
            elif isinstance(term, Jump):
                follow = index_of[term.target]
            elif isinstance(term, Return):
                out.append("RETURN")
                return
            elif isinstance(term, CondBranch):
                target = index_of[term.target]
                if self._fused_operands is not None:
                    left, right = self._fused_operands
                    out.append(f"if {left} {term.rel} {right}:")
                else:
                    out.append(f"if {self._reg('cc', 0)} {term.rel} 0:")
                out.append(f"    GOTO {target}")
                if index + 1 >= n:
                    # Falling through past the last block is the same
                    # runtime error as in the interpreter.
                    out.append(
                        "raise IndexError("
                        f"{func.name + ': block ' + func.blocks[index].label + ' falls off the end'!r})"
                    )
                    return
                follow = index + 1
            elif isinstance(term, IndirectJump):
                pre: List[str] = []
                value = self._bind(self.expr(term.addr, pre), pre)
                out.extend(pre)
                targets = tuple(index_of[label] for label in term.targets)
                out.append(f"if not 0 <= {value} < {len(targets)}:")
                out.append(
                    "    raise IndexError(f\"indirect jump index "
                    f"{{{value}}} out of range in {func.name}\")"
                )
                body = ", ".join(str(t) for t in targets)
                out.append(f"_b = ({body},)[{value}]")
                out.append("GOTODYN")
                return
            else:  # pragma: no cover - plan() already declined
                raise CompileDeclined(f"cannot compile terminator {term!r}")
            if follow in arm_set:
                out.append(f"GOTO {follow}")
                return
            index = follow

    def _finalize_arm(
        self, start: int, lines: List[str], ret_arm: int
    ) -> Tuple[List[str], bool]:
        """Resolve transfer markers; thread self-loops.

        An arm none of whose transfers target itself lowers ``GOTO``
        to ``_b = n; continue`` against the outer dispatch loop.  An
        arm with a backedge to its own head — the shape block
        replication manufactures for loops — is wrapped in an inner
        ``while True`` so the backedge becomes a bare ``continue``,
        skipping the dispatch tree entirely on the hot path; its other
        exits ``break`` to the dispatcher, and returns go through the
        synthetic ``ret_arm`` (whose body is a lone outer ``break``).
        Returns the lines and whether ``ret_arm`` is needed.
        """
        self_goto = f"GOTO {start}"
        if not any(line.lstrip() == self_goto for line in lines):
            out: List[str] = []
            for line in lines:
                stripped = line.lstrip()
                pad = line[: len(line) - len(stripped)]
                if stripped.startswith("GOTO "):
                    out.append(f"{pad}_b = {stripped[5:]}")
                    out.append(f"{pad}continue")
                elif stripped == "RETURN":
                    out.append(f"{pad}break")
                elif stripped == "GOTODYN":
                    out.append(f"{pad}continue")
                else:
                    out.append(line)
            return out, False
        out = ["while True:"]
        used_ret = False
        for line in lines:
            stripped = line.lstrip()
            pad = "    " + line[: len(line) - len(stripped)]
            if stripped == self_goto:
                out.append(f"{pad}continue")
            elif stripped.startswith("GOTO "):
                out.append(f"{pad}_b = {stripped[5:]}")
                out.append(f"{pad}break")
            elif stripped == "RETURN":
                out.append(f"{pad}_b = {ret_arm}")
                out.append(f"{pad}break")
                used_ret = True
            elif stripped == "GOTODYN":
                out.append(f"{pad}break")
            else:
                out.append("    " + line)
        return out, used_ret

    def dispatch_tree(
        self, arms: List[int], bodies: Dict[int, List[str]], indent: str
    ) -> List[str]:
        """A binary decision tree over arm indices; leaves are arm bodies."""
        if len(arms) == 1:
            return [indent + line for line in bodies[arms[0]]]
        mid = len(arms) // 2
        lines = [f"{indent}if _b < {arms[mid]}:"]
        lines.extend(self.dispatch_tree(arms[:mid], bodies, indent + "    "))
        lines.append(f"{indent}else:")
        lines.extend(self.dispatch_tree(arms[mid:], bodies, indent + "    "))
        return lines

    # ------------------------------------------------------------ assembly

    def generate(self) -> str:
        """The complete generated source of this function's executor."""
        func = self.func
        n = len(func.blocks)
        if n == 0:
            raise CompileDeclined("empty function")
        if n > self.interp.max_compiled_blocks:
            raise CompileDeclined(f"{n} blocks exceeds compile limit")
        self.collect_regs()
        self.cc_live_out = self._cc_liveness()
        arms, _preds = self.plan()
        arm_set = set(arms)
        # ``n`` doubles as the synthetic return arm: self-loop arms break
        # out with ``_b = n`` and this arm's lone ``break`` ends the run.
        ret_arm = n
        need_ret = False
        bodies: Dict[int, List[str]] = {}
        for arm in arms:
            body: List[str] = []
            self.arm_body(arm, arm_set, body)
            bodies[arm], used_ret = self._finalize_arm(arm, body, ret_arm)
            need_ret = need_ret or used_ret
        tree_arms = list(arms)
        if need_ret:
            tree_arms.append(ret_arm)
            bodies[ret_arm] = ["break"]

        lines: List[str] = [
            f"def __ease_exec(interp, state, result, frame_base, _steps):",
            "    mem = state.mem",
            "    _regs = state.regs",
        ]
        for bank in self.banks_used:
            lines.append(f"    _K_{bank} = _regs[{bank!r}]")
        lines.append(f"    _counts = result._counts_for({func.name!r}, {n})")
        if self.traced:
            lines.append("    _emit = interp._sink.emit")
        if self.uses_unpack:
            lines.append("    _up = _unpack_from")
        if self.uses_pack:
            lines.append("    _pk = _pack_into")
        if self.uses_call:
            lines.append("    _call = interp._do_call")
        lines.append("    _saved_fp = state.fp")
        lines.append("    state.fp = frame_base")
        lines.append("    fp = frame_base")
        if self.direct_calls:
            lines.append("    _ncalls = 0")
        counters = sorted(self.emitted)
        for chunk_start in range(0, len(counters), 16):
            chunk = counters[chunk_start : chunk_start + 16]
            lines.append(
                "    " + " = ".join(f"_c{i}" for i in chunk) + " = 0"
            )
        for (bank, index) in self.regs_used:
            lines.append(f"    _R_{bank}_{index} = _K_{bank}[{index}]")
        lines.append("    try:")
        lines.append("        _b = 0")
        lines.append("        while True:")
        lines.extend(self.dispatch_tree(tree_arms, bodies, "            "))
        lines.append("    finally:")
        lines.append("        state.fp = _saved_fp")
        if self.direct_calls:
            lines.append("        if _ncalls: result.calls_executed += _ncalls")
        for i in counters:
            lines.append(f"        if _c{i}: _counts[{i}] += _c{i}")
        for (bank, index) in self.regs_used:
            lines.append(f"        _K_{bank}[{index}] = _R_{bank}_{index}")
        lines.append("    return _steps")
        return "\n".join(lines) + "\n"


class CompiledInterpreter(Interpreter):
    """Executes RTL through per-function generated Python code objects.

    Construction links the program and builds the interpreter's
    threaded-code blocks first (they are the per-function fallback and
    the branch-target metadata source), then compiles each function's
    untraced executor.  Traced executors — identical except for the
    per-block ``RleTraceSink.emit`` call — are generated lazily on the
    first traced run, so Table-5 measurements never pay for them.
    """

    def __init__(
        self,
        program: Program,
        mem_size: int = 1 << 22,
        max_steps: int = 200_000_000,
        max_compiled_blocks: int = MAX_COMPILED_BLOCKS,
    ) -> None:
        self.max_compiled_blocks = max_compiled_blocks
        self._plain: Dict[str, Callable] = {}
        self._traced: Dict[str, Callable] = {}
        self._active: Dict[str, Callable] = {}
        self._footprints: Dict[str, List[Tuple[str, int]]] = {}
        #: function name -> decline reason for every fallback.
        self.fallbacks: Dict[str, str] = {}
        self.blocks_fused = 0
        self.compile_seconds = 0.0
        self._traced_ready = False
        #: (exec namespace, direct-callee names, traced?) per compiled
        #: function — the link table for direct compiled-to-compiled
        #: calls, resolved after each compile pass (callees may compile
        #: after their callers, or fall back at any point).
        self._exec_links: List[Tuple[dict, Dict[str, None], bool]] = []
        super().__init__(program, mem_size=mem_size, max_steps=max_steps)
        self._compile_all(traced=False)
        self._active = self._plain
        self._report_compile_metrics()

    # ------------------------------------------------------------ compilation

    def _compile_all(self, traced: bool) -> None:
        table = self._traced if traced else self._plain
        start = perf_counter()
        for func in self.program.functions.values():
            if traced and func.name in self.fallbacks:
                continue  # declined shapes stay interpreted in both modes
            try:
                table[func.name] = self._pycompile(func, traced)
            except CompileDeclined as declined:
                self._register_fallback(func.name, declined.reason)
            except (RecursionError, SyntaxError, MemoryError) as exc:
                # Codegen surprises must never take the run down: the
                # interpreter executes anything the linker accepted.
                self._register_fallback(
                    func.name, f"codegen-error: {type(exc).__name__}"
                )
        # Link pass: resolve every direct-call global against what this
        # pass actually compiled.  A ``None`` executor (declined callee)
        # routes that call site through the generic _do_call path.
        for namespace, callees, link_traced in self._exec_links:
            if link_traced == traced:
                for callee in callees:
                    namespace[f"_x_{callee}"] = table.get(callee)
        if traced:
            self._traced_ready = True
        self.compile_seconds += perf_counter() - start

    def _pycompile(self, func: Function, traced: bool) -> Callable:
        generator = _FunctionCompiler(self, func, traced)
        source = generator.generate()
        namespace = {
            "StepLimitExceeded": StepLimitExceeded,
            "_div": _div_trunc,
            "_rem": _rem_trunc,
            "_unpack_from": _unpack_from,
            "_pack_into": _pack_into,
            "_w32": wrap32,
            "_builtin": call_builtin,
        }
        code = compile(source, f"<ease-compiled:{func.name}>", "exec")
        exec(code, namespace)
        self._exec_links.append((namespace, generator.direct_calls, traced))
        if not traced:
            self.blocks_fused += generator.blocks_fused
            # The callee-save footprint: a compiled function can change
            # no bank slot outside its own cached registers (nested
            # calls restore everything else themselves), so _do_call
            # need only save/restore these — rv excluded, it carries
            # the return value.
            self._footprints[func.name] = [
                pair for pair in generator.regs_used if pair != ("rv", 0)
            ]
        return namespace["__ease_exec"]

    def _register_fallback(self, name: str, reason: str) -> None:
        # A traced-pass decline of an already-compiled function would be
        # a bug (same codegen); record the first reason only.
        self.fallbacks.setdefault(name, reason)
        self._plain.pop(name, None)
        self._traced.pop(name, None)
        self._footprints.pop(name, None)
        # Unlink: direct call sites to this function take the generic
        # path from now on (linked namespaces may already exist).
        key = f"_x_{name}"
        for namespace, callees, _link_traced in self._exec_links:
            if name in callees:
                namespace[key] = None
        obs = _active_observer()
        if obs is not None:
            obs.metrics.inc("ease.compile.fallbacks")
            if obs.decisions.enabled:
                obs.decisions.record(
                    ReplicationDecision(
                        function=name,
                        block="",
                        target="",
                        mode="ease",
                        policy="compile",
                        outcome="ease_fallback",
                        reason=reason,
                    )
                )

    def _report_compile_metrics(self) -> None:
        obs = _active_observer()
        if obs is None:
            return
        obs.metrics.inc("ease.compile.functions", len(self._plain))
        obs.metrics.inc("ease.compiled.blocks_fused", self.blocks_fused)
        obs.metrics.inc(
            "ease.compile.time_ms", round(self.compile_seconds * 1000.0, 3)
        )

    @property
    def compiled_functions(self) -> List[str]:
        return sorted(self._plain)

    # ------------------------------------------------------------ execution

    def run(
        self,
        stdin: bytes = b"",
        trace: Union[bool, TraceSink] = False,
        entry: str = "main",
    ):
        traced = not (trace is None or trace is False)
        if traced and not self._traced_ready:
            start = len(self.fallbacks)
            self._compile_all(traced=True)
            if len(self.fallbacks) != start:  # pragma: no cover - defensive
                # A function that compiled untraced but declined traced
                # would leave the two modes inconsistent; fall back fully.
                for name in list(self._plain):
                    if name not in self._traced:
                        self._register_fallback(name, "traced-codegen-error")
        self._active = self._traced if traced else self._plain
        return super().run(stdin=stdin, trace=trace, entry=entry)

    def _run_function(self, state, name, result, frame_base) -> None:
        executor = self._active.get(name)
        if executor is None:
            super()._run_function(state, name, result, frame_base)
            return
        self._current_result = result
        # The step budget travels as a parameter between compiled frames
        # (direct calls never touch the attribute); sync it at this
        # boundary so interpreted frames above and below see the debits.
        self._steps_left = executor(
            self, state, result, frame_base, self._steps_left
        )

    def _do_call(self, state, name: str, nargs: int) -> None:
        footprint = self._footprints.get(name)
        if footprint is None:
            # Builtins, interpreter-fallback functions, unknown names:
            # the inherited path (full bank snapshot) handles them.
            super()._do_call(state, name, nargs)
            return
        # A compiled callee touches only its footprint (nested calls
        # restore everything but rv themselves), so callee-save costs
        # O(registers actually used) instead of O(all banks).
        regs = state.regs
        saved = [
            (regs[bank], index, regs[bank][index]) for bank, index in footprint
        ]
        result = self._current_result
        result.calls_executed += 1
        frame_base = state.fp - self._functions[name].frame_size - 32
        if frame_base <= state.heap_ptr:
            raise MemoryError("interpreted stack overflow")
        self._run_function(state, name, result, frame_base)
        for values, index, value in saved:
            values[index] = value
