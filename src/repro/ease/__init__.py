"""EASE-like measurement: RTL interpreter, compiled engine, and counting."""

from .compile import (
    DEFAULT_EASE_ENGINE,
    EASE_ENGINES,
    CompiledInterpreter,
    make_interpreter,
    resolve_ease_engine,
)
from .interp import ExecutionResult, Interpreter, MachineState, StepLimitExceeded
from .measure import Measurement, measure_program
from .pipeline import (
    PipelineModel,
    PipelineResult,
    measure_pipeline,
    pipeline_cost,
)
from .runtime import ProgramExit, is_builtin

__all__ = [
    "DEFAULT_EASE_ENGINE",
    "EASE_ENGINES",
    "CompiledInterpreter",
    "make_interpreter",
    "resolve_ease_engine",
    "ExecutionResult",
    "Interpreter",
    "MachineState",
    "StepLimitExceeded",
    "Measurement",
    "measure_program",
    "PipelineModel",
    "PipelineResult",
    "measure_pipeline",
    "pipeline_cost",
    "ProgramExit",
    "is_builtin",
]
