"""EASE-like measurement: RTL interpreter, runtime, and counting."""

from .interp import ExecutionResult, Interpreter, MachineState, StepLimitExceeded
from .measure import Measurement, measure_program
from .pipeline import (
    PipelineModel,
    PipelineResult,
    measure_pipeline,
    pipeline_cost,
)
from .runtime import ProgramExit, is_builtin

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "MachineState",
    "StepLimitExceeded",
    "Measurement",
    "measure_program",
    "PipelineModel",
    "PipelineResult",
    "measure_pipeline",
    "pipeline_cost",
    "ProgramExit",
    "is_builtin",
]
