"""The RTL interpreter — the execution half of the EASE substitute.

Programs are *linked* (globals laid out in a flat byte-addressed memory,
relocations patched) and each basic block is compiled once into a list of
Python closures (threaded code), so repeated execution is reasonably fast.

Machine model:

* registers are 32-bit signed integers, organized in banks (``d``/``a``
  for the 68020, ``r`` for the SPARC, ``v`` virtual, ``arg``/``rv`` for
  the calling convention, ``cc`` for the condition codes);
* memory is a flat bytearray: null guard page, globals, heap (bump
  allocated by ``malloc``), and a downward-growing stack of frames;
* calls use callee-saved semantics: the interpreter snapshots all banks at
  a call and restores everything but ``rv`` on return (DESIGN.md records
  this simplification — real code would save/restore in prologues);
* an ``IndirectJump`` transfers to ``targets[value]`` where ``value`` is
  its (bounds-checked by construction) index expression.

Execution records, per function, how many times each basic block ran, and
optionally a global block-level trace that the cache simulator expands
into instruction fetch addresses.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..cfg.block import BasicBlock, Function, Program
from ..rtl.arith import eval_binop, eval_unop, wrap32
from ..rtl.expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from ..rtl.insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Nop,
    Return,
)
from .runtime import ProgramExit, call_builtin, is_builtin
from .trace import TraceSink, make_sink

__all__ = ["Interpreter", "MachineState", "ExecutionResult", "StepLimitExceeded"]

_REG_BANK_SIZES = {"d": 16, "a": 16, "r": 32, "arg": 16, "rv": 2, "cc": 2}


class StepLimitExceeded(RuntimeError):
    """The program ran longer than the configured block-step limit."""


class MachineState:
    """Registers + memory + I/O of one program run."""

    def __init__(
        self,
        mem_size: int,
        stdin: bytes,
        bank_sizes: Optional[Dict[str, int]] = None,
    ) -> None:
        self.mem = bytearray(mem_size)
        self.regs: Dict[str, List[int]] = {
            bank: [0] * size
            for bank, size in (bank_sizes or _REG_BANK_SIZES).items()
        }
        self.fp = 0
        self.heap_ptr = 0
        self.stack_limit = 0  # heap must stay below this
        self.stdin = stdin
        self.stdin_pos = 0
        self.stdout = bytearray()



class ExecutionResult:
    """What one run produced and touched."""

    def __init__(self) -> None:
        self.output = b""
        self.exit_code = 0
        # Final image of the globals region (guard page excluded); the
        # translation validator compares it across pipeline stages.
        self.globals_image = b""
        # (function name, block index) -> execution count.
        self.block_counts: Dict[Tuple[str, int], int] = {}
        # Optional block-level trace: a plain list of global block ids
        # (``RawListSink``) or a ``CompressedTrace`` (the default sink).
        self.trace = None
        self.calls_executed = 0
        # Dense per-function count arrays the interpreter increments on
        # the hot path (one list index instead of a tuple-keyed dict
        # update per executed block); folded into ``block_counts`` and
        # ``_func_totals`` when the run ends.
        self._func_counts: Dict[str, List[int]] = {}
        self._func_totals: Dict[str, int] = {}

    def _counts_for(self, func_name: str, n_blocks: int) -> List[int]:
        counts = self._func_counts.get(func_name)
        if counts is None:
            counts = self._func_counts[func_name] = [0] * n_blocks
        return counts

    def _fold_counts(self) -> None:
        """Fold the dense per-function arrays into the public mappings."""
        block_counts = self.block_counts
        totals = self._func_totals
        for func_name, counts in self._func_counts.items():
            subtotal = 0
            for index, count in enumerate(counts):
                if count:
                    block_counts[(func_name, index)] = count
                    subtotal += count
            if subtotal:
                totals[func_name] = subtotal
        self._func_counts.clear()

    def count_for(self, func_name: str) -> int:
        """Total block executions inside ``func_name`` (O(1)).

        Subtotals are maintained when counts are recorded; the fallback
        scan only runs for results whose ``block_counts`` were populated
        by hand (it then memoizes, so repeated calls stay O(1)).
        """
        totals = self._func_totals
        if not totals and self.block_counts:
            for (name, _), count in self.block_counts.items():
                totals[name] = totals.get(name, 0) + count
        return totals.get(func_name, 0)


class _CompiledBlock:
    __slots__ = ("ops", "terminator", "index", "global_id")

    def __init__(self, ops, terminator, index: int, global_id: int) -> None:
        self.ops = ops
        self.terminator = terminator
        self.index = index
        self.global_id = global_id


class _CompiledFunction:
    def __init__(self, name: str, frame_size: int) -> None:
        self.name = name
        self.frame_size = frame_size
        self.blocks: List[_CompiledBlock] = []
        self.label_to_index: Dict[str, int] = {}


# Terminators return the next _CompiledBlock directly (threaded code);
# None means "return from the function".


class Interpreter:
    """Links a program and executes it."""

    def __init__(
        self,
        program: Program,
        mem_size: int = 1 << 22,
        max_steps: int = 200_000_000,
    ) -> None:
        self.program = program
        self.mem_size = mem_size
        self.max_steps = max_steps
        self.symaddr: Dict[str, int] = {}
        self._globals_end = 64  # a null guard region below the globals
        self._bank_sizes: Dict[str, int] = dict(_REG_BANK_SIZES)
        self._layout_globals()
        self._functions: Dict[str, _CompiledFunction] = {}
        self._global_block_ids: Dict[Tuple[str, int], int] = {}
        self._next_block_id = 0
        for func in program.functions.values():
            self._compile_function(func)

    # --- linking ------------------------------------------------------------------

    def _layout_globals(self) -> None:
        addr = self._globals_end
        for data in self.program.globals.values():
            addr = (addr + 3) & ~3
            self.symaddr[data.name] = addr
            addr += data.size
        self._globals_end = addr

    def _install_globals(self, state: MachineState) -> None:
        for data in self.program.globals.values():
            base = self.symaddr[data.name]
            state.mem[base : base + len(data.init)] = data.init
            for offset, symbol in data.relocs:
                target = self.symaddr[symbol]
                state.mem[base + offset : base + offset + 4] = struct.pack(
                    "<I", target
                )

    # --- compilation ------------------------------------------------------------------

    def _compile_function(self, func: Function) -> None:
        compiled = _CompiledFunction(func.name, func.frame_size)
        for index, block in enumerate(func.blocks):
            compiled.label_to_index[block.label] = index
        # Two phases: allocate every block shell first so terminators can
        # capture the successor *block objects* (forward branches
        # included), then fill in ops and terminators.
        for index in range(len(func.blocks)):
            key = (func.name, index)
            global_id = self._next_block_id
            self._next_block_id += 1
            self._global_block_ids[key] = global_id
            compiled.blocks.append(_CompiledBlock(None, None, index, global_id))
        for index, block in enumerate(func.blocks):
            ops = [
                self._compile_insn(insn, func)
                for insn in block.insns
                if not insn.is_transfer()
            ]
            shell = compiled.blocks[index]
            shell.ops = [op for op in ops if op is not None]
            shell.terminator = self._compile_terminator(block, compiled, func, index)
        self._functions[func.name] = compiled

    # expression compilation -------------------------------------------------------

    def _compile_expr(self, expr: Expr, func: Function) -> Callable:
        if isinstance(expr, Const):
            value = expr.value
            return lambda state: value
        if isinstance(expr, Reg):
            bank, index = expr.bank, expr.index
            self._note_reg(bank, index)
            return lambda state: state.regs[bank][index]
        if isinstance(expr, Sym):
            address = self.symaddr.get(expr.name)
            if address is None:
                raise KeyError(
                    f"{func.name}: unknown global symbol {expr.name!r}"
                )
            return lambda state: address
        if isinstance(expr, Local):
            try:
                offset = func.frame[expr.name][0]
            except KeyError:
                raise KeyError(
                    f"{func.name}: unknown frame slot {expr.name!r}"
                ) from None
            return lambda state: state.fp + offset
        if isinstance(expr, Mem):
            addr_fn = self._compile_expr(expr.addr, func)
            if expr.width == "B":
                return lambda state: state.mem[addr_fn(state)]
            if expr.width == "W":
                def read_w(state: MachineState) -> int:
                    a = addr_fn(state)
                    return state.mem[a] | (state.mem[a + 1] << 8)

                return read_w

            def read_l(state: MachineState) -> int:
                a = addr_fn(state)
                mem = state.mem
                value = mem[a] | (mem[a + 1] << 8) | (mem[a + 2] << 16) | (mem[a + 3] << 24)
                return value - 0x100000000 if value >= 0x80000000 else value

            return read_l
        if isinstance(expr, BinOp):
            left = self._compile_expr(expr.left, func)
            right = self._compile_expr(expr.right, func)
            op = expr.op
            if op == "+":
                return lambda state: wrap32(left(state) + right(state))
            if op == "-":
                return lambda state: wrap32(left(state) - right(state))
            if op == "*":
                return lambda state: wrap32(left(state) * right(state))
            return lambda state: eval_binop(op, left(state), right(state))
        if isinstance(expr, UnOp):
            operand = self._compile_expr(expr.operand, func)
            op = expr.op
            return lambda state: eval_unop(op, operand(state))
        raise TypeError(f"cannot compile expression {expr!r}")

    # instruction compilation --------------------------------------------------------

    def _compile_insn(self, insn: Insn, func: Function) -> Optional[Callable]:
        if isinstance(insn, Assign):
            src = self._compile_expr(insn.src, func)
            if isinstance(insn.dst, Reg):
                bank, index = insn.dst.bank, insn.dst.index
                self._note_reg(bank, index)

                def write_reg(state: MachineState) -> None:
                    state.regs[bank][index] = src(state)

                return write_reg
            addr_fn = self._compile_expr(insn.dst.addr, func)
            width = insn.dst.width
            if width == "B":
                def store_b(state: MachineState) -> None:
                    state.mem[addr_fn(state)] = src(state) & 0xFF

                return store_b
            if width == "W":
                def store_w(state: MachineState) -> None:
                    a = addr_fn(state)
                    value = src(state) & 0xFFFF
                    state.mem[a] = value & 0xFF
                    state.mem[a + 1] = value >> 8

                return store_w

            def store_l(state: MachineState) -> None:
                a = addr_fn(state)
                value = src(state) & 0xFFFFFFFF
                mem = state.mem
                mem[a] = value & 0xFF
                mem[a + 1] = (value >> 8) & 0xFF
                mem[a + 2] = (value >> 16) & 0xFF
                mem[a + 3] = (value >> 24) & 0xFF

            return store_l
        if isinstance(insn, Compare):
            left = self._compile_expr(insn.left, func)
            right = self._compile_expr(insn.right, func)

            def compare(state: MachineState) -> None:
                a = left(state)
                b = right(state)
                state.regs["cc"][0] = (a > b) - (a < b)

            return compare
        if isinstance(insn, Call):
            name = insn.func
            nargs = insn.nargs

            def call(state: MachineState) -> None:
                self._do_call(state, name, nargs)

            return call
        if isinstance(insn, Nop):
            return None  # executes (counted via the block), no effect
        raise TypeError(f"cannot compile instruction {insn!r}")

    def _compile_terminator(
        self,
        block: BasicBlock,
        compiled: _CompiledFunction,
        func: Function,
        index: int,
    ) -> Callable:
        term = block.terminator
        blocks = compiled.blocks
        fall_index = index + 1
        if term is None:
            if fall_index >= len(func.blocks):
                raise ValueError(
                    f"{func.name}: block {block.label} falls off the end"
                )
            fall = blocks[fall_index]
            return lambda state: fall
        if isinstance(term, Jump):
            target = blocks[compiled.label_to_index[term.target]]
            return lambda state: target
        if isinstance(term, Return):
            return lambda state: None
        if isinstance(term, CondBranch):
            target = blocks[compiled.label_to_index[term.target]]
            rel = term.rel
            if fall_index >= len(blocks):
                # A conditional branch ending the function: taking it is
                # fine, falling through is the same runtime error as
                # indexing past the block list used to be.
                import operator

                compare = {
                    "<": operator.lt,
                    "<=": operator.le,
                    ">": operator.gt,
                    ">=": operator.ge,
                    "==": operator.eq,
                    "!=": operator.ne,
                }[rel]
                fname, label = func.name, block.label

                def cond_no_fall(state: MachineState) -> _CompiledBlock:
                    if compare(state.regs["cc"][0], 0):
                        return target
                    raise IndexError(
                        f"{fname}: block {label} falls off the end"
                    )

                return cond_no_fall
            fall = blocks[fall_index]
            if rel == "<":
                return lambda state: target if state.regs["cc"][0] < 0 else fall
            if rel == "<=":
                return lambda state: target if state.regs["cc"][0] <= 0 else fall
            if rel == ">":
                return lambda state: target if state.regs["cc"][0] > 0 else fall
            if rel == ">=":
                return lambda state: target if state.regs["cc"][0] >= 0 else fall
            if rel == "==":
                return lambda state: target if state.regs["cc"][0] == 0 else fall
            return lambda state: target if state.regs["cc"][0] != 0 else fall
        if isinstance(term, IndirectJump):
            addr_fn = self._compile_expr(term.addr, func)
            targets = [blocks[compiled.label_to_index[t]] for t in term.targets]

            def indirect(state: MachineState) -> _CompiledBlock:
                value = addr_fn(state)
                if not 0 <= value < len(targets):
                    raise IndexError(
                        f"indirect jump index {value} out of range in {func.name}"
                    )
                return targets[value]

            return indirect
        raise TypeError(f"cannot compile terminator {term!r}")

    # --- execution ------------------------------------------------------------------

    def run(
        self,
        stdin: bytes = b"",
        trace: Union[bool, TraceSink] = False,
        entry: str = "main",
    ) -> ExecutionResult:
        """Execute the program from ``entry``; return the results.

        ``trace=True`` records the block-level trace through the default
        compressing sink (``result.trace`` is a ``CompressedTrace``);
        pass a :class:`~repro.ease.trace.TraceSink` instance — e.g. a
        ``RawListSink`` — to choose the representation explicitly.
        """
        if entry not in self._functions:
            raise KeyError(f"no function named {entry!r}")
        state = MachineState(self.mem_size, stdin, self._bank_sizes)
        self._install_globals(state)
        state.heap_ptr = (self._globals_end + 15) & ~15
        state.stack_limit = self.mem_size - (1 << 20)
        entry_frame = self.mem_size - self._functions[entry].frame_size - 64

        result = ExecutionResult()
        sink = make_sink(trace)
        self._sink = sink
        self._steps_left = self.max_steps
        try:
            self._run_function(state, entry, result, entry_frame)
        except ProgramExit as stop:
            result.exit_code = stop.code
        else:
            result.exit_code = wrap32(state.regs["rv"][0])
        finally:
            self._sink = None
        result._fold_counts()
        if sink is not None:
            result.trace = sink.finish()
        result.output = bytes(state.stdout)
        result.globals_image = bytes(state.mem[64 : self._globals_end])
        return result

    def _do_call(self, state: MachineState, name: str, nargs: int) -> None:
        if name not in self._functions:
            if is_builtin(name):
                state.regs["rv"][0] = wrap32(call_builtin(state, name, nargs))
                return
            raise NameError(f"call to unknown function {name!r}")
        # Callee-save semantics: snapshot every bank, restore all but rv.
        snapshot = {bank: list(values) for bank, values in state.regs.items()}
        result = self._current_result
        result.calls_executed += 1
        frame_base = state.fp - self._functions[name].frame_size - 32
        if frame_base <= state.heap_ptr:
            raise MemoryError("interpreted stack overflow")
        self._run_function(state, name, result, frame_base)
        rv = state.regs["rv"][0]
        for bank, values in snapshot.items():
            state.regs[bank][: len(values)] = values
        state.regs["rv"][0] = rv

    _current_result: ExecutionResult
    _sink: Optional[TraceSink] = None

    def _run_function(
        self,
        state: MachineState,
        name: str,
        result: ExecutionResult,
        frame_base: int,
    ) -> None:
        compiled = self._functions[name]
        saved_fp = state.fp
        state.fp = frame_base
        self._current_result = result
        blocks = compiled.blocks
        # Hot loop: everything it touches per step is a local — the dense
        # per-function count list (one list index instead of a tuple-keyed
        # dict update), the sink's bound emit, and the block object itself
        # (terminators return the next _CompiledBlock directly).
        counts = result._counts_for(compiled.name, len(blocks))
        sink = self._sink
        block = blocks[0] if blocks else None
        try:
            if sink is None:
                while block is not None:
                    self._steps_left -= 1
                    if self._steps_left < 0:
                        raise StepLimitExceeded(
                            f"exceeded {self.max_steps} block steps"
                        )
                    counts[block.index] += 1
                    for op in block.ops:
                        op(state)
                    block = block.terminator(state)
            else:
                emit = sink.emit
                while block is not None:
                    self._steps_left -= 1
                    if self._steps_left < 0:
                        raise StepLimitExceeded(
                            f"exceeded {self.max_steps} block steps"
                        )
                    counts[block.index] += 1
                    emit(block.global_id)
                    for op in block.ops:
                        op(state)
                    block = block.terminator(state)
        finally:
            state.fp = saved_fp
            self._current_result = result

    def _note_reg(self, bank: str, index: int) -> None:
        if index >= self._bank_sizes.get(bank, 0):
            self._bank_sizes[bank] = index + 1

    # --- introspection ----------------------------------------------------------------

    def global_block_id(self, func_name: str, block_index: int) -> int:
        return self._global_block_ids[(func_name, block_index)]

    @property
    def functions(self) -> Dict[str, _CompiledFunction]:
        return self._functions
