"""Streaming block-trace layer: sinks and the RLE/loop-compressed trace.

The interpreter used to materialize every executed block id into one
Python ``List[int]`` — millions of pointer-sized entries on the longer
benchmarks, replayed four separate times by the Table-6 cache sweep.
This module replaces that with an online sink protocol:

* :class:`RawListSink` keeps the old behaviour (a plain list of global
  block ids) for tests and for consumers that genuinely need random
  access;
* :class:`RleTraceSink` compresses the stream *while it is produced*:
  literal stretches are buffered into chunked ``array('i')`` segments
  (4-byte entries instead of 8-byte pointers), and hot-loop bodies —
  repeated block *sequences*, detected online via a last-occurrence
  digram table — are folded into ``(body, repeat_count)`` run records.

The result, a :class:`CompressedTrace`, behaves like the old list where
it matters (iteration yields raw block ids in order; ``len``/``==``
match), but exposes :meth:`CompressedTrace.records` so downstream
consumers — the single-pass multi-configuration cache engine, most
importantly — can walk compressed records and fast-forward steady-state
loops instead of touching every executed block.

Compression is loss-free by construction: a run record is only created
after the candidate body has been verified element-by-element against
the buffered tail, so expansion always reproduces the raw stream
(property-tested in ``tests/ease/test_trace_sink.py``).
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TraceSink",
    "RawListSink",
    "RleTraceSink",
    "CompressedTrace",
    "TraceRecord",
    "MAX_LOOP_BODY",
    "LITERAL_CHUNK",
]

#: Longest loop body (in blocks) the online detector folds into a run.
MAX_LOOP_BODY = 64

#: Literal buffer size; a full buffer is sealed into one array record.
LITERAL_CHUNK = 4096

#: One compressed record: a block-id sequence and its repeat count.
#: Literal segments are ``array('i')`` with count 1; loop bodies are
#: tuples with count >= 2.
TraceRecord = Tuple[Sequence[int], int]


class TraceSink:
    """Protocol for consumers of the interpreter's block-id stream.

    ``emit`` is called once per executed basic block (the hot path —
    implementations should keep it cheap); ``finish`` is called once at
    the end of the run and returns the trace object stored on
    ``ExecutionResult.trace``.
    """

    __slots__ = ()

    def emit(self, block_id: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self):  # pragma: no cover - interface
        raise NotImplementedError


class RawListSink(TraceSink):
    """The compatibility sink: a plain ``List[int]`` of global block ids."""

    __slots__ = ("trace", "emit")

    def __init__(self) -> None:
        self.trace: List[int] = []
        self.emit = self.trace.append  # bound method: zero-overhead emit

    def finish(self) -> List[int]:
        return self.trace


class CompressedTrace:
    """An RLE/loop-compressed block trace.

    Iterating yields the raw block ids in execution order, so existing
    consumers (the reference cache simulator, the pipeline model) work
    unchanged; :meth:`records` exposes the compressed form for engines
    that can exploit it.

    Storage is packed: bodies (loop-body tuples and literal ``array('i')``
    segments) are *interned* — each distinct sequence is stored once, no
    matter how many records reference it — and the record stream is one
    ``array('i')`` of signed tokens: a non-negative token is a body index
    with an implicit repeat count of 1 (a literal segment); a negative
    token ``-(index + 1)`` takes its count from the parallel run-count
    array.  A hot loop that seals and restarts thousands of times (a
    data-dependent branch in the body) therefore costs 4–8 bytes per
    record plus one shared body, instead of a fresh tuple each time.
    Body identity is also what the multi-configuration cache engine keys
    its per-body replay summaries on.
    """

    __slots__ = ("_bodies", "_seq", "_counts", "_raw_length")

    def __init__(
        self,
        bodies: List[Sequence[int]],
        seq: array,
        counts: array,
        raw_length: int,
    ) -> None:
        self._bodies = bodies
        self._seq = seq
        self._counts = counts
        self._raw_length = raw_length

    # --- compressed view -------------------------------------------------------

    def records(self) -> Iterator[TraceRecord]:
        """Yield ``(body, count)`` records in trace order.

        Bodies are shared objects: the same interned sequence reappears
        (same identity) every time a record references it.
        """
        bodies = self._bodies
        counts = iter(self._counts)
        for token in self._seq:
            if token >= 0:
                yield bodies[token], 1
            else:
                yield bodies[-token - 1], next(counts)

    @property
    def record_count(self) -> int:
        return len(self._seq)

    @property
    def run_records(self) -> int:
        """How many records are folded loop bodies (count > 1)."""
        return len(self._counts)

    @property
    def compression_ratio(self) -> float:
        """Raw trace length over *stored* elements (interned bodies store
        each distinct sequence once; >= 1.0, higher is better)."""
        stored = sum(len(body) for body in self._bodies)
        stored += len(self._seq) + len(self._counts)  # the record stream
        if stored == 0:
            return 1.0
        return self._raw_length / stored

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the compressed representation."""
        total = (
            sys.getsizeof(self._bodies)
            + sys.getsizeof(self._seq)
            + sys.getsizeof(self._counts)
        )
        for body in self._bodies:
            total += sys.getsizeof(body)
        return total

    # --- raw-list compatibility ------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        for body, count in self.records():
            if count == 1:
                yield from body
            else:
                for _ in range(count):
                    yield from body

    def __len__(self) -> int:
        return self._raw_length

    def __bool__(self) -> bool:
        return self._raw_length > 0

    def to_list(self) -> List[int]:
        return list(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CompressedTrace):
            if other._raw_length != self._raw_length:
                return False
            other = other.to_list()
        if isinstance(other, (list, tuple)):
            if len(other) != self._raw_length:
                return False
            index = 0
            for block_id in self:
                if other[index] != block_id:
                    return False
                index += 1
            return True
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("CompressedTrace is unhashable (compares like a list)")

    def __repr__(self) -> str:
        return (
            f"<CompressedTrace len={self._raw_length} "
            f"records={len(self._seq)} "
            f"ratio={self.compression_ratio:.1f}x>"
        )

    # --- pickling (``__slots__`` classes need explicit state) ------------------

    def __getstate__(self) -> Tuple[List[Sequence[int]], array, array, int]:
        return (self._bodies, self._seq, self._counts, self._raw_length)

    def __setstate__(
        self, state: Tuple[List[Sequence[int]], array, array, int]
    ) -> None:
        self._bodies, self._seq, self._counts, self._raw_length = state


class RleTraceSink(TraceSink):
    """Online loop-compressing sink.

    Literal ids accumulate in a bounded ``array('i')`` buffer.  For each
    id the sink remembers where in the buffer it last occurred; when the
    id recurs at distance ``d <= max_body`` and the last ``d`` buffered
    ids equal the ``d`` before them, those ``2d`` entries fold into an
    active run ``(body, count=2)``.  While a run is active each incoming
    id is matched against the body cursor — one compare per block — and
    every completed lap increments the count.  A mismatch seals the run
    record and re-buffers the partially matched prefix as literals.
    """

    __slots__ = (
        "_max_body",
        "_chunk_size",
        "_bodies",
        "_body_index",
        "_seq",
        "_counts",
        "_pending",
        "_last_index",
        "_run_body",
        "_run_len",
        "_run_count",
        "_run_pos",
        "_finished",
    )

    def __init__(
        self,
        max_body: int = MAX_LOOP_BODY,
        chunk_size: int = LITERAL_CHUNK,
    ) -> None:
        if max_body < 1:
            raise ValueError("max_body must be at least 1")
        if chunk_size < 2:
            raise ValueError("chunk_size must be at least 2")
        self._max_body = max_body
        self._chunk_size = chunk_size
        # Packed record storage (see CompressedTrace): interned bodies
        # plus the signed token stream and run-count array.
        self._bodies: List[Sequence[int]] = []
        self._body_index: Dict[object, int] = {}
        self._seq: array = array("i")
        self._counts: array = array("i")
        self._pending: array = array("i")
        self._last_index: Dict[int, int] = {}
        self._run_body: Optional[Tuple[int, ...]] = None
        self._run_len = 0
        self._run_count = 0
        self._run_pos = 0
        self._finished: Optional[CompressedTrace] = None

    # --- hot path --------------------------------------------------------------

    def emit(self, block_id: int) -> None:
        body = self._run_body
        while body is not None:
            pos = self._run_pos
            if body[pos] == block_id:
                pos += 1
                if pos == self._run_len:
                    self._run_pos = 0
                    self._run_count += 1
                else:
                    self._run_pos = pos
                return
            # Mismatch: seal the run, then retry against the (possibly
            # new) run the re-buffered prefix may have started.
            self._seal_run()
            body = self._run_body
        # Literal path, inlined (one call frame per executed block).
        pending = self._pending
        position = len(pending)
        pending.append(block_id)
        last_index = self._last_index
        previous = last_index.get(block_id)
        last_index[block_id] = position
        if previous is not None:
            distance = position - previous
            if (
                distance <= self._max_body
                and position + 1 >= 2 * distance
                # One-element precheck: the candidate's final interior
                # pair must match before paying for the slice compare.
                and (
                    distance == 1
                    or pending[position - 1] == pending[position - 1 - distance]
                )
                and pending[-distance:] == pending[-2 * distance : -distance]
            ):
                run = tuple(pending[-distance:])
                del pending[len(pending) - 2 * distance :]
                self._flush_pending()
                self._run_body = run
                self._run_len = distance
                self._run_count = 2
                self._run_pos = 0
                return
        if position + 1 >= self._chunk_size:
            self._flush_pending()

    # --- record management -----------------------------------------------------

    #: ``array('i')`` is signed 32-bit; counts above this are split into
    #: several records of the same (shared) body.
    _MAX_COUNT = 0x7FFFFFFF

    def _append_record(self, key: object, body: Sequence[int], count: int) -> None:
        """Intern ``body`` (by content ``key``) and append one record.

        Encoding: count 1 appends the bare body index; count > 1 appends
        ``-(index + 1)`` and pushes the count onto the run-count array.
        """
        index = self._body_index.get(key)
        if index is None:
            index = len(self._bodies)
            self._body_index[key] = index
            self._bodies.append(body)
        while count > self._MAX_COUNT:
            self._seq.append(-index - 1)
            self._counts.append(self._MAX_COUNT)
            count -= self._MAX_COUNT
        if count == 1:
            self._seq.append(index)
        else:
            self._seq.append(-index - 1)
            self._counts.append(count)

    def _flush_pending(self) -> None:
        pending = self._pending
        if pending:
            key = pending.tobytes()
            # Re-materialize from the bytes so the stored body is
            # exact-sized (append growth over-allocates).
            self._append_record(key, array("i", key), 1)
            self._pending = array("i")
        self._last_index.clear()

    def _seal_run(self) -> None:
        body = self._run_body
        assert body is not None
        self._append_record(body, body, self._run_count)
        prefix = body[: self._run_pos]
        self._run_body = None
        self._run_len = 0
        self._run_count = 0
        self._run_pos = 0
        # Re-buffer the partially matched lap through ``emit`` so a
        # repetition inside the prefix can itself start a run — and so
        # later prefix blocks are matched against that nested run (each
        # nested prefix is strictly shorter, so this terminates).
        for block_id in prefix:
            self.emit(block_id)

    def finish(self) -> CompressedTrace:
        if self._finished is None:
            if self._run_body is not None:
                self._seal_run()
            self._flush_pending()
            # The raw length falls out of the records — no per-emit
            # counter on the hot path.
            lengths = [len(body) for body in self._bodies]
            counts = iter(self._counts)
            raw_length = 0
            for token in self._seq:
                if token >= 0:
                    raw_length += lengths[token]
                else:
                    raw_length += lengths[-token - 1] * next(counts)
            self._finished = CompressedTrace(
                self._bodies, self._seq, self._counts, raw_length
            )
        return self._finished


def make_sink(trace: Union[bool, TraceSink, None]) -> Optional[TraceSink]:
    """Normalize the ``trace=`` argument of ``Interpreter.run``.

    ``False``/``None`` disables tracing, ``True`` selects the default
    compressing sink, and a :class:`TraceSink` instance is used as-is.
    """
    if trace is None or trace is False:
        return None
    if trace is True:
        return RleTraceSink()
    return trace
