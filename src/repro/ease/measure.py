"""EASE-style measurement: static/dynamic counts and fetch-address layout.

This is the counting half of the EASE substitute.  Given an (optimized)
program and a target machine:

* every instruction gets a byte address (functions and blocks laid out in
  positional order with the target's size model);
* a run of the interpreter yields per-block execution counts and,
  optionally, a block trace;
* counts are weighted by ``Machine.insn_count`` (an RTL that stands for a
  sethi/or pair counts as two instructions, as on the real SPARC).

The statistics mirror what the paper reports: total instructions (Table
5), unconditional-jump counts (Table 4), no-ops executed and instructions
between branches (§5.2), and the fetch-address stream for the cache
simulations (Table 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..cfg.block import Program
from ..obs import active as _active_observer
from ..obs.tracer import NULL_SPAN
from ..rtl.insn import Call, CondBranch, IndirectJump, Insn, Jump, Nop, Return
from ..targets.machine import Machine
from .compile import CompiledInterpreter, make_interpreter
from .interp import Interpreter
from .trace import CompressedTrace, TraceSink

__all__ = ["Measurement", "measure_program"]


class Measurement:
    """Counts from one measured run of a program."""

    def __init__(self) -> None:
        self.static_insns = 0
        self.static_jumps = 0
        self.static_nops = 0
        self.code_bytes = 0
        self.dynamic_insns = 0
        self.dynamic_jumps = 0
        self.dynamic_nops = 0
        self.dynamic_branches = 0  # executed control transfers
        self.output = b""
        self.exit_code = 0
        # Per-global-block-id instruction fetch addresses (one entry per
        # machine instruction fetched when the block executes).
        self.block_fetches: Dict[int, List[int]] = {}
        # Block-level trace: ``CompressedTrace`` by default (iterates as
        # raw global block ids), a plain list under a ``RawListSink``.
        self.trace = None
        # Which execution engine produced the dynamic counts
        # ("compiled" or "interp"); the two are parity-gated, so this
        # is provenance, not a semantic knob.
        self.ease_engine = "interp"

    @property
    def insns_between_branches(self) -> float:
        """Average dynamic instructions per executed control transfer."""
        if self.dynamic_branches == 0:
            return float(self.dynamic_insns)
        return self.dynamic_insns / self.dynamic_branches

    def __repr__(self) -> str:
        return (
            f"<Measurement static={self.static_insns} "
            f"dynamic={self.dynamic_insns} jumps={self.dynamic_jumps}>"
        )


def _is_transfer_for_stats(insn: Insn) -> bool:
    return isinstance(insn, (Jump, CondBranch, Return, IndirectJump, Call))


def measure_program(
    program: Program,
    target: Machine,
    stdin: bytes = b"",
    trace: Union[bool, TraceSink] = False,
    interpreter: Optional[Interpreter] = None,
    max_steps: int = 200_000_000,
    engine: Optional[str] = None,
) -> Measurement:
    """Run ``program`` and measure it with the target's size/count model.

    ``trace`` follows :meth:`repro.ease.interp.Interpreter.run`:
    ``True`` records through the default compressing sink; pass a
    :class:`~repro.ease.trace.TraceSink` to pick the representation.

    ``engine`` picks the execution engine ("compiled" / "interp";
    ``None`` defers to ``REPRO_EASE_ENGINE``, then the compiled
    default).  An explicit ``interpreter`` wins over ``engine`` — the
    caller already chose.
    """
    measurement = Measurement()
    interp = interpreter or make_interpreter(program, engine, max_steps=max_steps)
    measurement.ease_engine = (
        "compiled" if isinstance(interp, CompiledInterpreter) else "interp"
    )
    obs = _active_observer()
    if obs is not None:
        obs.metrics.inc(f"ease.engine.{measurement.ease_engine}")
    tracer = obs.tracer if obs is not None and obs.tracer.enabled else None

    # --- static layout ---------------------------------------------------------
    with (
        tracer.span("ease.layout") if tracer is not None else NULL_SPAN
    ) as layout_span:
        address = 0x1000
        block_weights: Dict[int, Tuple[int, int, int, int]] = {}
        for func in program.functions.values():
            for index, block in enumerate(func.blocks):
                fetches: List[int] = []
                insn_weight = 0
                jumps = 0
                nops = 0
                branches = 0
                for insn in block.insns:
                    count = target.insn_count(insn)
                    size = target.insn_size(insn)
                    measurement.static_insns += count
                    if isinstance(insn, Jump):
                        measurement.static_jumps += 1
                        jumps += 1
                    if isinstance(insn, Nop):
                        measurement.static_nops += 1
                        nops += 1
                    if _is_transfer_for_stats(insn):
                        branches += 1
                    insn_weight += count
                    # One fetch per machine instruction the RTL stands for.
                    step = size // max(1, count)
                    for k in range(count):
                        fetches.append(address + k * step)
                    address += size
                global_id = interp.global_block_id(func.name, index)
                measurement.block_fetches[global_id] = fetches
                block_weights[global_id] = (insn_weight, jumps, nops, branches)
                # Indirect-jump tables occupy data space after the block.
                term = block.terminator
                if isinstance(term, IndirectJump):
                    address += 4 * len(term.targets)
            address = (address + 15) & ~15  # align functions
        measurement.code_bytes = address - 0x1000
        layout_span.set(
            static_insns=measurement.static_insns,
            code_bytes=measurement.code_bytes,
        )

    # --- dynamic run --------------------------------------------------------------
    with (
        tracer.span("ease.interp", trace=trace) if tracer is not None else NULL_SPAN
    ) as interp_span:
        result = interp.run(stdin=stdin, trace=trace)
    measurement.output = result.output
    measurement.exit_code = result.exit_code
    if trace:
        measurement.trace = result.trace
        if obs is not None and isinstance(result.trace, CompressedTrace):
            obs.metrics.inc("trace.rle.records", result.trace.record_count)
            obs.metrics.set_gauge(
                "trace.compression_ratio",
                round(result.trace.compression_ratio, 2),
            )

    with (
        tracer.span("ease.account") if tracer is not None else NULL_SPAN
    ):
        for (func_name, block_index), count in result.block_counts.items():
            global_id = interp.global_block_id(func_name, block_index)
            weight, jumps, nops, branches = block_weights[global_id]
            measurement.dynamic_insns += weight * count
            measurement.dynamic_jumps += jumps * count
            measurement.dynamic_nops += nops * count
            measurement.dynamic_branches += branches * count
    interp_span.set(
        dynamic_insns=measurement.dynamic_insns,
        dynamic_jumps=measurement.dynamic_jumps,
        exit_code=measurement.exit_code,
    )
    if obs is not None:
        obs.metrics.inc("ease.runs")
        obs.metrics.inc("ease.dynamic_insns", measurement.dynamic_insns)
        obs.metrics.inc("ease.dynamic_jumps", measurement.dynamic_jumps)
    return measurement
