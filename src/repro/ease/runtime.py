"""The C runtime provided to interpreted programs.

These are the "library routines" of the paper, which EASE could not
measure ("Library routines could not be measured since the source code was
not available to be compiled by VPO"); we reproduce that by executing them
natively, outside the instruction counts.

Supported: getchar, putchar, puts, printf (a practical subset: %d %u %c
%s %o %x %% with optional '-', '0' flags and width), malloc (bump
allocator), strlen, strcmp, strcpy, atoi, abs, memset, exit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from .interp import MachineState

__all__ = ["call_builtin", "ProgramExit", "is_builtin"]


class ProgramExit(Exception):
    """Raised by exit() and by falling off main."""

    def __init__(self, code: int) -> None:
        self.code = code
        super().__init__(f"program exited with code {code}")


_BUILTIN_NAMES = frozenset(
    {
        "getchar",
        "putchar",
        "puts",
        "printf",
        "malloc",
        "strlen",
        "strcmp",
        "strcpy",
        "atoi",
        "abs",
        "memset",
        "exit",
    }
)


def is_builtin(name: str) -> bool:
    """True when ``name`` is a runtime (library) routine."""
    return name in _BUILTIN_NAMES


def _read_cstring(state: "MachineState", addr: int) -> bytes:
    out = bytearray()
    mem = state.mem
    while mem[addr] != 0:
        out.append(mem[addr])
        addr += 1
    return bytes(out)


def _format_printf(state: "MachineState", fmt: bytes, args: List[int]) -> bytes:
    out = bytearray()
    arg_index = 0
    i = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch != ord("%"):
            out.append(ch)
            i += 1
            continue
        i += 1
        if i < n and fmt[i] == ord("%"):
            out.append(ord("%"))
            i += 1
            continue
        # Flags.
        left = False
        zero = False
        while i < n and fmt[i] in (ord("-"), ord("0")):
            if fmt[i] == ord("-"):
                left = True
            else:
                zero = True
            i += 1
        # Width.
        width = 0
        while i < n and ord("0") <= fmt[i] <= ord("9"):
            width = width * 10 + (fmt[i] - ord("0"))
            i += 1
        if i >= n:
            break
        conv = chr(fmt[i])
        i += 1
        if conv == "l" and i < n:
            conv = chr(fmt[i])
            i += 1
        if conv in ("d", "u"):
            value = args[arg_index]
            arg_index += 1
            if conv == "u":
                value &= 0xFFFFFFFF
            text = str(value)
        elif conv == "c":
            value = args[arg_index]
            arg_index += 1
            text = chr(value & 0xFF)
        elif conv == "s":
            addr = args[arg_index]
            arg_index += 1
            text = _read_cstring(state, addr).decode("latin-1")
        elif conv == "o":
            value = args[arg_index] & 0xFFFFFFFF
            arg_index += 1
            text = format(value, "o")
        elif conv == "x":
            value = args[arg_index] & 0xFFFFFFFF
            arg_index += 1
            text = format(value, "x")
        else:
            text = "%" + conv
        if width > len(text):
            pad = "0" if (zero and not left and conv != "s") else " "
            if left:
                text = text + " " * (width - len(text))
            else:
                if pad == "0" and text.startswith("-"):
                    text = "-" + text[1:].rjust(width - 1, "0")
                else:
                    text = text.rjust(width, pad)
        out.extend(text.encode("latin-1"))
    return bytes(out)


def call_builtin(state: "MachineState", name: str, nargs: int) -> int:
    """Execute runtime routine ``name``; return its (int) result."""
    args = [state.regs["arg"][i] for i in range(nargs)]
    if name == "getchar":
        if state.stdin_pos >= len(state.stdin):
            return -1
        ch = state.stdin[state.stdin_pos]
        state.stdin_pos += 1
        return ch
    if name == "putchar":
        state.stdout.append(args[0] & 0xFF)
        return args[0] & 0xFF
    if name == "puts":
        state.stdout.extend(_read_cstring(state, args[0]))
        state.stdout.append(ord("\n"))
        return 0
    if name == "printf":
        fmt = _read_cstring(state, args[0])
        rendered = _format_printf(state, fmt, args[1:])
        state.stdout.extend(rendered)
        return len(rendered)
    if name == "malloc":
        size = max(0, args[0])
        addr = (state.heap_ptr + 3) & ~3
        state.heap_ptr = addr + size
        if state.heap_ptr >= state.stack_limit:
            raise MemoryError("interpreted heap exhausted")
        return addr
    if name == "strlen":
        return len(_read_cstring(state, args[0]))
    if name == "strcmp":
        a = _read_cstring(state, args[0])
        b = _read_cstring(state, args[1])
        if a < b:
            return -1
        if a > b:
            return 1
        return 0
    if name == "strcpy":
        dst, src = args[0], args[1]
        data = _read_cstring(state, src)
        state.mem[dst : dst + len(data)] = data
        state.mem[dst + len(data)] = 0
        return dst
    if name == "atoi":
        text = _read_cstring(state, args[0]).decode("latin-1").strip()
        sign = 1
        if text[:1] in ("-", "+"):
            if text[0] == "-":
                sign = -1
            text = text[1:]
        digits = ""
        for ch in text:
            if not ch.isdigit():
                break
            digits += ch
        return sign * int(digits) if digits else 0
    if name == "abs":
        return -args[0] if args[0] < 0 else args[0]
    if name == "memset":
        addr, value, size = args[0], args[1] & 0xFF, args[2]
        state.mem[addr : addr + size] = bytes([value]) * size
        return addr
    if name == "exit":
        raise ProgramExit(args[0] if args else 0)
    raise NameError(f"unknown builtin {name!r}")
