"""A simple pipeline cost model (extension).

The paper argues (§5.2, §7) that code replication helps pipelined and
multiple-issue machines because basic blocks get larger and no-ops
disappear; it measures "instructions between branches" as a proxy.  This
module turns the block trace into an explicit control-transfer cost:

* every executed instruction costs one issue slot;
* every *taken* control transfer (the next executed block is not the
  positional successor) costs ``taken_penalty`` bubble cycles — the
  refill cost of a simple scalar pipeline without branch prediction;
* unconditional jumps are always taken; conditional branches cost only
  when they branch.

Replication converts always-taken jumps into fall-throughs (and reverses
branch polarity so the frequent path falls through), so its benefit under
this model exceeds the raw instruction-count saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cfg.block import Program
from .interp import Interpreter
from .measure import Measurement

__all__ = ["PipelineModel", "PipelineResult", "pipeline_cost", "measure_pipeline"]


@dataclass(frozen=True)
class PipelineModel:
    """Cost parameters of a simple scalar pipeline."""

    taken_penalty: int = 2  # refill bubbles per taken transfer


@dataclass
class PipelineResult:
    """Cycle accounting of one traced run under the pipeline model."""

    instructions: int
    transfers_taken: int
    transfers_not_taken: int
    cycles: int

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions


def pipeline_cost(
    measurement: Measurement,
    interpreter: Interpreter,
    program: Program,
    model: PipelineModel = PipelineModel(),
) -> PipelineResult:
    """Apply the pipeline model to a traced measurement.

    Requires ``measurement`` to have been taken with ``trace=True``.
    """
    if measurement.trace is None:
        raise ValueError("pipeline_cost needs a traced measurement")

    # Map global block id -> (its id, the id of its positional successor).
    next_of: Dict[int, int] = {}
    for name, func in program.functions.items():
        for index in range(len(func.blocks) - 1):
            this_id = interpreter.global_block_id(name, index)
            next_of[this_id] = interpreter.global_block_id(name, index + 1)

    taken = 0
    not_taken = 0
    trace = measurement.trace
    # Stream pairwise over the trace (works for both the raw list and
    # the compressed trace, which iterates as raw block ids).
    iterator = iter(trace)
    current = next(iterator, None)
    get_next = next_of.get
    for follower in iterator:
        if get_next(current) == follower:
            not_taken += 1
        else:
            taken += 1
        current = follower
    # The final block's return is a taken transfer as well.
    if current is not None:
        taken += 1

    cycles = measurement.dynamic_insns + model.taken_penalty * taken
    return PipelineResult(
        instructions=measurement.dynamic_insns,
        transfers_taken=taken,
        transfers_not_taken=not_taken,
        cycles=cycles,
    )


def measure_pipeline(
    program: Program,
    target,
    stdin: bytes = b"",
    model: PipelineModel = PipelineModel(),
    max_steps: int = 200_000_000,
    engine: Optional[str] = None,
) -> PipelineResult:
    """Convenience wrapper: trace ``program`` and apply the pipeline model.

    ``engine`` follows :func:`repro.ease.measure.measure_program`.
    """
    from .compile import make_interpreter
    from .measure import measure_program

    interpreter = make_interpreter(program, engine, max_steps=max_steps)
    measurement = measure_program(
        program, target, stdin=stdin, trace=True, interpreter=interpreter
    )
    return pipeline_cost(measurement, interpreter, program, model)
