"""Control-flow visualization helpers.

``to_dot`` renders a function's CFG as Graphviz DOT text (one record node
per basic block with its RTLs, fall-through edges solid, branch-taken
edges dashed, back edges bold).  ``cfg_summary`` prints a quick
adjacency overview for terminals.  Neither requires graphviz to be
installed — they produce plain text.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from .cfg.analyses import get_analyses
from .cfg.block import BasicBlock, Function
from .rtl.insn import CondBranch, IndirectJump, Jump, Return
from .rtl.printer import format_insn

__all__ = ["to_dot", "cfg_summary"]


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("<", "\\<")
        .replace(">", "\\>")
        .replace("{", "\\{")
        .replace("}", "\\}")
        .replace("|", "\\|")
    )


def _edges(func: Function) -> List[Tuple[BasicBlock, BasicBlock, str]]:
    """(src, dst, kind) with kind in fall/taken/jump/indirect."""
    edges = []
    for index, block in enumerate(func.blocks):
        term = block.terminator
        if isinstance(term, Jump):
            edges.append((block, func.block_by_label(term.target), "jump"))
        elif isinstance(term, CondBranch):
            edges.append((block, func.blocks[index + 1], "fall"))
            edges.append((block, func.block_by_label(term.target), "taken"))
        elif isinstance(term, IndirectJump):
            for target in term.targets:
                edges.append((block, func.block_by_label(target), "indirect"))
        elif isinstance(term, Return):
            pass
        elif index + 1 < len(func.blocks):
            edges.append((block, func.blocks[index + 1], "fall"))
    return edges


def to_dot(
    func: Function,
    max_insns_per_block: int = 12,
    replicated: Optional[Iterable[str]] = None,
) -> str:
    """Render ``func`` as Graphviz DOT text.

    ``replicated`` names blocks created by code replication (e.g. from
    :meth:`repro.obs.decisions.DecisionLog.replicated_labels` for a
    traced run); they are filled light blue so the replicated tails
    stand out from the original CFG.  Loop headers stay light yellow;
    a replicated loop header keeps the replication color.
    """
    info = get_analyses(func).loops()
    back_edges: Set[Tuple[int, int]] = set()
    for loop in info.loops:
        for tail, header in loop.back_edges:
            back_edges.add((id(tail), id(header)))
    headers = {id(loop.header) for loop in info.loops}
    replicated_labels = set(replicated) if replicated is not None else set()

    lines = [f'digraph "{func.name}" {{']
    lines.append("  node [shape=record, fontname=monospace, fontsize=9];")
    lines.append('  rankdir="TB";')
    for block in func.blocks:
        shown = [format_insn(i) for i in block.insns[:max_insns_per_block]]
        if len(block.insns) > max_insns_per_block:
            shown.append(f"... +{len(block.insns) - max_insns_per_block} more")
        body = "\\l".join(_escape(t) for t in shown)
        if block.label in replicated_labels:
            style = ', style=filled, fillcolor="lightblue"'
        elif id(block) in headers:
            style = ', style=filled, fillcolor="lightyellow"'
        else:
            style = ""
        lines.append(
            f'  "{block.label}" [label="{{{_escape(block.label)}|{body}\\l}}"{style}];'
        )
    for src, dst, kind in _edges(func):
        attrs = []
        if kind == "taken":
            attrs.append("style=dashed")
        elif kind == "jump":
            attrs.append('color="red"')
        elif kind == "indirect":
            attrs.append("style=dotted")
        if (id(src), id(dst)) in back_edges:
            attrs.append("penwidth=2")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{src.label}" -> "{dst.label}"{suffix};')
    lines.append("}")
    return "\n".join(lines)


def cfg_summary(func: Function) -> str:
    """A terminal-friendly adjacency and loop overview."""
    analyses = get_analyses(func)
    info = analyses.loops()
    dom = analyses.dominators()
    lines = [f"function {func.name}: {len(func.blocks)} blocks, "
             f"{func.insn_count()} insns, {func.jump_count()} jumps, "
             f"{len(info.loops)} loops"]
    headers = {loop.header.label for loop in info.loops}
    for block in func.blocks:
        succs = ",".join(s.label for s in block.succs) or "-"
        idom = dom.idom(block)
        mark = " [loop header]" if block.label in headers else ""
        lines.append(
            f"  {block.label:>10} ({block.size():3} insns) -> {succs:30} "
            f"idom={idom.label if idom else '-'}{mark}"
        )
    return "\n".join(lines)
