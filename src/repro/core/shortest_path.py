"""Step 1 of JUMPS: shortest paths over basic blocks.

The paper finds the replacement for an unconditional jump by following the
*shortest path* in the control-flow graph, where the length of a path is the
number of RTLs in the traversed blocks.  The paper computes all-pairs
shortest paths with the Floyd/Warshall algorithm ([Wa62], [Fl62]) "once per
invocation" — :class:`ShortestPathMatrix` keeps that dense implementation
as the differential oracle.  The optimizer's hot path, however, only ever
asks about a handful of sources (the actual jump targets of one sweep), so
the default engine is the demand-driven :class:`repro.core.sssp.LazyShortestPaths`
(per-source Dijkstra, memoized across the sweep); :func:`make_shortest_paths`
selects between them.

Conventions (shared by both engines):

* ``dist(u, v)`` is the minimum total number of RTLs over all paths from
  ``u`` to ``v``, counting the RTLs of *both* endpoints and of every block
  in between.  ``dist(u, u)`` is not defined (the relation is kept
  non-reflexive, as in the paper).
* Self edges are excluded; blocks ending in an indirect jump contribute no
  outgoing edges ("the replication of indirect jumps has not yet been
  implemented", §4) — and they also cannot appear in the middle of a
  replication sequence because they never fall through.

Canonical paths
---------------

Ties between equally short paths are broken *canonically*, from distance
values alone, so every engine reconstructs the identical block sequence:
among all minimum-weight paths the hop-minimal one is chosen, and within a
hop layer the smallest-index predecessor wins.  This is what makes the lazy
engine and the dense oracle produce byte-identical replication decisions.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cfg.block import BasicBlock, Function
from ..obs import active as _active_observer

__all__ = ["ShortestPathMatrix", "ShortestPathBase", "make_shortest_paths"]

_INF = float("inf")

#: Environment override for the engine choice (``lazy`` or ``dense``);
#: an explicit ``engine=`` argument wins over the environment.
ENGINE_ENV = "REPRO_SPM_ENGINE"


class ShortestPathBase:
    """Queries shared by every shortest-path engine.

    A concrete engine snapshots the function at construction (the engine
    stays valid across replacements within one sweep: replication only
    adds blocks, so recorded shortest paths remain intact) and provides:

    * ``blocks`` / ``index`` — the block snapshot and its ``id`` index;
    * ``_sizes`` — per-block RTL counts, indexable by block index;
    * ``_succ_idx`` / ``_pred_idx`` — the snapshot adjacency with the
      paper's exclusions applied (no self edges, no edges out of blocks
      ending in indirect jumps);
    * ``_return_idx`` — indices of blocks ending in a return;
    * :meth:`_distances_from` — the distance row of one source;
    * :meth:`_best_return_from` — nearest return block for one source.
    """

    func: Function
    blocks: List[BasicBlock]
    index: Dict[int, int]

    # --- engine hooks ---------------------------------------------------------

    def _distances_from(self, i: int):
        """Distances from source ``i`` to every block index (indexable).

        Entry ``[i]`` itself is unspecified — the relation is
        non-reflexive and every query path treats the source specially.
        """
        raise NotImplementedError

    def _best_return_from(self, i: int) -> Optional[int]:
        """Index of the nearest return block (smallest index on ties)."""
        raise NotImplementedError

    # --- snapshot helpers -----------------------------------------------------

    def _snapshot(self, func: Function) -> None:
        """Capture blocks, sizes, filtered adjacency and return blocks."""
        self.func = func
        self.blocks = list(func.blocks)
        self.index = {id(block): i for i, block in enumerate(self.blocks)}
        self._sizes = [block.size() for block in self.blocks]
        succ_idx: List[List[int]] = []
        for i, block in enumerate(self.blocks):
            row: List[int] = []
            if not block.ends_in_indirect_jump():  # excluded (paper, step 1)
                for succ in block.succs:
                    j = self.index.get(id(succ))
                    # Self-reflexive transitions are excluded; duplicate
                    # edges (a conditional branch whose target is also its
                    # fall-through) collapse to one.
                    if j is not None and j != i and j not in row:
                        row.append(j)
            succ_idx.append(row)
        pred_idx: List[List[int]] = [[] for _ in self.blocks]
        for i, row in enumerate(succ_idx):
            for j in row:
                pred_idx[j].append(i)
        self._succ_idx = succ_idx
        self._pred_idx = pred_idx
        self._return_idx = [
            i for i, block in enumerate(self.blocks) if block.ends_in_return()
        ]

    # --- canonical path reconstruction ----------------------------------------

    def _canonical_path_idx(self, i: int, j: int) -> Optional[List[int]]:
        """The canonical shortest path ``i .. j`` as block indices.

        Built purely from distance values, so every engine agrees: BFS
        over the shortest-path subgraph (edges that settle the distance
        equation) finds minimal hop counts, then a backward walk picks
        the smallest-index predecessor in the previous hop layer.  All
        block sizes are non-negative integers, so the float comparisons
        below are exact.
        """
        d = self._distances_from(i)
        if i == j or not d[j] < _INF:
            return None
        sizes = self._sizes
        hops: Dict[int, int] = {i: 0}
        frontier = [i]
        depth = 0
        while frontier and j not in hops:
            depth += 1
            next_frontier: List[int] = []
            for u in frontier:
                du = sizes[i] if u == i else d[u]
                for v in self._succ_idx[u]:
                    if v == i or v in hops:
                        continue
                    if du + sizes[v] == d[v]:
                        hops[v] = depth
                        next_frontier.append(v)
            frontier = next_frontier
        if j not in hops:  # pragma: no cover - distances imply reachability
            return None
        path = [j]
        v = j
        while v != i:
            layer = hops[v] - 1
            best = -1
            for u in self._pred_idx[v]:
                if hops.get(u, -1) != layer or (best >= 0 and u >= best):
                    continue
                du = sizes[i] if u == i else d[u]
                if du + sizes[v] == d[v]:
                    best = u
            assert best >= 0, "canonical walk lost the BFS parent"
            path.append(best)
            v = best
        path.reverse()
        return path

    # --- queries --------------------------------------------------------------

    def dist(self, src: BasicBlock, dst: BasicBlock) -> float:
        """Total RTLs on the shortest path from ``src`` to ``dst`` (inclusive)."""
        i = self.index.get(id(src))
        j = self.index.get(id(dst))
        if i is None or j is None or i == j:
            return _INF
        return float(self._distances_from(i)[j])

    def path(self, src: BasicBlock, dst: BasicBlock) -> Optional[List[BasicBlock]]:
        """The blocks of the shortest path ``src .. dst`` inclusive, or None."""
        i = self.index.get(id(src))
        j = self.index.get(id(dst))
        if i is None or j is None or i == j:
            return None
        idxs = self._canonical_path_idx(i, j)
        if idxs is None:
            return None
        return [self.blocks[k] for k in idxs]

    def shortest_sequence_to_return(
        self, start: BasicBlock
    ) -> Optional[List[BasicBlock]]:
        """Option A of step 2: cheapest block sequence from ``start`` ending
        in a return from the routine ("favoring returns")."""
        if start.ends_in_return():
            return [start]
        i = self.index.get(id(start))
        if i is None:
            return None
        best_j = self._best_return_from(i)
        if best_j is None:
            return None
        idxs = self._canonical_path_idx(i, best_j)
        if idxs is None:
            return None
        return [self.blocks[k] for k in idxs]

    def shortest_sequence_to_fallthrough(
        self, start: BasicBlock, follow: BasicBlock
    ) -> Optional[List[BasicBlock]]:
        """Option B of step 2: cheapest sequence from ``start`` whose last
        block has an edge to ``follow`` ("favoring loops").  ``follow`` itself
        is *not* part of the sequence — the copy will fall through into it."""
        if any(succ is follow for succ in start.succs) and not (
            start.ends_in_indirect_jump() or start is follow
        ):
            direct: Optional[List[BasicBlock]] = [start]
        else:
            direct = None
        path = self.path(start, follow)
        via_engine = path[:-1] if path is not None and len(path) > 1 else None
        candidates = [c for c in (direct, via_engine) if c is not None]
        if not candidates:
            return None
        return min(candidates, key=lambda seq: sum(b.size() for b in seq))

    @staticmethod
    def sequence_cost(sequence: Sequence[BasicBlock]) -> int:
        return sum(block.size() for block in sequence)


class ShortestPathMatrix(ShortestPathBase):
    """All-pairs shortest paths, computed densely with Floyd/Warshall.

    This is the paper's step-1 algorithm, kept as the differential
    oracle behind ``engine="dense"`` / ``REPRO_SPM_ENGINE=dense``.
    """

    def __init__(self, func: Function) -> None:
        self._snapshot(func)
        n = len(self.blocks)
        sizes = np.array(self._sizes, dtype=np.float64)
        dist = np.full((n, n), _INF, dtype=np.float64)
        for i, row in enumerate(self._succ_idx):
            for j in row:
                weight = sizes[i] + sizes[j]
                if weight < dist[i, j]:
                    dist[i, j] = weight
        # Floyd/Warshall, vectorized over the (i, j) plane for each pivot k.
        # Intermediate block k is counted once: dist[i,k] + dist[k,j] counts
        # it twice, so subtract its size.
        for k in range(n):
            through_k = dist[:, k, None] + dist[None, k, :] - sizes[k]
            np.minimum(dist, through_k, out=dist)
        self._dist = dist
        # Nearest-return vector, filled on first use (the satellite fix:
        # one vectorized argmin instead of an all-blocks scan per query).
        self._ret_best: Optional[np.ndarray] = None

    def _distances_from(self, i: int):
        return self._dist[i]

    def _best_return_from(self, i: int) -> Optional[int]:
        if self._ret_best is None:
            n = len(self.blocks)
            ridx = self._return_idx
            if not ridx:
                self._ret_best = np.full(n, -1, dtype=np.int64)
            else:
                sub = self._dist[:, ridx].copy()
                for pos, j in enumerate(ridx):
                    sub[j, pos] = _INF  # non-reflexive: skip dist(j, j)
                best_pos = np.argmin(sub, axis=1)  # first minimum wins ties
                best = np.array(ridx, dtype=np.int64)[best_pos]
                best[sub[np.arange(n), best_pos] == _INF] = -1
                self._ret_best = best
        j = int(self._ret_best[i])
        return None if j < 0 else j


def make_shortest_paths(
    func: Function, engine: Optional[str] = None
) -> ShortestPathBase:
    """Build the step-1 engine for ``func``.

    ``engine`` is ``"lazy"`` (the default: demand-driven per-source
    Dijkstra) or ``"dense"`` (the paper's Floyd/Warshall matrix, kept as
    the differential oracle).  ``None`` defers to the ``REPRO_SPM_ENGINE``
    environment variable, then to ``"lazy"``.
    """
    name = engine or os.environ.get(ENGINE_ENV) or "lazy"
    if name == "dense":
        cls = ShortestPathMatrix
    elif name == "lazy":
        from .sssp import LazyShortestPaths

        cls = LazyShortestPaths
    else:
        raise ValueError(f"shortest-path engine must be lazy/dense, got {name!r}")
    obs = _active_observer()
    if obs is not None:
        obs.metrics.inc(f"sssp.engine.{name}")
    return cls(func)
