"""Step 1 of JUMPS: the shortest-path matrix over basic blocks.

The paper finds the replacement for an unconditional jump by following the
*shortest path* in the control-flow graph, where the length of a path is the
number of RTLs in the traversed blocks.  All-pairs shortest paths are
computed with the Floyd/Warshall algorithm ([Wa62], [Fl62] in the paper);
the matrix is computed once per invocation of JUMPS and then used for every
lookup without recalculation.

Conventions:

* ``dist(u, v)`` is the minimum total number of RTLs over all paths from
  ``u`` to ``v``, counting the RTLs of *both* endpoints and of every block
  in between.  ``dist(u, u)`` is not defined (the relation is kept
  non-reflexive, as in the paper).
* Self edges are excluded; blocks ending in an indirect jump contribute no
  outgoing edges ("the replication of indirect jumps has not yet been
  implemented", §4) — and they also cannot appear in the middle of a
  replication sequence because they never fall through.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..cfg.block import BasicBlock, Function

__all__ = ["ShortestPathMatrix"]

_INF = float("inf")


class ShortestPathMatrix:
    """All-pairs shortest paths between basic blocks, weighted by RTL count."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.blocks: List[BasicBlock] = list(func.blocks)
        self.index = {id(block): i for i, block in enumerate(self.blocks)}
        n = len(self.blocks)
        sizes = np.array([block.size() for block in self.blocks], dtype=np.float64)
        self._sizes = sizes

        dist = np.full((n, n), _INF, dtype=np.float64)
        # nxt[i, j] = index of the block following i on the shortest path to j.
        nxt = np.full((n, n), -1, dtype=np.int64)

        for i, block in enumerate(self.blocks):
            if block.ends_in_indirect_jump():
                continue  # excluded transitions (paper, step 1)
            for succ in block.succs:
                j = self.index.get(id(succ))
                if j is None or j == i:
                    continue  # self-reflexive transitions are excluded
                weight = sizes[i] + sizes[j]
                if weight < dist[i, j]:
                    dist[i, j] = weight
                    nxt[i, j] = j

        # Floyd/Warshall, vectorized over the (i, j) plane for each pivot k.
        # Intermediate block k is counted once: dist[i,k] + dist[k,j] counts
        # it twice, so subtract its size.
        for k in range(n):
            through_k = dist[:, k, None] + dist[None, k, :] - sizes[k]
            better = through_k < dist
            if better.any():
                dist = np.where(better, through_k, dist)
                nxt = np.where(better, nxt[:, k, None], nxt)
        self._dist = dist
        self._next = nxt

    # --- queries --------------------------------------------------------------

    def dist(self, src: BasicBlock, dst: BasicBlock) -> float:
        """Total RTLs on the shortest path from ``src`` to ``dst`` (inclusive)."""
        i = self.index.get(id(src))
        j = self.index.get(id(dst))
        if i is None or j is None or i == j:
            return _INF
        return float(self._dist[i, j])

    def path(self, src: BasicBlock, dst: BasicBlock) -> Optional[List[BasicBlock]]:
        """The blocks of the shortest path ``src .. dst`` inclusive, or None."""
        i = self.index.get(id(src))
        j = self.index.get(id(dst))
        if i is None or j is None or i == j or self._dist[i, j] == _INF:
            return None
        path = [self.blocks[i]]
        guard = 0
        while i != j:
            i = int(self._next[i, j])
            if i < 0:
                return None
            path.append(self.blocks[i])
            guard += 1
            if guard > len(self.blocks):
                raise RuntimeError("shortest-path reconstruction cycled")
        return path

    def shortest_sequence_to_return(
        self, start: BasicBlock
    ) -> Optional[List[BasicBlock]]:
        """Option A of step 2: cheapest block sequence from ``start`` ending
        in a return from the routine ("favoring returns")."""
        if start.ends_in_return():
            return [start]
        i = self.index.get(id(start))
        if i is None:
            return None
        best_j = -1
        best = _INF
        for j, block in enumerate(self.blocks):
            if j == i or not block.ends_in_return():
                continue
            if self._dist[i, j] < best:
                best = self._dist[i, j]
                best_j = j
        if best_j < 0:
            return None
        return self.path(start, self.blocks[best_j])

    def shortest_sequence_to_fallthrough(
        self, start: BasicBlock, follow: BasicBlock
    ) -> Optional[List[BasicBlock]]:
        """Option B of step 2: cheapest sequence from ``start`` whose last
        block has an edge to ``follow`` ("favoring loops").  ``follow`` itself
        is *not* part of the sequence — the copy will fall through into it."""
        if any(succ is follow for succ in start.succs) and not (
            start.ends_in_indirect_jump() or start is follow
        ):
            direct: Optional[List[BasicBlock]] = [start]
        else:
            direct = None
        path = self.path(start, follow)
        via_matrix = path[:-1] if path is not None and len(path) > 1 else None
        candidates = [c for c in (direct, via_matrix) if c is not None]
        if not candidates:
            return None
        return min(candidates, key=lambda seq: sum(b.size() for b in seq))

    @staticmethod
    def sequence_cost(sequence: Sequence[BasicBlock]) -> int:
        return sum(block.size() for block in sequence)
