"""Profile-guided code replication (extension).

The paper replicates *every* unconditional jump and pays an average 53 %
static growth; its related-work section cites Hwu & Chang's use of
profiling to bound the growth of inlining.  This extension applies the
same idea to replication:

1. the program is fully optimized under SIMPLE (without delay slots) and
   executed once on a training input, recording per-block execution
   counts;
2. JUMPS then runs with a filter that only replaces jumps whose block
   executed at least ``threshold`` × (total executed jumps) times —
   replication goes where the dynamic savings are;
3. a light cleanup (branch chaining, dead code, dead variables) and
   delay-slot filling finish the job.

``threshold=0`` replicates everything measured as executed at least once
(cold code keeps its jumps); higher thresholds trade dynamic savings for
smaller static growth.  The ablation harness
``benchmarks/bench_ablation_profile.py`` sweeps the threshold.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cfg.block import BasicBlock, Function, Program
from ..ease.interp import Interpreter
from ..opt.branch_chaining import branch_chaining
from ..opt.dead_code import eliminate_dead_code
from ..opt.dead_vars import eliminate_dead_variables
from ..opt.driver import OptimizationConfig, optimize_program
from ..rtl.insn import Jump
from ..targets.delay_slots import fill_delay_slots
from ..targets.machine import Machine, get_target
from .replication import CodeReplicator, Policy, ReplicationMode, ReplicationStats

__all__ = ["profile_guided_replication", "ProfileGuidedResult"]


class ProfileGuidedResult:
    """Outcome of a profile-guided compile."""

    def __init__(
        self,
        program: Program,
        stats: ReplicationStats,
        profile: Dict[Tuple[str, str], int],
        hot_jumps: int,
        cold_jumps: int,
    ) -> None:
        self.program = program
        self.stats = stats
        self.profile = profile
        self.hot_jumps = hot_jumps
        self.cold_jumps = cold_jumps


def _collect_profile(
    program: Program, stdin: bytes, max_steps: int
) -> Dict[Tuple[str, str], int]:
    """(function, block label) -> execution count, from one training run."""
    interp = Interpreter(program, max_steps=max_steps)
    result = interp.run(stdin=stdin)
    # Every existing block gets an entry (0 when never executed) so that
    # blocks *created later by replication* are distinguishable: they are
    # absent from the profile entirely.
    profile: Dict[Tuple[str, str], int] = {
        (name, block.label): 0
        for name, func in program.functions.items()
        for block in func.blocks
    }
    for (func_name, block_index), count in result.block_counts.items():
        label = program.functions[func_name].blocks[block_index].label
        profile[(func_name, label)] = count
    return profile


def profile_guided_replication(
    program: Program,
    target: Machine,
    train_stdin: bytes = b"",
    threshold: float = 0.0,
    policy: Policy = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
    max_steps: int = 200_000_000,
    engine: Optional[str] = None,
) -> ProfileGuidedResult:
    """Optimize ``program`` in place with profile-guided JUMPS.

    :param threshold: minimum fraction of the program's executed jumps a
        jump must account for to be replicated.  ``0.0`` means "executed
        at least once".
    :param engine: the step-1 shortest-path engine ("lazy" / "dense").
    """
    if isinstance(target, str):
        target = get_target(target)

    # Phase 1: SIMPLE optimization without delay slots, then profile.
    config = OptimizationConfig(replication="none", fill_delay_slots=False)
    optimize_program(program, target, config)
    profile = _collect_profile(program, train_stdin, max_steps)

    # Total executed jumps define the hotness scale.
    total_jumps = 0
    for name, func in program.functions.items():
        for block in func.blocks:
            if isinstance(block.terminator, Jump):
                total_jumps += profile.get((name, block.label), 0)
    cutoff = threshold * total_jumps

    hot = 0
    cold = 0
    for name, func in program.functions.items():
        for block in func.blocks:
            if isinstance(block.terminator, Jump):
                count = profile.get((name, block.label), 0)
                if count > 0 and count >= cutoff:
                    hot += 1
                else:
                    cold += 1

    # Phase 2: replicate only the hot jumps.
    stats = ReplicationStats()
    for name, func in program.functions.items():

        def is_hot(func_: Function, block: BasicBlock, jump: Jump, _name=name) -> bool:
            count = profile.get((_name, block.label))
            if count is None:
                # A block created by replication inherits its original's
                # hotness (it was only copied because that was hot); its
                # leftover jumps must be finished, not frozen mid-rotation.
                return True
            return count > 0 and count >= cutoff

        replicator = CodeReplicator(
            mode=ReplicationMode.JUMPS,
            policy=policy,
            max_rtls=max_rtls,
            jump_filter=is_hot,
            engine=engine,
        )
        stats.merge(replicator.run(func))

    # Phase 3: cleanup and delay slots.
    for func in program.functions.values():
        branch_chaining(func)
        eliminate_dead_code(func)
        eliminate_dead_variables(func)
        if target.has_delay_slots:
            fill_delay_slots(func)
    return ProfileGuidedResult(program, stats, profile, hot, cold)
