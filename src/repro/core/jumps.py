"""JUMPS — the paper's generalized code-replication algorithm (§4).

This is a thin, user-facing wrapper around the replication engine
configured for the generalized algorithm: any unconditional jump is a
candidate and all six steps are applied.

Usage::

    from repro.core import replicate_jumps

    stats = replicate_jumps(func)          # mutate func in place
    assert func.jump_count() == 0 or stats.jumps_kept > 0
"""

from __future__ import annotations

from typing import Optional

from ..cfg.block import Function, Program
from .replication import (
    CodeReplicator,
    Policy,
    ReplicationMode,
    ReplicationStats,
)

__all__ = ["replicate_jumps", "replicate_jumps_in_program"]


def replicate_jumps(
    func: Function,
    policy: Policy = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
    allow_irreducible: bool = False,
    engine: Optional[str] = None,
) -> ReplicationStats:
    """Run the JUMPS algorithm on ``func`` (in place).

    :param policy: the step-2 heuristic arbitrating between the
        favoring-returns and favoring-loops sequences.
    :param max_rtls: optional bound on the length of a replication sequence
        in RTLs (the paper's §6 future-work extension).
    :param allow_irreducible: skip the step-6 reducibility rollback; used by
        the optimizer driver for the final invocation (§5.1).
    :param engine: the step-1 shortest-path engine ("lazy" / "dense");
        ``None`` defers to ``REPRO_SPM_ENGINE`` and the default.
    """
    replicator = CodeReplicator(
        mode=ReplicationMode.JUMPS,
        policy=policy,
        max_rtls=max_rtls,
        allow_irreducible=allow_irreducible,
        engine=engine,
    )
    return replicator.run(func)


def replicate_jumps_in_program(
    program: Program,
    policy: Policy = Policy.SHORTEST,
    max_rtls: Optional[int] = None,
    allow_irreducible: bool = False,
    engine: Optional[str] = None,
) -> ReplicationStats:
    """Run JUMPS over every function of ``program``; return merged stats."""
    total = ReplicationStats()
    for func in program.functions.values():
        total.merge(
            replicate_jumps(func, policy, max_rtls, allow_irreducible, engine)
        )
    return total
