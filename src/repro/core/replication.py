"""The code-replication engine (steps 2–6 of the JUMPS algorithm).

Given an unconditional jump at the end of a block, the engine:

* selects a replacement sequence of blocks (step 2; two options — "favoring
  returns" and "favoring loops" — arbitrated by a policy heuristic),
* completes natural loops entered by the sequence (step 3, Figure 1),
* copies the sequence after the jump block and adjusts the control flow:
  intra-sequence jumps vanish into fall-throughs, conditional branches are
  reversed when the copy does not follow the fall-through transition, and
  duplicate occurrences prefer forward branches (step 4),
* retargets conditional branches of uncopied blocks of a partially copied
  loop to the copies (step 5, Figure 2),
* verifies that the flow graph is still reducible and rolls the replication
  back otherwise, retrying with the alternative sequence (step 6).

The same engine implements the paper's LOOPS configuration (classic
replication of loop termination conditions) by restricting the admissible
sequences; see :class:`ReplicationMode`.

Loop completion (step 3), as implemented here, triggers when a collected
block is a natural-loop header entered from outside the loop *and* partial
replication would leave the original loop with a second entry point.  When
the consumed jump was the loop's only external entry the loop simply
rotates (the common for/while rotation of §3.1) and no completion is
needed; the reducibility check of step 6 backs this heuristic up.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, fields
from typing import Callable, List, Optional, Sequence, Tuple

from ..cfg.analyses import get_analyses
from ..cfg.block import BasicBlock, Function
from ..cfg.graph import compute_flow
from ..cfg.loops import Loop, LoopInfo
from ..obs import active as _active_observer
from ..obs.decisions import ReplicationDecision
from ..obs.tracer import NULL_SPAN
from ..rtl.insn import CondBranch, IndirectJump, Jump, Return
from .shortest_path import ShortestPathBase, make_shortest_paths

__all__ = [
    "ReplicationMode",
    "Policy",
    "ReplicationStats",
    "CodeReplicator",
    "clone_function",
]


class ReplicationMode(enum.Enum):
    """Which configuration of the paper is being run."""

    JUMPS = "jumps"  # the generalized algorithm of §4
    LOOPS = "loops"  # only loop termination conditions (§5, "LOOPS")


class Policy(enum.Enum):
    """Step-2 heuristic choosing between the two sequence options."""

    SHORTEST = "shortest"  # fewest replicated RTLs first (minimal growth)
    FAVOR_RETURNS = "returns"
    FAVOR_LOOPS = "loops"


@dataclass
class ReplicationStats:
    """Counters describing what one engine run did.

    :meth:`merge` folds another run in by iterating
    ``dataclasses.fields``, so a counter added to this class is merged
    automatically — a regression test asserts no field can be silently
    dropped when stats from per-function runs are combined (e.g. by
    :func:`repro.core.jumps.replicate_jumps_in_program`).
    """

    jumps_replaced: int = 0
    rtls_replicated: int = 0
    rollbacks: int = 0
    jumps_kept: int = 0
    #: Times the block-count safety valve ended a run early (the function
    #: grew to ``max_function_blocks``).  A non-zero count means remaining
    #: jumps are a bounded-growth artifact, not an algorithmic leftover.
    valve_block_trips: int = 0
    #: Times the per-run replication budget ran out while sweeps were
    #: still finding work.  Kept separate from the block valve so callers
    #: (the autotuner in particular) can tell "the function exploded"
    #: from "the run was cut short" instead of mis-scoring both the same.
    valve_budget_trips: int = 0
    #: Jumps the convergence guard refused because their identity already
    #: appeared in their own block's replication ancestry — the §5.2
    #: "replication ad infinitum" self-similarity, stopped at its root
    #: rather than by a growth valve.
    guard_stops: int = 0

    @property
    def valve_trips(self) -> int:
        """Total safety-valve trips (block cap + budget), either cause."""
        return self.valve_block_trips + self.valve_budget_trips

    def merge(self, other: "ReplicationStats") -> None:
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def as_dict(self) -> dict:
        data = asdict(self)
        data["valve_trips"] = self.valve_trips
        return data

    def __repr__(self) -> str:
        return (
            f"<ReplicationStats replaced={self.jumps_replaced} "
            f"rtls={self.rtls_replicated} rollbacks={self.rollbacks} "
            f"kept={self.jumps_kept}>"
        )


def clone_function(func: Function) -> Function:
    """Deep-copy a function (blocks, instructions, frame layout)."""
    copy = Function(func.name, func.params)
    copy.frame = dict(func.frame)
    copy.frame_size = func.frame_size
    # Carry the label counter so a clone generates the same fresh labels
    # the original would — deterministic replay (pass bisection in the
    # translation validator) relies on it.
    copy._next_label = func._next_label
    copy.blocks = []
    for block in func.blocks:
        cloned = BasicBlock(block.label, [insn.clone() for insn in block.insns])
        # Replication provenance must survive cloning: the convergence
        # guard's decisions (and hence the whole replay) depend on it.
        cloned.replica_origin = block.replica_origin
        cloned.replica_ancestry = block.replica_ancestry
        copy.blocks.append(cloned)
    compute_flow(copy)
    return copy


class CodeReplicator:
    """Applies code replication to one function until no jump can be replaced."""

    def __init__(
        self,
        mode: ReplicationMode = ReplicationMode.JUMPS,
        policy: Policy = Policy.SHORTEST,
        max_rtls: Optional[int] = None,
        allow_irreducible: bool = False,
        max_replications_per_function: int = 2000,
        max_function_blocks: int = 4000,
        jump_filter: Optional[
            Callable[[Function, BasicBlock, Jump], bool]
        ] = None,
        engine: Optional[str] = None,
        after_sweep: Optional[Callable[[Function, int], None]] = None,
        convergence_guard: bool = True,
    ) -> None:
        self.mode = mode
        self.policy = policy
        self.max_rtls = max_rtls
        self.allow_irreducible = allow_irreducible
        self.max_replications = max_replications_per_function
        # The primary termination mechanism: refuse to replicate a jump
        # whose identity — the (origin, origin) label pair the jump stands
        # for — already appears in its own block's replication ancestry.
        # Such a jump exists only because an earlier replication of the
        # *same* identity copied it; replicating it again expands the same
        # structure inside its own expansion, the non-terminating cascade
        # of §5.2.  Disabled only by tests pinning the safety valves.
        self.convergence_guard = convergence_guard
        # Which step-1 shortest-path engine to use ("lazy" / "dense");
        # ``None`` defers to the ``REPRO_SPM_ENGINE`` environment variable
        # and ultimately the default.  Both engines produce byte-identical
        # replication decisions; "dense" is kept as a differential oracle.
        self.engine = engine
        # Optional predicate deciding whether a particular jump should be
        # replaced at all — the hook used by profile-guided replication.
        self.jump_filter = jump_filter
        # Called as ``after_sweep(func, sweep_number)`` once each sweep
        # finishes — the translation validator sanitizes the CFG here.
        self.after_sweep = after_sweep
        # A safeguard against pathological cascades on adversarial flow
        # graphs ("replication ad infinitum", §5.2): stop growing once the
        # function reaches this many blocks.
        self.max_function_blocks = max_function_blocks

    # ------------------------------------------------------------------ driver

    def run(self, func: Function) -> ReplicationStats:
        """Replace unconditional jumps in ``func``; return statistics."""
        stats = ReplicationStats()
        obs = _active_observer()
        tracer = obs.tracer if obs is not None and obs.tracer.enabled else None
        budget = self.max_replications
        progress = True
        sweep = 0
        while progress and budget > 0:
            if len(func.blocks) >= self.max_function_blocks:
                stats.valve_block_trips += 1
                self._record_valve(func, obs, "max_function_blocks")
                break
            progress = False
            sweep += 1
            with (
                tracer.span("jumps.sweep", function=func.name, sweep=sweep)
                if tracer is not None
                else NULL_SPAN
            ):
                compute_flow(func)
                with (
                    tracer.span("jumps.step1.shortest_paths")
                    if tracer is not None
                    else NULL_SPAN
                ):
                    matrix = make_shortest_paths(func, self.engine)  # step 1
                # Step 2: traverse the blocks sequentially.  The matrix stays
                # valid across replacements within one sweep: replication only
                # adds blocks, so recorded shortest paths remain intact.
                position = 0
                while position < len(func.blocks) and budget > 0:
                    block = func.blocks[position]
                    term = block.terminator
                    # The final, allow_irreducible invocation retries jumps
                    # that earlier passes flagged as unreplaceable (§5.1).
                    if isinstance(term, Jump) and (
                        self.allow_irreducible or not term.no_replicate
                    ):
                        if self._replace_jump(
                            func, block, term, matrix, stats, obs, tracer
                        ):
                            progress = True
                            budget -= 1
                    position += 1
            if self.after_sweep is not None:
                self.after_sweep(func, sweep)
        if progress and budget <= 0:
            # The replication budget ran out while sweeps were still
            # finding work — the cascade valve, not a fixpoint.
            stats.valve_budget_trips += 1
            self._record_valve(func, obs, "budget_exhausted")
        return stats

    @staticmethod
    def _record_valve(func: Function, obs, reason: str) -> None:
        """Count a valve trip, labelled by cause (the two are distinct:
        ``max_function_blocks`` means the function exploded,
        ``budget_exhausted`` means the run was cut short mid-progress)."""
        if obs is None:
            return
        obs.metrics.inc("replication.valve_trips")
        obs.metrics.inc(f"replication.valve_trips.{reason}")
        if obs.decisions.enabled:
            obs.decisions.record(
                ReplicationDecision(
                    function=func.name,
                    block="",
                    target="",
                    mode="valve",
                    policy="",
                    outcome="valve",
                    reason=reason,
                )
            )

    # ----------------------------------------------------------- jump handling

    def _replace_jump(
        self,
        func: Function,
        block: BasicBlock,
        jump: Jump,
        matrix: ShortestPathBase,
        stats: ReplicationStats,
        obs=None,
        tracer=None,
    ) -> bool:
        def decide(outcome: str, reason: str = "", **extra) -> None:
            """Emit one decision-log event + outcome counters."""
            if obs is None:
                return
            obs.metrics.inc(f"replication.{outcome}")
            if reason:
                obs.metrics.inc(f"replication.reason.{reason}")
            if obs.decisions.enabled:
                obs.decisions.record(
                    ReplicationDecision(
                        function=func.name,
                        block=block.label,
                        target=jump.target,
                        mode=self.mode.value,
                        policy=self.policy.value,
                        outcome=outcome,
                        reason=reason,
                        **extra,
                    )
                )

        if self.jump_filter is not None and not self.jump_filter(
            func, block, jump
        ):
            decide("kept", "filtered")
            return False
        try:
            target = func.block_by_label(jump.target)
        except KeyError:
            decide("kept", "unresolved_target")
            return False
        if target is block:
            # A jump to the start of its own block: an infinite loop.  The
            # paper notes these provide no replacement opportunity.
            decide("kept", "self_loop")
            return False
        follow = func.next_block(block)
        if id(target) not in matrix.index and target is not follow:
            # The target was created by a replication during this sweep and
            # is not in the matrix yet; retry with a fresh matrix next sweep.
            decide("kept", "stale_target")
            return False

        # A jump straight to the next block is simply redundant.
        if target is follow:
            block.insns.pop()
            compute_flow(func)
            stats.jumps_replaced += 1
            decide("redundant")
            return True

        # Convergence guard (§5.2): the jump's identity is the pair of
        # *original* labels it stands for, stable across replication
        # copies.  If that identity is already in this block's ancestry,
        # the block exists only because this very jump was replicated
        # before — copying it again is the self-similar expansion that
        # never reaches a fixpoint.  Jump identities are drawn from the
        # finite set of original label pairs and every replica's ancestry
        # strictly grows, so with the guard every run terminates; the
        # block/budget valves remain as backstops only.
        identity = (block.origin_label, target.origin_label)
        if self.convergence_guard and identity in block.replica_ancestry:
            jump.no_replicate = True
            stats.jumps_kept += 1
            stats.guard_stops += 1
            if obs is not None:
                obs.metrics.inc("replication.convergence_guard")
            decide("kept", "convergence_guard")
            return False

        loops = get_analyses(func).loops()
        with (
            tracer.span("jumps.step2.select", block=block.label)
            if tracer is not None
            else NULL_SPAN
        ) as select_span:
            options = self._candidate_sequences(target, follow, matrix)
        select_span.set(options=len(options))
        attempts = 0
        rollbacks = 0
        last_reason = "no_candidates"
        last_kind = ""
        last_blocks = 0
        last_rtls = 0
        for sequence, ends_by_fallthrough in options:
            attempts += 1
            last_kind = "fallthrough" if ends_by_fallthrough else "returns"
            with (
                tracer.span("jumps.step3.complete_loops")
                if tracer is not None
                else NULL_SPAN
            ):
                completed = self._complete_loops(func, block, sequence, loops)
            if completed is None:
                last_reason = "loop_completion"
                last_blocks = len(sequence)
                last_rtls = sum(b.size() for b in sequence)
                continue
            last_blocks = len(completed)
            last_rtls = sum(b.size() for b in completed)
            if self.max_rtls is not None and last_rtls > self.max_rtls:
                last_reason = "max_rtls"
                continue
            if not self._admissible(block, completed, follow, loops, ends_by_fallthrough):
                last_reason = "inadmissible"
                continue
            with (
                tracer.span("jumps.step4_5.apply", blocks=last_blocks)
                if tracer is not None
                else NULL_SPAN
            ):
                undo, copies = self._apply(
                    func,
                    block,
                    completed,
                    follow,
                    ends_by_fallthrough,
                    loops,
                    identity,
                )
            with (
                tracer.span("jumps.step6.reducibility")
                if tracer is not None
                else NULL_SPAN
            ):
                reducible = self.allow_irreducible or get_analyses(func).reducible()
            if reducible:
                stats.jumps_replaced += 1
                stats.rtls_replicated += last_rtls
                decide(
                    "accepted",
                    sequence_kind=last_kind,
                    sequence_blocks=last_blocks,
                    sequence_rtls=last_rtls,
                    attempts=attempts,
                    rollbacks=rollbacks,
                    copies=copies,
                )
                if obs is not None:
                    obs.metrics.inc("replication.rtls_replicated", last_rtls)
                    obs.metrics.observe("replication.sequence_rtls", last_rtls)
                    obs.metrics.observe(
                        "replication.sequence_blocks", last_blocks
                    )
                return True
            undo()  # step 6: roll back and try the alternative sequence
            stats.rollbacks += 1
            rollbacks += 1
            if obs is not None:
                obs.metrics.inc("replication.rollback")
            last_reason = "irreducible"
        jump.no_replicate = True
        stats.jumps_kept += 1
        decide(
            "rejected",
            last_reason,
            sequence_kind=last_kind,
            sequence_blocks=last_blocks,
            sequence_rtls=last_rtls,
            attempts=attempts,
            rollbacks=rollbacks,
        )
        return False

    def _candidate_sequences(
        self,
        target: BasicBlock,
        follow: Optional[BasicBlock],
        matrix: ShortestPathBase,
    ) -> List[Tuple[List[BasicBlock], bool]]:
        """The (sequence, ends-by-falling-through) options, in policy order."""
        to_return = matrix.shortest_sequence_to_return(target)
        to_follow = (
            matrix.shortest_sequence_to_fallthrough(target, follow)
            if follow is not None
            else None
        )
        options: List[Tuple[List[BasicBlock], bool]] = []
        if to_return is not None:
            options.append((to_return, False))
        if to_follow is not None:
            options.append((to_follow, True))
        if len(options) == 2:
            if self.policy is Policy.SHORTEST:
                options.sort(key=lambda item: sum(b.size() for b in item[0]))
            elif self.policy is Policy.FAVOR_RETURNS:
                options.sort(key=lambda item: item[1])
            else:  # Policy.FAVOR_LOOPS
                options.sort(key=lambda item: not item[1])
        return options

    def _admissible(
        self,
        block: BasicBlock,
        sequence: List[BasicBlock],
        follow: Optional[BasicBlock],
        loops: LoopInfo,
        ends_by_fallthrough: bool,
    ) -> bool:
        """Mode restriction: LOOPS only replicates loop termination tests."""
        if self.mode is ReplicationMode.JUMPS:
            return True
        # LOOPS: a single block, ending in a conditional branch, that is the
        # test of a natural loop adjacent to the jump — i.e. the jump either
        # precedes the loop (rotating a for/while loop) or sits at the end of
        # the loop (moving the test to the bottom).
        if not ends_by_fallthrough or len(sequence) != 1:
            return False
        test = sequence[0]
        if not test.ends_in_cond_branch():
            return False
        for loop in loops.loops_containing(test):
            if block in loop.blocks:
                return True  # the jump is the loop's back edge
            if follow is not None and follow in loop.blocks:
                return True  # the jump precedes the loop, falling into it
        return False

    # ------------------------------------------------------------ step 3: loops

    def _complete_loops(
        self,
        func: Function,
        jump_block: BasicBlock,
        sequence: Sequence[BasicBlock],
        loops: LoopInfo,
    ) -> Optional[List[BasicBlock]]:
        """Step 3: pull whole natural loops into the sequence (Figure 1)."""
        result: List[BasicBlock] = []
        previous = jump_block
        index = 0
        items = list(sequence)
        while index < len(items):
            collected = items[index]
            loop = loops.loop_with_header(collected)
            if (
                loop is not None
                and previous not in loop.blocks
                and self._completion_needed(collected, loop, jump_block, index == 0)
            ):
                members = loop.members_in_layout_order(func)
                # The copied control flow must still *enter* at the collected
                # header, so rotate the positional order to start there.
                start = next(i for i, m in enumerate(members) if m is collected)
                members = members[start:] + members[:start]
                result.extend(members)
                index += 1
                # Path blocks inside the loop are already part of the splice.
                while index < len(items) and items[index] in loop.blocks:
                    index += 1
                previous = members[-1]
                continue
            result.append(collected)
            previous = collected
            index += 1
            if len(result) > 4 * len(func.blocks) + 8:
                return None  # pathological growth; refuse this sequence
        return result

    @staticmethod
    def _completion_needed(
        header: BasicBlock, loop: Loop, jump_block: BasicBlock, first: bool
    ) -> bool:
        """Does partial replication leave the original loop with two entries?

        For a mid-sequence header the original entry edges are untouched, so
        the copy's residual edges into the loop always add a second entry:
        complete.  For the *first* collected block the jump edge itself is
        consumed; if that was the only entry from outside, the loop merely
        rotates and no completion is required (the for/while rotation case
        of §3.1).
        """
        if not first:
            return True
        external_preds = [
            pred
            for pred in header.preds
            if pred not in loop.blocks and pred is not jump_block
        ]
        return bool(external_preds)

    # --------------------------------------------------- steps 4/5: application

    def _apply(
        self,
        func: Function,
        jump_block: BasicBlock,
        sequence: List[BasicBlock],
        follow: Optional[BasicBlock],
        ends_by_fallthrough: bool,
        loops: LoopInfo,
        identity: Tuple[str, str],
    ) -> Tuple[Callable[[], None], List[str]]:
        """Copy ``sequence`` after ``jump_block`` and rewire the control flow.

        ``identity`` is the replicated jump's identity — the (origin,
        origin) label pair — recorded in every created block's ancestry
        so the convergence guard can recognize self-similar expansion.

        Returns an ``undo`` callable restoring the function exactly (used
        by the step-6 reducibility rollback) plus the labels of the new
        blocks (replica copies and branch stubs) for the decision log.
        """
        copies = [BasicBlock(func.new_label()) for _ in sequence]

        def map_target(position: int, original: BasicBlock) -> str:
            """Step 4/5 target mapping: nearest forward copy first, then the
            nearest backward copy (loop back edges), then the original."""
            for j in range(position + 1, len(sequence)):
                if sequence[j] is original:
                    return copies[j].label
            for j in range(position, -1, -1):
                if sequence[j] is original:
                    return copies[j].label
            return original.label

        new_blocks: List[BasicBlock] = []
        for position, (original, copy) in enumerate(zip(sequence, copies)):
            term = original.terminator
            body = original.insns[:-1] if term is not None else original.insns
            copy.insns.extend(insn.clone() for insn in body)
            if position + 1 < len(copies):
                next_label: Optional[str] = copies[position + 1].label
            elif ends_by_fallthrough and follow is not None:
                next_label = follow.label
            else:
                next_label = None
            stub = self._finish_copy(
                func, original, copy, term, position, next_label, map_target
            )
            # Provenance: each copy descends from everything its source
            # block and the jump block descend from, plus this very
            # replication event.  The guard stopped any jump whose
            # identity was already in ``jump_block``'s ancestry, so the
            # copies' ancestry strictly grows along creation chains —
            # the termination argument rests on that.
            ancestry = (
                jump_block.replica_ancestry
                | original.replica_ancestry
                | {identity}
            )
            copy.replica_origin = original.origin_label
            copy.replica_ancestry = ancestry
            new_blocks.append(copy)
            if stub is not None:
                # The stub materializes the fall-through edge of the
                # copied conditional branch; it belongs to the same copy.
                stub.replica_origin = original.origin_label
                stub.replica_ancestry = ancestry
                new_blocks.append(stub)

        # Consume the jump only *after* the copies are built: loop
        # completion can splice ``jump_block`` itself into the sequence
        # (the jump's loop contains it), and its copy must replicate the
        # jump like any other — popping first would build that copy from
        # a terminator-less block, silently dropping the copied back
        # edge and falling through into unrelated code.
        removed_jump = jump_block.insns.pop()
        insert_at = func.block_index(jump_block) + 1
        func.blocks[insert_at:insert_at] = new_blocks

        # Step 5: retarget conditional branches of uncopied blocks of a
        # partially copied loop to the copies (Figure 2).
        retargets: List[Tuple[CondBranch, str]] = []
        jump_loop = loops.innermost_loop_of(jump_block)
        if jump_loop is not None:
            copied_in_loop = {}
            for i, original in enumerate(sequence):
                if original in jump_loop.blocks and id(original) not in copied_in_loop:
                    copied_in_loop[id(original)] = copies[i].label
            for member in jump_loop.blocks:
                if member is jump_block or any(member is b for b in sequence):
                    continue
                term = member.terminator
                if isinstance(term, CondBranch):
                    try:
                        dest = func.block_by_label(term.target)
                    except KeyError:
                        continue
                    new_label = copied_in_loop.get(id(dest))
                    if new_label is not None:
                        retargets.append((term, term.target))
                        term.target = new_label
        compute_flow(func)

        def undo() -> None:
            del func.blocks[insert_at : insert_at + len(new_blocks)]
            jump_block.insns.append(removed_jump)
            for branch, old_target in retargets:
                branch.target = old_target
            compute_flow(func)

        return undo, [b.label for b in new_blocks]

    def _finish_copy(
        self,
        func: Function,
        original: BasicBlock,
        copy: BasicBlock,
        term,
        position: int,
        next_label: Optional[str],
        map_target: Callable[[int, BasicBlock], str],
    ) -> Optional[BasicBlock]:
        """Append the rewritten terminator to ``copy`` (step 4).

        ``next_label`` is the label of the block that will positionally
        follow the copy.  Returns an extra stub block when the copy needs
        both a conditional branch and an unconditional jump (possible only
        for spliced loop members whose layout neighbours were not copied).
        """
        if term is None:
            # The original fell through to its positional successor.
            dest = func.next_block(original)
            assert dest is not None, f"{original.label} falls off the function end"
            mapped = map_target(position, dest)
            if mapped != next_label:
                copy.insns.append(Jump(mapped))
            return None
        if isinstance(term, Return):
            copy.insns.append(term.clone())
            return None
        if isinstance(term, Jump):
            mapped = map_target(position, func.block_by_label(term.target))
            if mapped != next_label:
                # Cannot fall through (e.g. a completed loop's back edge):
                # keep an explicit jump; a later sweep may replace it too.
                copy.insns.append(Jump(mapped))
            return None
        if isinstance(term, CondBranch):
            taken = func.block_by_label(term.target)
            fall = func.next_block(original)
            assert fall is not None
            mapped_taken = map_target(position, taken)
            mapped_fall = map_target(position, fall)
            if mapped_fall == next_label:
                copy.insns.append(CondBranch(term.rel, mapped_taken))
                return None
            if mapped_taken == next_label:
                # Step 4: reverse the branch when the copied path follows the
                # branch-taken transition instead of the fall-through.
                reversed_branch = term.clone()
                reversed_branch.reverse(mapped_fall)
                copy.insns.append(reversed_branch)
                return None
            copy.insns.append(CondBranch(term.rel, mapped_taken))
            return BasicBlock(func.new_label(), [Jump(mapped_fall)])
        if isinstance(term, IndirectJump):
            # Shortest paths never route *through* an indirect jump (step 1
            # excludes its edges), but loop completion may pull one in as a
            # loop member.  Copying it is safe: the jump table's labels map
            # like any other target (the §6 future-work extension notes
            # "the jump destinations do not need to be copied").
            mapped_targets = [
                map_target(position, func.block_by_label(t))
                for t in term.targets
            ]
            copy.insns.append(IndirectJump(term.addr, mapped_targets))
            return None
        raise AssertionError(f"cannot replicate terminator {term!r}")
