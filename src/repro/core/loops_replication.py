"""LOOPS — replication of loop termination conditions only (§5).

This is the conventional optimization ("often implemented in optimizing
compilers", the paper notes): an unconditional jump preceding a natural
loop, or at the end of one, is replaced by a copy of the loop's termination
condition with the condition reversed.  Depending on the original layout
this either removes one jump at the loop entry or saves one jump per
iteration.

It is implemented as a restriction of the general replication engine: only
single-block favoring-loops sequences that end in a conditional branch and
are the test of a loop adjacent to the jump are admissible.
"""

from __future__ import annotations

from typing import Optional

from ..cfg.block import Function, Program
from .replication import CodeReplicator, Policy, ReplicationMode, ReplicationStats

__all__ = ["replicate_loop_tests", "replicate_loop_tests_in_program"]


def replicate_loop_tests(
    func: Function, engine: Optional[str] = None
) -> ReplicationStats:
    """Run the LOOPS configuration on ``func`` (in place)."""
    replicator = CodeReplicator(
        mode=ReplicationMode.LOOPS,
        policy=Policy.FAVOR_LOOPS,
        engine=engine,
    )
    return replicator.run(func)


def replicate_loop_tests_in_program(
    program: Program, engine: Optional[str] = None
) -> ReplicationStats:
    """Run LOOPS over every function of ``program``; return merged stats."""
    total = ReplicationStats()
    for func in program.functions.values():
        total.merge(replicate_loop_tests(func, engine))
    return total
