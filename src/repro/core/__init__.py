"""The paper's contribution: code replication (JUMPS and LOOPS)."""

from .jumps import replicate_jumps, replicate_jumps_in_program
from .loops_replication import (
    replicate_loop_tests,
    replicate_loop_tests_in_program,
)
from .profile_guided import ProfileGuidedResult, profile_guided_replication
from .replication import (
    CodeReplicator,
    Policy,
    ReplicationMode,
    ReplicationStats,
    clone_function,
)
from .shortest_path import ShortestPathBase, ShortestPathMatrix, make_shortest_paths
from .sssp import LazyShortestPaths

__all__ = [
    "replicate_jumps",
    "replicate_jumps_in_program",
    "replicate_loop_tests",
    "replicate_loop_tests_in_program",
    "CodeReplicator",
    "Policy",
    "ReplicationMode",
    "ReplicationStats",
    "clone_function",
    "ShortestPathBase",
    "ShortestPathMatrix",
    "LazyShortestPaths",
    "make_shortest_paths",
    "ProfileGuidedResult",
    "profile_guided_replication",
]
