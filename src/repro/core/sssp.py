"""Demand-driven single-source shortest paths — the lazy step-1 engine.

The paper computes the full all-pairs matrix "once per invocation of
JUMPS", but the optimizer driver invokes JUMPS once per *sweep*, and a
sweep only ever queries a handful of sources: the targets of the
unconditional jumps under consideration (plus, transitively, the blocks
of the chosen sequences).  :class:`LazyShortestPaths` therefore answers
the same queries as the dense matrix by running one binary-heap Dijkstra
per *queried* source, memoized for the lifetime of the engine (one
sweep).  Distance values are identical to Floyd/Warshall — both compute
true shortest distances under the paper's weight conventions — and path
reconstruction is the canonical, engine-independent procedure of
:class:`repro.core.shortest_path.ShortestPathBase`, so replication
decisions are byte-identical between the engines.

Observability: each Dijkstra run increments ``sssp.dijkstra_runs`` and
its relaxation count lands in ``sssp.relaxations``, so ``repro trace``
shows exactly how much of the all-pairs work the lazy engine avoided.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

from ..cfg.block import Function
from ..obs import active as _active_observer
from .shortest_path import _INF, ShortestPathBase

__all__ = ["LazyShortestPaths"]


class LazyShortestPaths(ShortestPathBase):
    """Per-source Dijkstra over the block graph, memoized per source."""

    def __init__(self, func: Function) -> None:
        self._snapshot(func)
        self._rows: Dict[int, List[float]] = {}
        #: Nearest-return index per queried source (memoized like rows).
        self._ret_best: Dict[int, Optional[int]] = {}

    # --- engine hooks ---------------------------------------------------------

    def _distances_from(self, i: int) -> List[float]:
        row = self._rows.get(i)
        if row is None:
            row = self._dijkstra(i)
            self._rows[i] = row
        return row

    def _best_return_from(self, i: int) -> Optional[int]:
        if i not in self._ret_best:
            d = self._distances_from(i)
            best: Optional[int] = None
            best_d = _INF
            # Ascending index order + strict improvement: the smallest
            # index among minimal distances wins, as in the dense oracle.
            for j in self._return_idx:
                if j != i and d[j] < best_d:
                    best_d = d[j]
                    best = j
            self._ret_best[i] = best
        return self._ret_best[i]

    # --- the solver -----------------------------------------------------------

    def _dijkstra(self, i: int) -> List[float]:
        """Distances from block ``i`` under the paper's conventions.

        The weight of a path is the RTL count of every block on it,
        both endpoints included, realized as node weights: entering
        block ``v`` costs ``size(v)``, and the source's own size seeds
        the frontier.  The source is never re-entered (the relation is
        non-reflexive; queries mask ``dist(i, i)`` anyway).
        """
        sizes = self._sizes
        succ = self._succ_idx
        d = [_INF] * len(self.blocks)
        d[i] = float(sizes[i])
        heap: List[tuple] = [(d[i], i)]
        relaxations = 0
        while heap:
            du, u = heappop(heap)
            if du > d[u]:
                continue  # stale entry
            for v in succ[u]:
                if v == i:
                    continue
                nd = du + sizes[v]
                relaxations += 1
                if nd < d[v]:
                    d[v] = nd
                    heappush(heap, (nd, v))
        obs = _active_observer()
        if obs is not None:
            obs.metrics.inc("sssp.dijkstra_runs")
            obs.metrics.inc("sssp.relaxations", relaxations)
        return d
