"""A deterministic mini-C fuzzer for the translation validator.

Generates small, always-terminating programs from the same grammar the
hypothesis-based differential tests use — bounded loops with dedicated
counter variables, guarded divisions, bounded shift counts, forward
``goto``s (the construct the paper is about), and ``switch`` — but
driven by a seeded :class:`random.Random` so a CI campaign is exactly
reproducible from its seed.

:func:`verify_source` compiles one program and optimizes it under a
:class:`~repro.verify.verifier.Verifier`; :func:`run_campaign` fuzzes
``n`` programs under ``--verify full``, minimizing the first failure
into a small reproducer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import VerificationError
from .minimize import minimize_source
from .verifier import Verifier

__all__ = ["generate_program", "verify_source", "run_campaign", "CampaignResult"]

_VARS = ["a", "b", "c", "d"]
_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"]
_RELS = ["<", "<=", ">", ">=", "==", "!="]


class _Generator:
    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.loop_counter = 0
        self.label_counter = 0

    # --- expressions ------------------------------------------------------

    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        if depth >= 3 or rng.random() < 0.5:
            if rng.random() < 0.4:
                return str(rng.randint(-50, 50))
            return rng.choice(_VARS)
        op = rng.choice(_BINOPS)
        left = self.expr(depth + 1)
        if op in ("/", "%"):
            right = str(rng.randint(1, 9))  # guarded: no division by zero
        elif op in ("<<", ">>"):
            right = str(rng.randint(0, 8))
        else:
            right = self.expr(depth + 1)
        return f"({left} {op} {right})"

    def cond(self, depth: int = 0) -> str:
        rng = self.rng
        if depth >= 2 or rng.random() < 0.6:
            return f"({self.expr()} {rng.choice(_RELS)} {self.expr()})"
        left = self.cond(depth + 1)
        right = self.cond(depth + 1)
        if rng.random() < 0.3:
            return f"(!{left})"
        return f"({left} {rng.choice(['&&', '||'])} {right})"

    # --- statements -------------------------------------------------------

    def stmt(self, depth: int, loop_depth: int) -> str:
        rng = self.rng
        kinds = [
            "assign",
            "assign",
            "compound",
            "if",
            "ifelse",
            "for",
            "while",
            "dowhile",
            "goto",
            "switch",
        ]
        if loop_depth > 0:
            kinds += ["break", "continue"]
        kind = rng.choice(kinds)
        indent = "    " * (depth + 1)
        if kind == "assign" or depth >= 3:
            return f"{indent}{rng.choice(_VARS)} = {self.expr()};"
        if kind == "compound":
            op = rng.choice(["+=", "-=", "*=", "^="])
            return f"{indent}{rng.choice(_VARS)} {op} {self.expr()};"
        if kind == "break":
            return f"{indent}break;"
        if kind == "continue":
            return f"{indent}continue;"
        if kind == "if":
            body = self.stmt(depth + 1, loop_depth)
            return f"{indent}if {self.cond()} {{\n{body}\n{indent}}}"
        if kind == "ifelse":
            then = self.stmt(depth + 1, loop_depth)
            other = self.stmt(depth + 1, loop_depth)
            return (
                f"{indent}if {self.cond()} {{\n{then}\n{indent}}} "
                f"else {{\n{other}\n{indent}}}"
            )
        if kind == "goto":
            # Bounded forward goto: conditionally skip one statement.
            label = f"L{self.label_counter}"
            self.label_counter += 1
            skipped = self.stmt(depth + 1, loop_depth)
            landing = rng.choice(_VARS)
            return (
                f"{indent}if {self.cond()} {{\n{indent}    goto {label};\n"
                f"{indent}}}\n{skipped}\n"
                f"{indent}{label}: {landing} = {landing};"
            )
        if kind == "switch":
            var = rng.choice(_VARS)
            arms = []
            for value in range(rng.randint(2, 4)):
                body = self.stmt(depth + 1, loop_depth)
                arms.append(f"{indent}case {value}:\n{body}\n{indent}    break;")
            arms.append(f"{indent}default:\n{self.stmt(depth + 1, loop_depth)}")
            joined = "\n".join(arms)
            return f"{indent}switch ({var} & 7) {{\n{joined}\n{indent}}}"
        # Loops get a dedicated counter the body can never write, so they
        # always terminate.
        counter = f"i{self.loop_counter}"
        self.loop_counter += 1
        bound = rng.randint(1, 6)
        body = self.stmt(depth + 1, loop_depth + 1)
        if kind == "while":
            return (
                f"{indent}{counter} = 0;\n"
                f"{indent}while ({counter} < {bound}) {{\n"
                f"{indent}    {counter} = {counter} + 1;\n"
                f"{body}\n{indent}}}"
            )
        if kind == "dowhile":
            return (
                f"{indent}{counter} = 0;\n"
                f"{indent}do {{\n"
                f"{indent}    {counter} = {counter} + 1;\n"
                f"{body}\n{indent}}} while ({counter} < {bound});"
            )
        return (
            f"{indent}for ({counter} = 0; {counter} < {bound}; {counter}++) {{\n"
            f"{body}\n{indent}}}"
        )


def generate_program(seed: int) -> str:
    """One deterministic mini-C program for ``seed``."""
    rng = random.Random(seed)
    gen = _Generator(rng)
    n_stmts = rng.randint(1, 5)
    body = "\n".join(gen.stmt(0, 0) for _ in range(n_stmts))
    counters = "".join(
        f"    int i{k};\n" for k in range(max(1, gen.loop_counter))
    )
    inits = "\n".join(f"    {v} = {rng.randint(-20, 20)};" for v in _VARS)
    return (
        "int main() {\n"
        "    int a, b, c, d;\n"
        f"{counters}"
        f"{inits}\n"
        f"{body}\n"
        '    printf("%d %d %d %d\\n", a, b, c, d);\n'
        "    return (a ^ b ^ c ^ d) & 255;\n"
        "}\n"
    )


def verify_source(
    source: str,
    target: str = "sparc",
    replication: str = "jumps",
    mode: str = "full",
    inputs: Optional[List[bytes]] = None,
    bisect: bool = True,
    max_rtls: Optional[int] = None,
) -> Dict[str, object]:
    """Compile + optimize ``source`` under verification; return the report.

    Raises :class:`~repro.verify.errors.VerificationError` on failure.
    """
    from ..frontend.codegen import compile_c
    from ..opt.driver import OptimizationConfig, optimize_program
    from ..targets.machine import get_target

    program = compile_c(source)
    verifier = Verifier(mode, inputs=inputs, bisect=bisect)
    config = OptimizationConfig(replication=replication, max_rtls=max_rtls)
    stats = optimize_program(program, get_target(target), config, verifier=verifier)
    report = verifier.report()
    # Valve accounting rides along so campaigns can assert the §5.2
    # convergence guard keeps the backstop valves silent.
    report["valve_trips"] = stats.valve_trips
    report["valve_block_trips"] = stats.valve_block_trips
    report["valve_budget_trips"] = stats.valve_budget_trips
    report["guard_stops"] = stats.guard_stops
    return report


@dataclass
class CampaignResult:
    """Outcome of one fuzzing campaign."""

    programs_run: int = 0
    failures: int = 0
    #: Seed, error text, original and minimized source of the first failure.
    first_failure: Optional[Dict[str, object]] = None
    #: Aggregated verifier counters over every clean run.
    totals: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failures == 0


def run_campaign(
    count: int,
    seed: int = 0,
    target: str = "sparc",
    replication: str = "jumps",
    mode: str = "full",
    stop_on_failure: bool = True,
    minimize: bool = True,
    max_rtls: Optional[int] = None,
) -> CampaignResult:
    """Fuzz ``count`` programs under verification (CI's verify-smoke job).

    Campaigns run the unbounded engine by default.  Historically this
    defaulted to the paper's §6 ``max_rtls=64`` bound because a fuzzed
    program occasionally handed the JUMPS engine a shape where unbounded
    replication cascaded to the 4000-block safety valve, costing minutes
    per program.  The convergence guard
    (:class:`repro.core.replication.CodeReplicator`) now stops that
    cascade at its root, so the workaround is gone; pass an explicit
    ``max_rtls`` to exercise the bounded engine.
    """
    result = CampaignResult()
    for index in range(count):
        program_seed = seed + index
        source = generate_program(program_seed)
        try:
            report = verify_source(
                source,
                target=target,
                replication=replication,
                mode=mode,
                max_rtls=max_rtls,
            )
        except VerificationError as exc:
            result.failures += 1
            if result.first_failure is None:
                failure: Dict[str, object] = {
                    "seed": program_seed,
                    "error": str(exc),
                    "source": source,
                }
                if minimize:
                    failure["minimized"] = minimize_source(
                        source,
                        lambda candidate: _still_fails(
                            candidate, target, replication, mode, max_rtls
                        ),
                    )
                result.first_failure = failure
            if stop_on_failure:
                break
        else:
            for key in (
                "sanitize_checks",
                "oracle_runs",
                "pass_invocations",
                "valve_trips",
                "valve_block_trips",
                "valve_budget_trips",
                "guard_stops",
            ):
                result.totals[key] = result.totals.get(key, 0) + int(
                    report.get(key, 0)
                )
        result.programs_run += 1
    return result


def _still_fails(
    source: str,
    target: str,
    replication: str,
    mode: str,
    max_rtls: Optional[int] = None,
) -> bool:
    try:
        verify_source(
            source,
            target=target,
            replication=replication,
            mode=mode,
            bisect=False,
            max_rtls=max_rtls,
        )
    except VerificationError:
        return True
    except Exception:
        return False  # broken candidate (parse error etc.), not a repro
    return False
