"""The verification orchestrator: sanitize, oracle, and pass bisection.

One :class:`Verifier` instance accompanies one ``optimize_program`` run.
The driver consults it at four points:

* ``allow_pass(func, name)`` — before each pass invocation.  In a
  primary run this always answers True while recording the invocation in
  ``pass_trace``; a bisection *replay* (:class:`ReplayGate`) answers
  False once its budget is exhausted, so the replayed pipeline stops
  after exactly ``k`` pass invocations.
* ``after_pass(func, name)`` — sanitize the function (every mode except
  ``off``).
* ``after_sweep(func, sweep)`` — sanitize after each replication sweep.
* ``after_function(func)`` / ``finish()`` — oracle checkpoints in
  ``full`` mode: the current program is interpreted against the recorded
  inputs and compared with the pristine program's behaviour.

Bisection
---------

Because every pass is deterministic within a process, replaying the
pipeline on a fresh clone of the pristine program reproduces the primary
run's pass sequence exactly — so "the program after the first ``k`` pass
invocations" is a well-defined, recomputable object.  When an oracle
checkpoint fails after ``n`` invocations, a binary search over the
budget ``k`` finds the smallest failing prefix; the guilty pass is the
``k``-th entry of the recorded trace.  ``verify.bisect.steps`` counts
the replays the search needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cfg.block import Function, Program
from ..obs import active as _active_observer
from ..obs.decisions import ReplicationDecision
from .errors import MiscompileError, SanitizeError
from .oracle import (
    ORACLE_MAX_STEPS,
    capture_behavior,
    clone_program,
    diff_behaviors,
)
from .sanitize import sanitize_function

__all__ = ["Verifier", "ReplayGate", "VERIFY_MODES", "resolve_mode"]

VERIFY_MODES = ("off", "sanitize", "full")


def resolve_mode(mode: Optional[str]) -> str:
    """Resolve an explicit mode or fall back to ``REPRO_VERIFY``/off."""
    if mode is None:
        import os

        mode = os.environ.get("REPRO_VERIFY", "off").strip().lower() or "off"
    if mode not in VERIFY_MODES:
        raise ValueError(
            f"verify mode must be one of {'/'.join(VERIFY_MODES)}, got {mode!r}"
        )
    return mode


class ReplayGate:
    """Budgeted no-op verifier driving one bisection replay.

    Allows exactly ``budget`` pass invocations, then denies the rest; no
    sanitizing, no oracle — the replay's job is only to reproduce the
    intermediate program.
    """

    def __init__(self, budget: int) -> None:
        self.budget = budget
        self.executed = 0
        self.pass_trace: List[Tuple[str, str]] = []

    def allow_pass(self, func: Function, name: str) -> bool:
        if self.executed >= self.budget:
            return False
        self.executed += 1
        self.pass_trace.append((func.name, name))
        return True

    def begin(self, program: Program, target=None, config=None) -> None:
        pass

    def after_pass(self, func: Function, name: str) -> None:
        pass

    def after_sweep(self, func: Function, sweep: int) -> None:
        pass

    def after_function(self, func: Function) -> None:
        pass

    def finish(self) -> Dict[str, object]:
        return {}


class Verifier:
    """Translation validation for one ``optimize_program`` run."""

    def __init__(
        self,
        mode: str = "sanitize",
        inputs: Optional[Sequence[bytes]] = None,
        bisect: bool = True,
        max_steps: int = ORACLE_MAX_STEPS,
    ) -> None:
        self.mode = resolve_mode(mode)
        self.inputs: List[bytes] = list(inputs) if inputs else [b""]
        self.bisect = bisect
        self.max_steps = max_steps
        self.pass_trace: List[Tuple[str, str]] = []
        self.executed = 0
        self.sanitize_checks = 0
        self.oracle_runs = 0
        self.bisect_steps = 0
        self.program: Optional[Program] = None
        self.target = None
        self.config = None
        self.pristine: Optional[Program] = None
        self.reference = None
        self._post_regalloc: set = set()
        self._failure: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------ lifecycle

    def begin(self, program: Program, target=None, config=None) -> None:
        """Snapshot the pristine program and its reference behaviour."""
        self.program = program
        self.target = target
        self.config = config
        self.pass_trace.clear()
        self.executed = 0
        self._post_regalloc.clear()
        self._failure = None
        if self.mode == "full":
            self.pristine = clone_program(program)
            self.reference = capture_behavior(
                self.pristine, self.inputs, self.max_steps
            )

    def finish(self) -> Dict[str, object]:
        """Final oracle checkpoint; returns the verification report."""
        if self.mode == "full" and self.program is not None:
            self._oracle_checkpoint("finish")
        return self.report()

    def report(self) -> Dict[str, object]:
        report: Dict[str, object] = {
            "mode": self.mode,
            "pass_invocations": self.executed,
            "sanitize_checks": self.sanitize_checks,
            "oracle_runs": self.oracle_runs,
            "bisect_steps": self.bisect_steps,
        }
        if self._failure is not None:
            report["failure"] = self._failure
        return report

    # ------------------------------------------------------------ pass hooks

    def allow_pass(self, func: Function, name: str) -> bool:
        self.executed += 1
        self.pass_trace.append((func.name, name))
        return True

    def after_pass(self, func: Function, name: str) -> None:
        if self.mode == "off":
            return
        if name == "regalloc":
            self._post_regalloc.add(func.name)
        self._sanitize(func, name)

    def after_sweep(self, func: Function, sweep: int) -> None:
        if self.mode == "off":
            return
        self._sanitize(func, f"replication sweep {sweep}")

    def after_function(self, func: Function) -> None:
        if self.mode != "full":
            return
        self._oracle_checkpoint(f"function {func.name}")

    # ------------------------------------------------------------ sanitizer

    def _sanitize(self, func: Function, stage: str) -> None:
        self.sanitize_checks += 1
        violations = sanitize_function(
            func,
            program=self.program,
            post_regalloc=func.name in self._post_regalloc,
        )
        obs = _active_observer()
        if obs is not None:
            obs.metrics.inc(
                "verify.sanitize.fail" if violations else "verify.sanitize.pass"
            )
        if violations:
            self._failure = {
                "kind": "sanitize",
                "function": func.name,
                "stage": stage,
                "violations": violations,
            }
            raise SanitizeError(func.name, stage, violations)

    # ------------------------------------------------------------ the oracle

    def _capture(self, program: Program) -> List:
        self.oracle_runs += 1
        obs = _active_observer()
        if obs is not None:
            obs.metrics.inc("verify.oracle.runs")
        return capture_behavior(program, self.inputs, self.max_steps)

    def _oracle_checkpoint(self, checkpoint: str) -> None:
        assert self.program is not None and self.reference is not None
        divergence = diff_behaviors(self.reference, self._capture(self.program))
        if divergence is None:
            return
        failure: Dict[str, object] = {
            "kind": "miscompile",
            "checkpoint": checkpoint,
            **divergence,
        }
        if self.bisect:
            failure["bisection"] = self._bisect()
        self._failure = failure
        guilty = (failure.get("bisection") or {}).get("guilty_pass")
        obs = _active_observer()
        if obs is not None:
            obs.metrics.inc("verify.miscompiles")
            if obs.decisions.enabled:
                obs.decisions.record(
                    ReplicationDecision(
                        function=checkpoint,
                        block="",
                        target="",
                        mode="verify",
                        policy="oracle",
                        outcome="verify_miscompile",
                        reason=str(guilty or divergence["diff"]),
                    )
                )
        message = (
            f"miscompile detected at checkpoint {checkpoint!r} "
            f"(input #{divergence['input_index']}): {divergence['diff']}"
        )
        if guilty:
            message += f"; bisection blames pass {guilty!r}"
        raise MiscompileError(message, {"failure": failure})

    # ------------------------------------------------------------ bisection

    def _replay(self, budget: int) -> Tuple[bool, ReplayGate]:
        """Re-run the pipeline with a pass budget; True = behaviour diverges."""
        from ..opt.driver import optimize_program

        assert self.pristine is not None and self.reference is not None
        program = clone_program(self.pristine)
        gate = ReplayGate(budget)
        optimize_program(program, self.target, self.config, verifier=gate)
        diverged = diff_behaviors(self.reference, self._capture(program))
        return diverged is not None, gate

    def _bisect(self) -> Dict[str, object]:
        """Binary-search the smallest failing pass-invocation prefix."""
        obs = _active_observer()

        def probe(k: int) -> Tuple[bool, ReplayGate]:
            self.bisect_steps += 1
            if obs is not None:
                obs.metrics.inc("verify.bisect.steps")
            return self._replay(k)

        hi = self.executed
        bad, gate = probe(hi)
        if not bad:
            # The full replay does not reproduce the divergence: some pass
            # is nondeterministic within the process, which bisection
            # cannot attribute.  Report that instead of guessing.
            return {
                "reproduced": False,
                "steps": self.bisect_steps,
                "guilty_pass": None,
            }
        if hi == 0:
            return {
                "reproduced": True,
                "steps": self.bisect_steps,
                "guilty_pass": None,
            }
        lo = 0
        trace = gate.pass_trace
        while hi - lo > 1:
            mid = (lo + hi) // 2
            bad, gate = probe(mid)
            if bad:
                hi = mid
                trace = gate.pass_trace
            else:
                lo = mid
        func_name, pass_name = trace[hi - 1]
        return {
            "reproduced": True,
            "k_bad": hi,
            "k_good": lo,
            "steps": self.bisect_steps,
            "guilty_pass": f"{func_name}:{pass_name}",
            "guilty_function": func_name,
            "guilty_pass_name": pass_name,
        }
