"""The structural sanitizer: CFG and RTL invariants, checked without mutation.

This is the cheap half of translation validation.  After every optimizer
pass (and after every JUMPS/LOOPS replication sweep) the sanitizer walks
one function and verifies every invariant the rest of the system leans
on.  Unlike :func:`repro.cfg.graph.check_function` it never mutates the
function — edges are recomputed into local tables and *compared*, so a
sanitizer run can be interposed anywhere (including inside a bisection
replay) without perturbing the very state it is checking.

Invariant groups
----------------

CFG:

* the function has blocks, block labels are unique;
* only the final instruction of a block is a control transfer;
* the final block does not fall off the end of the function;
* every branch target resolves to a block of the function (label-table
  integrity; ``IndirectJump`` tables are non-empty);
* a block ending in a conditional branch has a positional successor;
* predecessor/successor lists match a fresh (non-mutating) edge
  recomputation exactly — same blocks, same order;
* ``cfg_edition`` coherence: the :class:`~repro.cfg.analyses.AnalysisManager`
  attached to the function must not be *ahead* of the function's
  edition, and a reverse-postorder cached at the current edition must
  match a fresh recomputation (a pass that mutated structure without
  ``compute_flow`` bumping the edition shows up here).

RTL:

* every instruction/expression node is a known kind with well-formed
  operands (register banks, memory widths, operators, branch relations);
* ``Local`` references name a frame slot, ``Sym`` references a program
  global, ``Call`` targets a program function or interpreter builtin
  (when the program context is supplied);
* defined-before-use for virtual registers: a use of a ``v``-bank
  register that **no** definition can reach along *any* path is flagged
  (may-reach dataflow; virtual registers with no definition anywhere are
  exempt — they model source variables read before first assignment,
  which the zero-initialised machine defines as 0);
* post-regalloc: no ``v``-bank register survives colouring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg.block import BasicBlock, Function, Program
from ..cfg.traversal import reverse_postorder
from ..rtl.expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from ..rtl.insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Nop,
    RELATIONS,
    Return,
)
from .errors import SanitizeError

__all__ = ["sanitize_function", "sanitize_program", "check_sanitized"]

_KNOWN_BANKS = {"d", "a", "r", "v", "arg", "rv", "cc"}
_KNOWN_WIDTHS = {"B", "W", "L"}
_KNOWN_BINOPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
_KNOWN_UNOPS = {"-", "~"}
_KNOWN_INSNS = (
    Assign,
    Compare,
    CondBranch,
    Jump,
    IndirectJump,
    Call,
    Return,
    Nop,
)


# --------------------------------------------------------------------------
# CFG invariants
# --------------------------------------------------------------------------


def _expected_edges(
    func: Function, problems: List[str]
) -> Dict[int, List[BasicBlock]]:
    """Recompute successor lists into a local table (no mutation)."""
    by_label: Dict[str, BasicBlock] = {}
    for block in func.blocks:
        if block.label in by_label:
            problems.append(f"duplicate label {block.label!r}")
        by_label[block.label] = block

    succs: Dict[int, List[BasicBlock]] = {}
    for index, block in enumerate(func.blocks):
        nxt = func.blocks[index + 1] if index + 1 < len(func.blocks) else None
        term = block.terminator
        expected: List[BasicBlock] = []

        def resolve(label: str) -> Optional[BasicBlock]:
            target = by_label.get(label)
            if target is None:
                problems.append(
                    f"block {block.label}: branch target {label!r} "
                    "resolves to no block (label table broken)"
                )
            return target

        if isinstance(term, Jump):
            target = resolve(term.target)
            if target is not None:
                expected.append(target)
        elif isinstance(term, CondBranch):
            if nxt is None:
                problems.append(
                    f"block {block.label}: conditional branch at the "
                    "function end has no fall-through block"
                )
            else:
                expected.append(nxt)
            target = resolve(term.target)
            if target is not None:
                expected.append(target)
        elif isinstance(term, Return):
            pass
        elif isinstance(term, IndirectJump):
            if not term.targets:
                problems.append(
                    f"block {block.label}: indirect jump with an empty "
                    "target table"
                )
            for label in term.targets:
                target = resolve(label)
                if target is not None:
                    expected.append(target)
        else:
            if nxt is not None:
                expected.append(nxt)
        succs[id(block)] = expected
    return succs


def _check_cfg(func: Function, problems: List[str]) -> None:
    if not func.blocks:
        problems.append("function has no blocks")
        return

    for block in func.blocks:
        for insn in block.insns[:-1]:
            if insn.is_transfer():
                problems.append(
                    f"block {block.label}: transfer {insn!r} not at block end"
                )

    last = func.blocks[-1]
    if last.falls_through():
        problems.append(
            f"final block {last.label} falls off the end of the function"
        )

    expected_succs = _expected_edges(func, problems)

    # Expected predecessor lists, rebuilt in compute_flow's append order.
    expected_preds: Dict[int, List[BasicBlock]] = {
        id(block): [] for block in func.blocks
    }
    for block in func.blocks:
        for succ in expected_succs[id(block)]:
            expected_preds[id(succ)].append(block)

    for block in func.blocks:
        want = expected_succs[id(block)]
        got = block.succs
        if len(want) != len(got) or any(a is not b for a, b in zip(want, got)):
            problems.append(
                f"block {block.label}: stale successors "
                f"{[s.label for s in got]} vs fresh "
                f"{[s.label for s in want]}"
            )
        want_p = expected_preds[id(block)]
        got_p = block.preds
        if len(want_p) != len(got_p) or any(
            a is not b for a, b in zip(want_p, got_p)
        ):
            problems.append(
                f"block {block.label}: stale predecessors "
                f"{[p.label for p in got_p]} vs fresh "
                f"{[p.label for p in want_p]}"
            )


def _check_edition_coherence(func: Function, problems: List[str]) -> None:
    """The AnalysisManager cache must agree with the current structure."""
    manager = getattr(func, "_analysis_manager", None)
    if manager is None:
        return
    if manager._edition > func.cfg_edition:
        problems.append(
            f"analysis cache edition {manager._edition} is ahead of "
            f"cfg_edition {func.cfg_edition}"
        )
        return
    if manager._edition != func.cfg_edition:
        return  # stale cache: will be rebuilt on next use; nothing to check
    cached_rpo = manager._cache.get("rpo")
    if cached_rpo is not None:
        fresh = reverse_postorder(func)
        if len(cached_rpo) != len(fresh) or any(
            a is not b for a, b in zip(cached_rpo, fresh)
        ):
            problems.append(
                "cached reverse postorder "
                f"{[b.label for b in cached_rpo]} disagrees with a fresh "
                f"recomputation {[b.label for b in fresh]} at the same "
                f"cfg_edition {func.cfg_edition} — a pass mutated the "
                "graph without compute_flow noticing"
            )


# --------------------------------------------------------------------------
# RTL invariants
# --------------------------------------------------------------------------


def _check_expr(
    expr: Expr,
    func: Function,
    program: Optional[Program],
    where: str,
    problems: List[str],
) -> None:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Const):
            if not isinstance(node.value, int):
                problems.append(f"{where}: Const holds {node.value!r} (not int)")
        elif isinstance(node, Reg):
            if node.bank not in _KNOWN_BANKS:
                problems.append(f"{where}: unknown register bank {node.bank!r}")
            if not isinstance(node.index, int) or node.index < 0:
                problems.append(f"{where}: bad register index {node.index!r}")
        elif isinstance(node, Sym):
            if program is not None and node.name not in program.globals:
                problems.append(
                    f"{where}: Sym {node.name!r} names no program global"
                )
        elif isinstance(node, Local):
            if node.name not in func.frame:
                problems.append(
                    f"{where}: Local {node.name!r} names no frame slot"
                )
        elif isinstance(node, Mem):
            if node.width not in _KNOWN_WIDTHS:
                problems.append(f"{where}: bad memory width {node.width!r}")
            stack.append(node.addr)
        elif isinstance(node, BinOp):
            if node.op not in _KNOWN_BINOPS:
                problems.append(f"{where}: unknown binary operator {node.op!r}")
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, UnOp):
            if node.op not in _KNOWN_UNOPS:
                problems.append(f"{where}: unknown unary operator {node.op!r}")
            stack.append(node.operand)
        else:
            problems.append(f"{where}: unknown expression node {node!r}")


def _check_insns(
    func: Function,
    program: Optional[Program],
    post_regalloc: bool,
    problems: List[str],
) -> None:
    from ..ease.runtime import is_builtin

    for block in func.blocks:
        for insn in block.insns:
            where = f"{block.label}/{insn!r}"
            if not isinstance(insn, _KNOWN_INSNS):
                problems.append(f"{where}: unknown instruction kind")
                continue
            if isinstance(insn, Assign) and not isinstance(insn.dst, (Reg, Mem)):
                problems.append(
                    f"{where}: assignment destination {insn.dst!r} is "
                    "neither Reg nor Mem"
                )
            if isinstance(insn, CondBranch) and insn.rel not in RELATIONS:
                problems.append(f"{where}: bad branch relation {insn.rel!r}")
            if isinstance(insn, Call):
                if (
                    program is not None
                    and insn.func not in program.functions
                    and not is_builtin(insn.func)
                ):
                    problems.append(
                        f"{where}: call to unknown function {insn.func!r}"
                    )
            for expr in insn.used_exprs():
                _check_expr(expr, func, program, where, problems)
            if isinstance(insn, Assign) and isinstance(insn.dst, Reg):
                _check_expr(insn.dst, func, program, where, problems)
            if post_regalloc:
                regs = set(insn.used_regs())
                defined = insn.defined_reg()
                if defined is not None:
                    regs.add(defined)
                for reg in regs:
                    if reg.bank == "v":
                        problems.append(
                            f"{where}: virtual register {reg!r} survived "
                            "register allocation"
                        )


def _check_vreg_defined_before_use(func: Function, problems: List[str]) -> None:
    """Flag ``v``-bank uses that no definition reaches on any path.

    Only *reachable* blocks participate: a pass that proves a branch
    constant (``fold_branches``) may strand blocks until the next dead
    code sweep, and uses inside stranded blocks are vacuous.
    """
    if not func.blocks:
        return
    reachable: List[BasicBlock] = []
    seen: Set[int] = set()
    stack = [func.blocks[0]]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        reachable.append(block)
        stack.extend(block.succs)

    all_defs: Set[Reg] = set()
    for block in reachable:
        for insn in block.insns:
            defined = insn.defined_reg()
            if defined is not None and defined.bank == "v":
                all_defs.add(defined)
    if not all_defs:
        return

    # Forward may-defined dataflow over virtual registers only.
    may_in: Dict[int, Set[Reg]] = {id(block): set() for block in reachable}
    gen: Dict[int, Set[Reg]] = {}
    for block in reachable:
        defs: Set[Reg] = set()
        for insn in block.insns:
            defined = insn.defined_reg()
            if defined is not None and defined.bank == "v":
                defs.add(defined)
        gen[id(block)] = defs

    changed = True
    while changed:
        changed = False
        for block in reachable:
            out = may_in[id(block)] | gen[id(block)]
            for succ in block.succs:
                before = may_in[id(succ)]
                merged = before | out
                if len(merged) != len(before):
                    may_in[id(succ)] = merged
                    changed = True

    for block in reachable:
        available = set(may_in[id(block)])
        for insn in block.insns:
            for reg in insn.used_regs():
                if (
                    reg.bank == "v"
                    and reg in all_defs
                    and reg not in available
                ):
                    problems.append(
                        f"{block.label}/{insn!r}: virtual register {reg!r} "
                        "used before any definition can reach it "
                        "(on every path)"
                    )
            defined = insn.defined_reg()
            if defined is not None and defined.bank == "v":
                available.add(defined)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def sanitize_function(
    func: Function,
    program: Optional[Program] = None,
    post_regalloc: bool = False,
) -> List[str]:
    """Collect every violated invariant of ``func`` (empty list = clean).

    Never mutates the function; safe to interpose after any pass.
    """
    problems: List[str] = []
    _check_cfg(func, problems)
    _check_edition_coherence(func, problems)
    _check_insns(func, program, post_regalloc, problems)
    _check_vreg_defined_before_use(func, problems)
    return problems


def sanitize_program(
    program: Program, post_regalloc: bool = False
) -> Dict[str, List[str]]:
    """Per-function violations over a whole program (clean functions omitted)."""
    report: Dict[str, List[str]] = {}
    for func in program.functions.values():
        problems = sanitize_function(func, program, post_regalloc)
        if problems:
            report[func.name] = problems
    return report


def check_sanitized(
    func: Function,
    stage: str,
    program: Optional[Program] = None,
    post_regalloc: bool = False,
) -> None:
    """Raise :class:`SanitizeError` naming ``stage`` if ``func`` is dirty."""
    problems = sanitize_function(func, program, post_regalloc)
    if problems:
        raise SanitizeError(func.name, stage, problems)
