"""The differential execution oracle.

The expensive half of translation validation: run the program on the
EASE interpreter before and after optimization (or at any intermediate
pipeline point — the interpreter executes virtual-register RTL just as
happily as coloured RTL) against recorded inputs, and compare everything
the paper's semantics-preservation claim covers:

* the bytes written to stdout,
* the exit code,
* the final image of the globals region of memory.

The heap is deliberately excluded — its layout is a function of
allocation order, which optimization may legitimately change — and so is
the stack, which is dead once ``main`` returns.  Globals are compared
byte-for-byte because no pass is allowed to remove or reorder visible
stores (``dead_vars`` only deletes register assignments).

Trap policy: a run that traps (division by zero, out-of-range indirect
jump, step-limit blowout, stack overflow) has no defined observable
behaviour in our source language, so a *reference* trap makes the input
uncomparable and it is skipped.  A trap **introduced** by optimization —
reference ran fine, optimized program traps — is a miscompile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cfg.block import Program
from ..core.replication import clone_function
from ..ease.interp import Interpreter, StepLimitExceeded

__all__ = [
    "Behavior",
    "clone_program",
    "capture_behavior",
    "behavior_diff",
    "diff_behaviors",
    "ORACLE_MAX_STEPS",
]

# A tight budget compared to the interpreter's default: oracle runs are
# repeated per checkpoint and per bisection probe.  Sized so that every
# Table-3 benchmark's *unoptimized* reference fits with headroom (the
# largest, mincost, runs ~2.2M instructions) — a reference that trips
# the limit traps, which silently skips every comparison for that input
# and makes verification vacuous.
ORACLE_MAX_STEPS = 10_000_000


@dataclass
class Behavior:
    """The observable outcome of one program run on one input."""

    output: bytes = b""
    exit_code: int = 0
    globals_image: bytes = b""
    trap: Optional[str] = None  # exception type name when the run trapped

    @property
    def trapped(self) -> bool:
        return self.trap is not None


def clone_program(program: Program) -> Program:
    """Deep-copy every function; share the (immutable-in-practice) globals.

    Optimization never touches :class:`~repro.cfg.block.GlobalData`, so
    sharing the global objects keeps clones cheap while the function
    bodies — the thing passes mutate — are fully independent.
    """
    copy = Program()
    copy.globals = dict(program.globals)
    copy._string_counter = program._string_counter
    for func in program.functions.values():
        copy.add_function(clone_function(func))
    return copy


def capture_behavior(
    program: Program,
    inputs: Sequence[bytes],
    max_steps: int = ORACLE_MAX_STEPS,
) -> List[Behavior]:
    """Run ``program`` on every input; traps become ``Behavior.trap``."""
    interp = Interpreter(program, max_steps=max_steps)
    behaviors: List[Behavior] = []
    for stdin in inputs:
        try:
            result = interp.run(stdin=stdin)
        except (
            StepLimitExceeded,
            ZeroDivisionError,
            IndexError,
            MemoryError,
            KeyError,
            NameError,
            ValueError,
        ) as exc:
            behaviors.append(Behavior(trap=type(exc).__name__))
        else:
            behaviors.append(
                Behavior(
                    output=result.output,
                    exit_code=result.exit_code,
                    globals_image=result.globals_image,
                )
            )
    return behaviors


def behavior_diff(reference: Behavior, candidate: Behavior) -> Optional[str]:
    """Describe the first observable divergence, or ``None`` if equivalent.

    A trapped reference run makes the input uncomparable (returns
    ``None``); a trap only on the candidate side is a divergence.
    """
    if reference.trapped:
        return None
    if candidate.trapped:
        return f"optimized program traps ({candidate.trap}); reference ran fine"
    if candidate.output != reference.output:
        return (
            f"stdout differs: expected {reference.output!r}, "
            f"got {candidate.output!r}"
        )
    if candidate.exit_code != reference.exit_code:
        return (
            f"exit code differs: expected {reference.exit_code}, "
            f"got {candidate.exit_code}"
        )
    if candidate.globals_image != reference.globals_image:
        offset = next(
            (
                i
                for i, (a, b) in enumerate(
                    zip(reference.globals_image, candidate.globals_image)
                )
                if a != b
            ),
            min(len(reference.globals_image), len(candidate.globals_image)),
        )
        return f"globals memory differs (first divergent byte at offset {offset})"
    return None


def diff_behaviors(
    reference: Sequence[Behavior], candidate: Sequence[Behavior]
) -> Optional[Dict[str, object]]:
    """First divergence over paired per-input behaviours (``None`` = clean)."""
    for index, (ref, cand) in enumerate(zip(reference, candidate)):
        diff = behavior_diff(ref, cand)
        if diff is not None:
            return {"input_index": index, "diff": diff}
    return None
