"""Delta-shrinking minimizer for failing fuzzed programs.

Classic ddmin (Zeller's delta debugging) over source *lines*: try
removing chunks of decreasing size, keeping any removal after which the
failure predicate still holds.  Candidates that no longer parse simply
make the predicate return False, so structural validity needs no special
handling — invalid deletions are just unproductive steps.

The predicate is arbitrary ("still fails verification", "still triggers
the injected mutation", ...), so the minimizer serves both the fuzzing
campaign and the mutation-smoke suite.
"""

from __future__ import annotations

from typing import Callable, List

__all__ = ["ddmin_lines", "minimize_source"]


def ddmin_lines(
    lines: List[str],
    still_fails: Callable[[List[str]], bool],
    max_probes: int = 400,
) -> List[str]:
    """Minimize ``lines`` to a 1-minimal failing subset (by chunks).

    ``still_fails`` receives a candidate line list; ``max_probes`` bounds
    the total number of predicate evaluations (each is a full
    compile + optimize + oracle cycle, so the bound matters).
    """
    probes = 0

    def check(candidate: List[str]) -> bool:
        nonlocal probes
        probes += 1
        return still_fails(candidate)

    n = 2
    while len(lines) >= 2 and probes < max_probes:
        chunk = max(1, len(lines) // n)
        reduced = False
        start = 0
        while start < len(lines) and probes < max_probes:
            candidate = lines[:start] + lines[start + chunk :]
            if candidate and check(candidate):
                lines = candidate
                n = max(n - 1, 2)
                reduced = True
                # Retry from the same start: the next chunk slid into place.
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            n = min(n * 2, len(lines))
    return lines


def minimize_source(
    source: str,
    still_fails: Callable[[str], bool],
    max_probes: int = 400,
) -> str:
    """Line-level ddmin over a source string (see :func:`ddmin_lines`)."""
    lines = source.splitlines()
    minimized = ddmin_lines(
        lines,
        lambda candidate: still_fails("\n".join(candidate) + "\n"),
        max_probes=max_probes,
    )
    return "\n".join(minimized) + "\n"
