"""Translation validation: sanitizer, differential oracle, bisection.

The subsystem behind ``--verify {off,sanitize,full}`` / ``REPRO_VERIFY``:

* :mod:`repro.verify.sanitize` — non-mutating CFG/RTL invariant checks
  run after every pass and replication sweep;
* :mod:`repro.verify.oracle` — differential execution on the EASE
  interpreter (output bytes, exit code, globals memory);
* :mod:`repro.verify.verifier` — the orchestrator: checkpoints, pass
  bisection naming the guilty pass, verification reports;
* :mod:`repro.verify.minimize` — ddmin reducer for failing programs;
* :mod:`repro.verify.fuzz` — deterministic fuzzing campaigns (CI's
  verify-smoke job).
"""

from .errors import MiscompileError, SanitizeError, VerificationError
from .fuzz import generate_program, run_campaign, verify_source
from .minimize import ddmin_lines, minimize_source
from .oracle import Behavior, behavior_diff, capture_behavior, clone_program
from .sanitize import check_sanitized, sanitize_function, sanitize_program
from .verifier import ReplayGate, Verifier, VERIFY_MODES, resolve_mode

__all__ = [
    "VerificationError",
    "SanitizeError",
    "MiscompileError",
    "Behavior",
    "behavior_diff",
    "capture_behavior",
    "clone_program",
    "sanitize_function",
    "sanitize_program",
    "check_sanitized",
    "Verifier",
    "ReplayGate",
    "VERIFY_MODES",
    "resolve_mode",
    "ddmin_lines",
    "minimize_source",
    "generate_program",
    "run_campaign",
    "verify_source",
]
