"""Failure types of the translation-validation subsystem.

All verification failures derive from :class:`VerificationError`, so
callers that only want "did the pipeline verify?" can catch one type.
The two concrete failures carry structured payloads:

* :class:`SanitizeError` — a structural invariant (CFG or RTL) broke;
  ``violations`` lists every broken invariant, ``stage`` names the pass
  or sweep that left the function inconsistent.
* :class:`MiscompileError` — the differential execution oracle observed
  a behaviour change; ``report`` is the full verification report,
  including the bisection verdict naming the guilty pass.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["VerificationError", "SanitizeError", "MiscompileError"]


class VerificationError(Exception):
    """Base class of every translation-validation failure."""


class SanitizeError(VerificationError):
    """A structural CFG/RTL invariant does not hold."""

    def __init__(self, function: str, stage: str, violations: List[str]) -> None:
        self.function = function
        self.stage = stage
        self.violations = list(violations)
        listing = "\n  - ".join(self.violations)
        super().__init__(
            f"sanitizer failed for {function!r} after {stage}:\n  - {listing}"
        )


class MiscompileError(VerificationError):
    """The oracle observed a behaviour change; ``report`` has the details."""

    def __init__(self, message: str, report: Optional[dict] = None) -> None:
        self.report = report or {}
        super().__init__(message)

    @property
    def guilty_pass(self) -> Optional[str]:
        failure = self.report.get("failure") or {}
        bisection = failure.get("bisection") or {}
        return bisection.get("guilty_pass")
