"""The blocking daemon client the CLI (and benchmarks) embed.

A :class:`ServeClient` is one Unix-socket connection speaking the
JSON-line protocol.  It is deliberately synchronous — the CLI is a thin
sequential client; concurrency lives in the daemon — and cheap enough
to open per command.  :meth:`ServeClient.try_connect` is the graceful
degradation hook: callers fall back to local in-process execution when
no daemon is listening (``repro bench --server`` must never fail just
because the daemon is down).
"""

from __future__ import annotations

import os
import socket
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from ..exec.envelope import CellResult, CellSpec
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_message,
    result_from_wire,
    spec_to_wire,
)
from .server import DEFAULT_SOCKET

__all__ = ["ServeClient", "ServeError", "ServeUnavailable"]

#: Socket-level timeout floor; waits add the op timeout on top.
_IO_TIMEOUT = 30.0


class ServeError(RuntimeError):
    """The daemon answered with an error response."""


class ServeUnavailable(ConnectionError):
    """No daemon is listening on the socket."""


class ServeClient:
    """One connection to a running ``repro serve`` daemon."""

    def __init__(
        self, socket_path: os.PathLike = DEFAULT_SOCKET, timeout: float = _IO_TIMEOUT
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(self.socket_path)
        except OSError as exc:
            self._sock.close()
            raise ServeUnavailable(
                f"no daemon at {self.socket_path}: {exc}"
            ) from None
        self._file = self._sock.makefile("rwb")

    @classmethod
    def try_connect(
        cls, socket_path: os.PathLike = DEFAULT_SOCKET, timeout: float = _IO_TIMEOUT
    ) -> Optional["ServeClient"]:
        """A connected client, or ``None`` when no daemon is listening."""
        try:
            return cls(socket_path, timeout=timeout)
        except ServeUnavailable:
            return None

    # --- plumbing -------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; raises :class:`ServeError`."""
        self._file.write(encode_message({"op": op, **fields}))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ServeUnavailable(
                f"daemon at {self.socket_path} closed the connection"
            )
        response = decode_line(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unspecified daemon error"))
        return response

    @contextmanager
    def _waiting(self, timeout: Optional[float]):
        """Socket timeout while a blocking wait is outstanding.

        The daemon enforces the op timeout; the socket allows that plus
        I/O slack — or blocks indefinitely for an unbounded wait.
        """
        self._sock.settimeout(None if timeout is None else timeout + self.timeout)
        try:
            yield
        finally:
            self._sock.settimeout(self.timeout)

    # --- ops ------------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(self, spec: CellSpec) -> Dict[str, Any]:
        """Submit one cell; returns the daemon's job descriptor."""
        return self.request("submit", spec=spec_to_wire(spec))

    def submit_specs(self, specs: Sequence[CellSpec]) -> Dict[str, Any]:
        """Submit a matrix; returns job ids (input order) + plan summary."""
        return self.request(
            "submit_matrix", specs=[spec_to_wire(spec) for spec in specs]
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", job=job_id)

    def result(
        self, job_id: str, wait: bool = True, timeout: Optional[float] = None
    ) -> Optional[CellResult]:
        """The job's envelope (waiting for completion by default).

        Returns ``None`` for a cancelled job that produced no envelope.
        Raises :class:`ServeError` on a daemon-side wait timeout.
        """
        with self._waiting(timeout if wait else 0.0):
            response = self.request(
                "result", job=job_id, wait=wait, timeout=timeout
            )
        return result_from_wire(response.get("result"))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job=job_id)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # --- conveniences ---------------------------------------------------------

    def run_cell(
        self, spec: CellSpec, timeout: Optional[float] = None
    ) -> CellResult:
        """Submit one cell and wait for its envelope."""
        descriptor = self.submit(spec)
        result = self.result(descriptor["job"], wait=True, timeout=timeout)
        if result is None:
            raise ServeError(f"job {descriptor['job']} was cancelled")
        return result

    def run_matrix(
        self,
        specs: Sequence[CellSpec],
        timeout: Optional[float] = None,
        on_result=None,
    ) -> List[CellResult]:
        """Submit a matrix and wait for every envelope (input order).

        Duplicate cells in ``specs`` coalesce daemon-side; each index
        still receives (the one shared copy of) its envelope.
        ``on_result`` (if given) is called once per spec as its envelope
        arrives — the same progress contract as the local runner.
        """
        submitted = self.submit_specs(specs)
        job_ids = submitted["jobs"]
        envelopes: Dict[str, Optional[CellResult]] = {}
        results: List[CellResult] = []
        for spec, job_id in zip(specs, job_ids):
            if job_id not in envelopes:
                envelopes[job_id] = self.result(job_id, wait=True, timeout=timeout)
            result = envelopes[job_id]
            if result is None:
                result = CellResult(
                    spec=spec, error=f"job {job_id} was cancelled by the daemon"
                )
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    # --- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except Exception:
            pass
        try:
            self._sock.close()
        except Exception:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
