"""The daemon's wire format: JSON lines over a Unix domain socket.

Every message — request or response — is one JSON object on one
``\\n``-terminated line.  Requests carry an ``op`` and op-specific
fields; responses carry ``ok`` plus either payload fields or an
``error`` string.  The format is deliberately boring: any language (or
``socat``) can drive the daemon.

Two payload types need encoding beyond JSON:

* a :class:`~repro.exec.envelope.CellSpec` travels as a plain dict of
  its fields with ``stdin`` base64-encoded (``stdin_b64``) — specs are
  *constructed*, never trusted blindly: unknown fields and wrong types
  are a :class:`ProtocolError`;
* a :class:`~repro.exec.envelope.CellResult` travels pickled and
  base64-encoded.  The envelope holds rich objects (measurements,
  compressed traces, span trees) whose JSON projection would lose the
  byte-identical guarantee the differential gates rely on.  Pickle over
  a trust boundary would be unacceptable; a Unix socket created mode
  ``0o600`` in the user's own directory is the same trust domain as the
  pickled on-disk result cache the client already reads.

Ops: ``ping``, ``submit``, ``submit_matrix``, ``status``, ``result``,
``cancel``, ``stats``, ``shutdown`` — see :mod:`repro.serve.server`.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import fields
from typing import Any, Dict, List, Optional

from ..exec.envelope import CellResult, CellSpec

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode_message",
    "decode_line",
    "spec_to_wire",
    "spec_from_wire",
    "result_to_wire",
    "result_from_wire",
]

PROTOCOL_VERSION = 1

#: Upper bound on one protocol line (a matrix submit with inline mini-C
#: sources and stdin payloads can be large; traces never cross as JSON).
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request or response line."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as a compact JSON line (UTF-8, newline-terminated)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict.

    Raises :class:`ProtocolError` on anything that is not a JSON object
    — the daemon answers those with an error response instead of dying,
    and the connection stays usable.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


# --- CellSpec ------------------------------------------------------------------

_SPEC_FIELDS = {f.name for f in fields(CellSpec)}
_SPEC_BOOLS = {"trace", "optimize", "validate_cfg", "observe"}
_SPEC_STRINGS = {"program", "target", "replication", "policy"}
_SPEC_OPT_STRINGS = {"spm_engine", "ease_engine", "verify"}


def spec_to_wire(spec: CellSpec) -> Dict[str, Any]:
    """A JSON-safe rendering of one cell spec."""
    wire: Dict[str, Any] = {}
    for f in fields(CellSpec):
        value = getattr(spec, f.name)
        if f.name == "stdin":
            if value is not None:
                wire["stdin_b64"] = base64.b64encode(value).decode("ascii")
        else:
            wire[f.name] = value
    return wire


def _tuned_from_wire(value: Any):
    """Validate ``tuned`` and rebuild its tuple form.

    JSON has no tuples, so the per-function override rows arrive as
    arrays of ``[function, policy, max_rtls, order]``; the spec needs
    the hashable tuple-of-tuples form (it is frozen and used as a cache
    key component).  ``null`` means untuned; an empty array is rejected
    rather than silently normalized — the client is expected to send
    ``null`` for "no overrides".
    """
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or not value:
        raise ProtocolError("spec field 'tuned' must be null or a non-empty array")
    rows = []
    for row in value:
        if not isinstance(row, (list, tuple)) or len(row) != 4:
            raise ProtocolError(
                "each 'tuned' row must be [function, policy, max_rtls, order]"
            )
        function, policy, max_rtls, order = row
        if not isinstance(function, str) or not isinstance(policy, str):
            raise ProtocolError("'tuned' function and policy must be strings")
        if not (max_rtls is None or isinstance(max_rtls, int)):
            raise ProtocolError("'tuned' max_rtls must be an int or null")
        if not isinstance(order, str):
            raise ProtocolError("'tuned' order must be a string")
        rows.append((function, policy, max_rtls, order))
    return tuple(rows)


def spec_from_wire(data: Any) -> CellSpec:
    """Validate and rebuild a :class:`CellSpec` from its wire form."""
    if not isinstance(data, dict):
        raise ProtocolError(f"spec must be an object, got {type(data).__name__}")
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key == "stdin_b64":
            if value is None:
                continue
            if not isinstance(value, str):
                raise ProtocolError("stdin_b64 must be a base64 string")
            try:
                kwargs["stdin"] = base64.b64decode(value, validate=True)
            except Exception as exc:
                raise ProtocolError(f"bad stdin_b64: {exc}") from None
            continue
        if key not in _SPEC_FIELDS or key == "stdin":
            raise ProtocolError(f"unknown spec field {key!r}")
        if key in _SPEC_BOOLS and not isinstance(value, bool):
            raise ProtocolError(f"spec field {key!r} must be a boolean")
        if key in _SPEC_STRINGS and not isinstance(value, str):
            raise ProtocolError(f"spec field {key!r} must be a string")
        if key in _SPEC_OPT_STRINGS and not (
            value is None or isinstance(value, str)
        ):
            raise ProtocolError(f"spec field {key!r} must be a string or null")
        if key == "max_rtls" and not (
            value is None or isinstance(value, int)
        ):
            raise ProtocolError("spec field 'max_rtls' must be an int or null")
        if key == "tuned":
            value = _tuned_from_wire(value)
        kwargs[key] = value
    if "program" not in kwargs:
        raise ProtocolError("spec is missing 'program'")
    return CellSpec(**kwargs)


def specs_from_wire(items: Any) -> List[CellSpec]:
    """A list of wire specs (``submit_matrix``) to envelope specs."""
    if not isinstance(items, list) or not items:
        raise ProtocolError("'specs' must be a non-empty array")
    return [spec_from_wire(item) for item in items]


# --- CellResult ----------------------------------------------------------------


def result_to_wire(result: CellResult) -> str:
    """The full envelope, pickled and base64-armored for a JSON field."""
    return base64.b64encode(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def result_from_wire(blob: Optional[str]) -> Optional[CellResult]:
    """Rebuild an envelope shipped by :func:`result_to_wire`."""
    if blob is None:
        return None
    try:
        result = pickle.loads(base64.b64decode(blob))
    except Exception as exc:
        raise ProtocolError(f"undecodable result payload: {exc}") from None
    if not isinstance(result, CellResult):
        raise ProtocolError(
            f"result payload is {type(result).__name__}, expected CellResult"
        )
    return result
