"""The ``repro serve`` daemon: an asyncio job server over the exec layer.

One process owns a Unix socket, a persistent pool of warm worker
processes, and a job table keyed by the exec layer's content-addressed
cache keys.  Clients speak the JSON-line protocol of
:mod:`repro.serve.protocol`:

======================  ========================================================
op                      meaning
======================  ========================================================
``ping``                liveness + protocol version + pid
``submit``              one cell; coalesces onto an in-flight job for the
                        same key, or is served straight from the cache
``submit_matrix``       many cells; hash-grouped, cache pre-passed, and
                        chunked across the worker shards (:mod:`scheduler`)
``status``              job state + queue depth
``result``              the full envelope (optionally waiting for completion)
``cancel``              queued job: never runs; running job: detaches waiters,
                        the computation finishes and still lands in the cache
``stats``               job counters, queue depth, cache and metrics snapshot
``shutdown``            graceful stop (also SIGTERM / SIGINT)
======================  ========================================================

Jobs are decoupled from connections: a client that disconnects mid-job
abandons nothing — the computation keeps running and its envelope lands
in the result cache for the next asker.  Every accepted cell increments
``serve.jobs.submitted``; coalesced attaches, cache-pre-pass skips and
matrix-scheduled cells count under ``serve.jobs.{coalesced,skipped,
sharded}``; the ``serve.queue.depth`` gauge tracks chunks waiting for a
worker, and each finished job records a ``serve.job`` span.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket as socket_module
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..exec.cache import DEFAULT_CACHE_DIR, ResultCache
from ..exec.envelope import CellResult, CellSpec
from ..exec.runner import default_worker_count, warm_worker
from ..obs import Observer, active as _active_observer, install as _install_observer
from .coalesce import InFlightTable
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
    result_to_wire,
    spec_from_wire,
)
from .protocol import specs_from_wire
from .scheduler import DEFAULT_OVERSUBSCRIBE, plan_matrix

__all__ = ["ServeDaemon", "DEFAULT_SOCKET", "Job"]

DEFAULT_SOCKET = ".repro-serve.sock"

_JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class Job:
    """One coalesced unit of work: a cell every attached client shares."""

    __slots__ = (
        "id",
        "key",
        "spec",
        "state",
        "result",
        "event",
        "waiters",
        "cancelled",
        "submitted_at",
        "started_at",
        "finished_at",
    )

    def __init__(self, job_id: str, key: str, spec: CellSpec) -> None:
        self.id = job_id
        self.key = key
        self.spec = spec
        self.state = "queued"
        self.result: Optional[CellResult] = None
        self.event = asyncio.Event()
        #: Clients attached beyond the first (the coalescing fan-out).
        self.waiters = 1
        self.cancelled = False
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def finish(self, state: str, result: Optional[CellResult]) -> None:
        self.finished_at = time.monotonic()
        if self.cancelled:
            # A late-completing computation must not resurrect the job:
            # it still publishes to the cache, but the job reads cancelled.
            state, result = "cancelled", None
        self.state = state
        self.result = result
        self.event.set()


# --- worker side (runs in pool processes) --------------------------------------

#: Recently executed envelopes, by job key.  Content-addressed keys
#: make staleness impossible; the bound only caps memory (traced
#: envelopes carry compressed traces).  Cells with verification on
#: never enter (or are served from) the memo, mirroring the persistent
#: store bypass: a verified run must actually run.
_CELL_MEMO: Dict[str, CellResult] = {}
_CELL_MEMO_LIMIT = 64


def _execute_chunk(
    cells: List[Tuple[str, CellSpec]],
    cache_root: Optional[str],
    schema_version: int,
) -> List[CellResult]:
    """Run one scheduled chunk inside a warm worker process.

    The worker keeps machine descriptions, the imported toolchain and a
    bounded memo of executed envelopes alive between chunks — that, not
    the chunking itself, is where the warm-daemon speedup comes from.
    Cells go through the cross-process single-flight when a cache is
    configured, so a concurrent plain ``repro bench`` on the same cache
    cannot duplicate the daemon's work (or vice versa).
    """
    from ..exec.runner import _effective_verify_mode, execute_cell
    from ..exec.singleflight import single_flight

    cache = (
        ResultCache(cache_root, schema_version=schema_version)
        if cache_root
        else None
    )
    results: List[CellResult] = []
    for key, spec in cells:
        verify_off = _effective_verify_mode(spec) == "off"
        if verify_off:
            memoized = _CELL_MEMO.get(key)
            if memoized is not None:
                memoized.cache_hit = True
                results.append(memoized)
                continue
        if cache is not None and verify_off:
            result, _fresh = single_flight(cache, spec, execute_cell)
        else:
            result = execute_cell(spec)
        if result.ok and verify_off:
            if len(_CELL_MEMO) >= _CELL_MEMO_LIMIT:
                _CELL_MEMO.pop(next(iter(_CELL_MEMO)))
            _CELL_MEMO[key] = result
        results.append(result)
    return results


def _warm_probe(delay: float) -> int:
    """No-op pool task used to force worker spawn at daemon startup."""
    time.sleep(delay)
    return os.getpid()


# --- the daemon ----------------------------------------------------------------


class ServeDaemon:
    """The asyncio compilation-and-measurement job daemon."""

    def __init__(
        self,
        socket_path: os.PathLike = DEFAULT_SOCKET,
        workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = DEFAULT_CACHE_DIR,
        oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
        prewarm: bool = True,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.workers = default_worker_count() if workers is None else max(1, workers)
        #: The artifact store (None = keying only, nothing persisted).
        self.store: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        #: Keys are always content hashes, even with no store configured.
        self.keyer: ResultCache = self.store or ResultCache(DEFAULT_CACHE_DIR)
        self.oversubscribe = oversubscribe
        self.prewarm = prewarm

        self.jobs: Dict[str, Job] = {}
        self.inflight: InFlightTable[Job] = InFlightTable()
        self.counters: Dict[str, int] = {
            name: 0
            for name in (
                "submitted",
                "coalesced",
                "skipped",
                "sharded",
                "completed",
                "failed",
                "cancelled",
            )
        }
        self.started_at = time.monotonic()
        self._next_job = 0
        self._queue: Optional[asyncio.Queue] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._queued_cells = 0
        self._client_tasks: set = set()
        observer = _active_observer()
        if observer is None:
            observer = _install_observer(Observer(spans=False))
        self.observer = observer

    # --- bookkeeping ----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        self.observer.metrics.inc(f"serve.jobs.{name}", amount)

    def _set_queue_gauge(self) -> None:
        self.observer.metrics.set_gauge("serve.queue.depth", self._queued_cells)

    def _new_job(self, key: str, spec: CellSpec) -> Job:
        self._next_job += 1
        job = Job(f"j{self._next_job:06d}", key, spec)
        self.jobs[job.id] = job
        return job

    def _store_for(self, spec: CellSpec) -> Optional[ResultCache]:
        """The store, unless this cell's config must bypass it."""
        from ..exec.runner import _effective_verify_mode

        if self.store is None or _effective_verify_mode(spec) != "off":
            return None
        return self.store

    def _job_key(self, spec: CellSpec) -> str:
        """Job identity: the cache key, qualified by the verify mode.

        The cache key deliberately excludes ``verify`` (verification
        must not change what is measured), but dedup identity must not:
        coalescing or memo-serving a verifying submission from an
        unverified run would silently skip the oracle — a verified run
        must actually run — and a verify-off client must never receive
        an envelope carrying oracle overhead.  Verify-off cells keep
        the bare cache key, so job keys double as store keys wherever
        ``_store_for`` allows a store at all.
        """
        from ..exec.runner import _effective_verify_mode

        mode = _effective_verify_mode(spec)
        key = self.keyer.key(spec)
        return key if mode == "off" else f"{key}:{mode}"

    # --- job intake -----------------------------------------------------------

    def _submit_one(self, spec: CellSpec) -> Tuple[Job, str]:
        """Admit one cell; returns ``(job, "new"|"coalesced"|"cached")``."""
        key = self._job_key(spec)
        self._count("submitted")

        existing = self.inflight.get(key)
        if existing is not None:
            existing.waiters += 1
            self._count("coalesced")
            return existing, "coalesced"

        store = self._store_for(spec)
        if store is not None:
            cached = store.get(key)
            if cached is not None and cached.ok:
                cached.cache_hit = True
                job = self._new_job(key, spec)
                job.state = "done"
                job.result = cached
                job.event.set()
                self._count("skipped")
                return job, "cached"

        job = self._new_job(key, spec)
        self.inflight.claim(key, lambda: job)
        self._enqueue_chunk([job])
        return job, "new"

    def _submit_matrix(self, specs: List[CellSpec]) -> Dict[str, Any]:
        """Admit a matrix: hash-group → cache pre-pass → shard chunks."""
        keys = [self._job_key(spec) for spec in specs]
        self._count("submitted", len(specs))

        # Coalesce against jobs already in flight *before* planning:
        # those cells are neither duplicates within this batch nor new
        # work, they attach to running computations.
        job_by_index: List[Optional[Job]] = [None] * len(specs)
        plan_specs: List[CellSpec] = []
        plan_keys: List[str] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            existing = self.inflight.get(key)
            if existing is not None:
                existing.waiters += 1
                job_by_index[i] = existing
                self._count("coalesced")
            else:
                plan_specs.append(spec)
                plan_keys.append(key)

        def have(key: str) -> bool:
            # The pre-pass probe: a cell is materialized when its store
            # (respecting verify bypass) holds a healthy envelope.
            spec = probe_specs[key]
            store = self._store_for(spec)
            if store is None:
                return False
            cached = store.get(key)
            if cached is None or not cached.ok:
                return False
            probe_results[key] = cached
            return True

        probe_specs = {k: s for k, s in zip(plan_keys, plan_specs)}
        probe_results: Dict[str, CellResult] = {}
        plan = plan_matrix(
            plan_specs,
            plan_keys,
            have if self.store is not None else None,
            shards=self.workers,
            oversubscribe=self.oversubscribe,
        )
        self._count("coalesced", plan.duplicates)
        self._count("skipped", len(plan.skipped))
        self._count("sharded", plan.scheduled)

        jobs_by_key: Dict[str, Job] = {}
        for key, spec in plan.unique:
            job = self._new_job(key, spec)
            jobs_by_key[key] = job
            cached = probe_results.get(key)
            if cached is not None:
                cached.cache_hit = True
                job.state = "done"
                job.result = cached
                job.event.set()
            else:
                self.inflight.claim(key, lambda job=job: job)
        for chunk_keys in plan.chunks:
            self._enqueue_chunk([jobs_by_key[key] for key in chunk_keys])

        # Duplicates within the batch share the first occurrence's job.
        for i, key in enumerate(keys):
            if job_by_index[i] is None:
                job_by_index[i] = jobs_by_key[key]

        return {
            "jobs": [job.id for job in job_by_index],
            "submitted": len(specs),
            "coalesced": plan.duplicates,
            "skipped": len(plan.skipped),
            "sharded": plan.scheduled,
            "chunks": len(plan.chunks),
        }

    def _enqueue_chunk(self, jobs: List[Job]) -> None:
        assert self._queue is not None, "daemon not running"
        self._queued_cells += len(jobs)
        self._set_queue_gauge()
        self._queue.put_nowait(jobs)

    # --- dispatch -------------------------------------------------------------

    async def _dispatcher(self) -> None:
        """One of ``workers`` tasks feeding chunks to the process pool."""
        loop = asyncio.get_running_loop()
        while True:
            chunk: List[Job] = await self._queue.get()
            live = [job for job in chunk if not job.cancelled]
            self._queued_cells -= len(chunk)
            self._set_queue_gauge()
            for job in chunk:
                if job.cancelled:
                    self._finalize_cancelled(job)
            if not live:
                continue
            for job in live:
                job.state = "running"
                job.started_at = time.monotonic()
            cells = [(job.key, job.spec) for job in live]
            cache_root = str(self.store.root) if self.store is not None else None
            try:
                results = await loop.run_in_executor(
                    self._pool,
                    _execute_chunk,
                    cells,
                    cache_root,
                    self.keyer.schema_version,
                )
            except asyncio.CancelledError:
                # Daemon shutdown: the jobs are released as cancelled by
                # the lifecycle teardown, not reported as failures.
                raise
            except BaseException:
                error = traceback.format_exc()
                for job in live:
                    self._finish_job(
                        job, CellResult(spec=job.spec, error=error)
                    )
                continue
            for job, result in zip(live, results):
                self._finish_job(job, result)

    def _finish_job(self, job: Job, result: CellResult) -> None:
        state = "done" if result.ok else "failed"
        job.finish(state, result)
        self.inflight.complete(job.key, job)
        if not job.cancelled:
            # A job cancelled mid-run already counted under "cancelled";
            # its late completion must not also count completed/failed.
            self._count("completed" if result.ok else "failed")
        # Fold the worker's observability snapshot into the daemon's
        # (fresh work only; memo/cache hits describe earlier runs).
        if not result.cache_hit and result.obs is not None:
            self.observer.merge_snapshot(result.obs)
        started = job.started_at if job.started_at is not None else job.submitted_at
        self.observer.tracer.record(
            "serve.job",
            duration=(job.finished_at or time.monotonic()) - job.submitted_at,
            label=job.spec.label,
            key=job.key[:12],
            state=job.state,
            waiters=job.waiters,
            queued_seconds=round(started - job.submitted_at, 6),
        )

    def _finalize_cancelled(self, job: Job) -> None:
        if job.event.is_set():
            return
        job.finish("cancelled", None)
        self.inflight.complete(job.key, job)

    # --- ops ------------------------------------------------------------------

    async def _handle_op(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "ping":
            return {
                "ok": True,
                "op": "ping",
                "version": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "workers": self.workers,
            }
        if op == "submit":
            spec = spec_from_wire(message.get("spec"))
            job, how = self._submit_one(spec)
            return {
                "ok": True,
                "job": job.id,
                "key": job.key,
                "state": job.state,
                "coalesced": how == "coalesced",
                "cached": how == "cached",
            }
        if op == "submit_matrix":
            specs = specs_from_wire(message.get("specs"))
            summary = self._submit_matrix(specs)
            return {"ok": True, **summary}
        if op == "status":
            job = self._lookup(message)
            return {
                "ok": True,
                "job": job.id,
                "state": job.state,
                "waiters": job.waiters,
                "queue_depth": self._queued_cells,
                "elapsed_seconds": round(time.monotonic() - job.submitted_at, 6),
            }
        if op == "result":
            job = self._lookup(message)
            if message.get("wait", True) and not job.event.is_set():
                timeout = message.get("timeout")
                if timeout is not None and not isinstance(timeout, (int, float)):
                    raise ProtocolError("'timeout' must be a number")
                try:
                    await asyncio.wait_for(job.event.wait(), timeout)
                except asyncio.TimeoutError:
                    return {
                        "ok": False,
                        "error": "timeout",
                        "job": job.id,
                        "state": job.state,
                    }
            response: Dict[str, Any] = {
                "ok": True,
                "job": job.id,
                "state": job.state,
            }
            if job.result is not None:
                response["result"] = result_to_wire(job.result)
            return response
        if op == "cancel":
            job = self._lookup(message)
            if job.event.is_set():
                return {"ok": True, "job": job.id, "state": job.state,
                        "cancelled": False}
            job.cancelled = True
            self._count("cancelled")
            # Queued: dequeued lazily by the dispatcher.  Running: the
            # computation cannot be interrupted — it finishes and still
            # lands in the cache — but waiters are released immediately
            # and the job reads cancelled.  Either way the key detaches
            # now, so a new submission starts fresh (and is then served
            # as a cache hit) instead of coalescing onto a job it would
            # only ever observe as cancelled.
            self._finalize_cancelled(job)
            return {"ok": True, "job": job.id, "state": "cancelled",
                    "cancelled": True}
        if op == "stats":
            return {
                "ok": True,
                "uptime_seconds": round(time.monotonic() - self.started_at, 6),
                "workers": self.workers,
                "queue_depth": self._queued_cells,
                "inflight": len(self.inflight),
                "jobs": dict(self.counters),
                "cache": self.store.stats() if self.store is not None else None,
                "metrics": self.observer.metrics.snapshot(),
            }
        if op == "shutdown":
            asyncio.get_running_loop().call_soon(self.request_stop)
            return {"ok": True, "stopping": True}
        raise ProtocolError(f"unknown op {op!r}")

    def _lookup(self, message: Dict[str, Any]) -> Job:
        job_id = message.get("job")
        if not isinstance(job_id, str):
            raise ProtocolError("'job' must be a job id string")
        job = self.jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}")
        return job

    # --- connection handling --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_message(
                            {"ok": False, "error": "request line too long"}
                        )
                    )
                    await writer.drain()
                    break  # stream is desynced; drop the connection
                if not line:
                    break
                if not line.strip():
                    continue
                request_id = None
                try:
                    message = decode_line(line)
                    request_id = message.get("id")
                    response = await self._handle_op(message)
                except ProtocolError as exc:
                    response = {"ok": False, "error": str(exc)}
                except Exception:
                    response = {
                        "ok": False,
                        "error": f"internal error:\n{traceback.format_exc()}",
                    }
                if request_id is not None:
                    response["id"] = request_id
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; its jobs keep running
        except asyncio.CancelledError:
            pass  # daemon shutting down with the connection still open
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass

    # --- lifecycle ------------------------------------------------------------

    def request_stop(self) -> None:
        """Trigger graceful shutdown (signal handlers land here)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def _claim_socket(self) -> None:
        """Refuse to start over a live daemon; clear a stale socket file."""
        if not self.socket_path.exists():
            return
        probe = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        try:
            probe.settimeout(1.0)
            probe.connect(str(self.socket_path))
        except OSError:
            self.socket_path.unlink()  # stale: no daemon behind it
        else:
            raise SystemExit(
                f"error: a daemon is already serving {self.socket_path}"
            )
        finally:
            probe.close()

    async def run(self) -> None:
        """Serve until ``shutdown`` or SIGTERM/SIGINT."""
        loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._queue = asyncio.Queue()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass

        self._claim_socket()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=warm_worker,
            initargs=(("sparc", "m68020"),),
        )
        if self.prewarm:
            # Force every worker (and its toolchain imports) into
            # existence now, so the first real job starts warm.
            for _ in range(self.workers):
                self._pool.submit(_warm_probe, 0.05)

        dispatchers = [
            asyncio.ensure_future(self._dispatcher())
            for _ in range(self.workers)
        ]
        # The protocol's trust argument rests on the socket being 0600,
        # so it must never exist with wider permissions — hold a 0o177
        # umask across creation rather than chmod-ing after the server
        # has already begun accepting connections.
        old_umask = os.umask(0o177)
        try:
            server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path), limit=MAX_LINE_BYTES
            )
        finally:
            os.umask(old_umask)
        os.chmod(self.socket_path, 0o600)
        print(
            f"repro-serve: listening on {self.socket_path} "
            f"({self.workers} workers, "
            f"cache={'off' if self.store is None else self.store.root})",
            flush=True,
        )
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._client_tasks):
                task.cancel()
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
            for task in dispatchers:
                task.cancel()
            await asyncio.gather(*dispatchers, return_exceptions=True)
            # Release every waiter still parked on an unfinished job.
            for job in self.jobs.values():
                if not job.event.is_set():
                    job.cancelled = True
                    job.finish("cancelled", None)
            self.inflight = InFlightTable()
            self._pool.shutdown(wait=False, cancel_futures=True)
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            print("repro-serve: stopped", flush=True)
