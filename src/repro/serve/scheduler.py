"""Sharded matrix planning: hash-group, skip materialized, chunk.

This is the scheduling pattern of dace's ``DistributedCutoutTuner``
(see ROADMAP), transplanted onto the evaluation matrix:

1. **hash-group** the submitted cells by their content-addressed cache
   key — duplicate cells inside one submission collapse to a single
   work unit (they coalesce onto the same job);
2. **skip materialized** results via a cache pre-pass — a cell whose
   envelope already sits in the on-disk cache is served immediately and
   never reaches a worker;
3. **chunk** the remaining unique cells across the worker shards.
   Chunks are contiguous slices of the deduplicated order, sized
   ``ceil(n / (shards × oversubscribe))`` — oversubscription keeps the
   pool busy when chunk runtimes vary (one slow chunk does not idle the
   other workers), while still amortizing per-chunk dispatch overhead
   over several cells.

The planner is pure (no I/O beyond the probe callable, no asyncio), so
its grouping, skipping and chunking behavior is unit-testable in
isolation; the daemon feeds it the live cache and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..exec.envelope import CellSpec

__all__ = ["MatrixPlan", "plan_matrix", "chunk_work"]

#: Chunks per shard the planner aims for (load-balance vs dispatch cost).
DEFAULT_OVERSUBSCRIBE = 2


@dataclass
class MatrixPlan:
    """What the scheduler decided for one submitted matrix."""

    #: Cache key of every submitted cell, in input order (duplicates kept).
    order: List[str] = field(default_factory=list)
    #: Deduplicated (key, spec) pairs in first-seen order.
    unique: List[Tuple[str, CellSpec]] = field(default_factory=list)
    #: Submissions that collapsed onto an earlier identical cell.
    duplicates: int = 0
    #: Keys served by the cache pre-pass (never reach a worker).
    skipped: List[str] = field(default_factory=list)
    #: Work shards: each chunk is a list of keys to run on one worker.
    chunks: List[List[str]] = field(default_factory=list)

    @property
    def scheduled(self) -> int:
        """Cells that will actually be computed."""
        return sum(len(chunk) for chunk in self.chunks)


def chunk_work(
    items: Sequence[str],
    shards: int,
    oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
) -> List[List[str]]:
    """Contiguous chunks of ``ceil(n / (shards * oversubscribe))`` items."""
    if not items:
        return []
    shards = max(1, shards)
    slots = max(1, shards * max(1, oversubscribe))
    size = -(-len(items) // slots)  # ceil
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def plan_matrix(
    specs: Sequence[CellSpec],
    keys: Sequence[str],
    have: Optional[Callable[[str], bool]],
    shards: int,
    oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
) -> MatrixPlan:
    """Plan one submitted matrix.

    ``keys[i]`` must be the cache key of ``specs[i]`` (the daemon
    computes them once and reuses them for job identity).  ``have``
    probes the materialized-result store; ``None`` disables the
    pre-pass (e.g. a cache-less daemon, or cells under verification
    which must actually run).
    """
    plan = MatrixPlan(order=list(keys))
    seen = set()
    pending: List[str] = []
    for spec, key in zip(specs, keys):
        if key in seen:
            plan.duplicates += 1
            continue
        seen.add(key)
        plan.unique.append((key, spec))
        if have is not None and have(key):
            plan.skipped.append(key)
        else:
            pending.append(key)
    plan.chunks = chunk_work(pending, shards, oversubscribe)
    return plan
