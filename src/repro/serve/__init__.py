"""repro.serve — compilation-as-a-service over the exec matrix layer.

A long-running ``repro serve`` daemon turns the CLI into a thin client:
jobs are (program × target × configuration) cells of the evaluation
matrix, named by the content-addressed cache key of the exec layer, and
the daemon adds the three things a cold CLI invocation cannot have:

* **request coalescing** — two clients asking for the same cell attach
  to one in-flight computation (single-flight keyed on the cache key;
  every waiter gets the one envelope when it lands);
* **sharded matrix scheduling** — a submitted matrix is hash-grouped by
  cache key, already-materialized cells are skipped via a cache
  pre-pass, and the remainder is chunked across a persistent pool of
  warm workers (the dace ``DistributedCutoutTuner`` pattern:
  hash-group → skip materialized → chunk across ranks);
* **warm workers** — worker processes outlive jobs, keeping the
  imported toolchain, memoized machine descriptions and recently
  executed envelopes alive, so a re-run pays no interpreter start and
  no re-translation.

Modules: :mod:`protocol` (JSON-line wire format over a Unix socket),
:mod:`coalesce` (the in-flight job table), :mod:`scheduler` (pure
matrix planning), :mod:`server` (the asyncio daemon), :mod:`client`
(the blocking client the CLI embeds).  Zero new dependencies.
"""

from .client import ServeClient, ServeError, ServeUnavailable
from .coalesce import InFlightTable
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from .scheduler import MatrixPlan, plan_matrix
from .server import DEFAULT_SOCKET, ServeDaemon

__all__ = [
    "DEFAULT_SOCKET",
    "InFlightTable",
    "MatrixPlan",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeUnavailable",
    "decode_line",
    "encode_message",
    "plan_matrix",
    "result_from_wire",
    "result_to_wire",
    "spec_from_wire",
    "spec_to_wire",
]
