"""The in-flight job table: single-flight request coalescing.

The daemon keys every job by the exec layer's content-addressed cache
key, so "the same cell" is a hash equality, not a heuristic.  The table
maps each key to its single in-flight job; a second submission for a
key *attaches* to the existing job instead of creating a new one — the
futures fan-out happens in the server (every attached client waits on
the same job's completion event and receives the same envelope).

This is deliberately tiny and synchronous: the daemon is a single
asyncio thread, so claim/attach/complete need no locking, and the
policy (what counts as "in flight", when completion detaches the key)
lives here where it can be unit-tested without a running event loop.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["InFlightTable"]

T = TypeVar("T")


class InFlightTable(Generic[T]):
    """key → the one in-flight job computing that key."""

    def __init__(self) -> None:
        self._inflight: Dict[str, T] = {}
        #: Jobs that went through the table since construction.
        self.claimed = 0
        #: Submissions that attached to an existing in-flight job.
        self.attached = 0

    def claim(self, key: str, factory: Callable[[], T]) -> Tuple[T, bool]:
        """The in-flight job for ``key``, creating one if none exists.

        Returns ``(job, created)`` — ``created`` is ``False`` when the
        submission coalesced onto an existing computation.
        """
        job = self._inflight.get(key)
        if job is not None:
            self.attached += 1
            return job, False
        job = factory()
        self._inflight[key] = job
        self.claimed += 1
        return job, True

    def get(self, key: str) -> Optional[T]:
        return self._inflight.get(key)

    def complete(self, key: str, value: Optional[T] = None) -> None:
        """Detach ``key``: later submissions start a fresh computation.

        Idempotent — completing an unknown key is a no-op (a cancelled
        job may be completed by both the cancel path and the worker).
        With ``value`` given, the key is detached only while it still
        maps to that job: a job cancelled mid-run is detached at cancel
        time, and its computation's late completion must not evict a
        successor job that has since re-claimed the key.
        """
        if value is not None and self._inflight.get(key) is not value:
            return
        self._inflight.pop(key, None)

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: str) -> bool:
        return key in self._inflight
