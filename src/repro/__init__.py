"""repro — a reproduction of Mueller & Whalley, PLDI 1992.

*Avoiding Unconditional Jumps by Code Replication.*

The package provides:

* :mod:`repro.rtl` — the RTL intermediate representation,
* :mod:`repro.cfg` — control-flow analysis,
* :mod:`repro.frontend` — a mini-C compiler front-end producing RTL,
* :mod:`repro.targets` — Motorola-68020-like and SPARC-like machine models,
* :mod:`repro.opt` — the VPO-like optimizer (Figure 3 pipeline),
* :mod:`repro.core` — the paper's contribution: the JUMPS and LOOPS
  code-replication algorithms,
* :mod:`repro.ease` — EASE-like execution measurement (RTL interpreter),
* :mod:`repro.cache` — direct-mapped instruction-cache simulation,
* :mod:`repro.benchsuite` — the 14 test programs of Table 3 and the
  compile-measure pipeline used by every experiment.

Quickstart::

    from repro import compile_and_measure

    result = compile_and_measure("sieve", target="sparc", replication="jumps")
    print(result.measurement.dynamic_insns, result.measurement.dynamic_jumps)
"""

__version__ = "1.0.0"

from .api import CompilationResult, compile_and_measure, measure_cells

__all__ = [
    "CompilationResult",
    "compile_and_measure",
    "measure_cells",
    "__version__",
]
