"""Static program analysis reports.

Census utilities over a compiled program: instruction-kind histogram,
per-function size breakdown, jump census (how many unconditional jumps
remain and why — the §5.2 leftover categories), and a loop census.
Backs the ``python -m repro stats`` command and is handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cfg.analyses import get_analyses
from .cfg.block import Program
from .cfg.reducibility import is_reducible
from .rtl.insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Jump,
    Nop,
    Return,
)
from .targets.machine import Machine

__all__ = [
    "instruction_histogram",
    "function_breakdown",
    "jump_census",
    "loop_census",
    "JumpRecord",
]

_KIND_NAMES = {
    Assign: "assign",
    Compare: "compare",
    CondBranch: "cond-branch",
    Jump: "jump",
    IndirectJump: "indirect-jump",
    Call: "call",
    Return: "return",
    Nop: "nop",
}


def instruction_histogram(program: Program) -> Dict[str, int]:
    """Instruction-kind counts over the whole program."""
    histogram: Dict[str, int] = {name: 0 for name in _KIND_NAMES.values()}
    for func in program.functions.values():
        for insn in func.insns():
            histogram[_KIND_NAMES[type(insn)]] += 1
    return histogram


def function_breakdown(
    program: Program, target: Optional[Machine] = None
) -> List[Tuple[str, int, int, int, int]]:
    """(name, blocks, insns, jumps, code bytes) per function."""
    rows = []
    for name, func in program.functions.items():
        size = (
            sum(target.insn_size(i) for i in func.insns()) if target else 0
        )
        rows.append(
            (name, len(func.blocks), func.insn_count(), func.jump_count(), size)
        )
    return rows


@dataclass
class JumpRecord:
    """One surviving unconditional jump and its §5.2 category."""

    function: str
    block: str
    target: str
    category: str  # "self-loop", "to-indirect", "flagged", "other"


def jump_census(program: Program) -> List[JumpRecord]:
    """Classify every remaining unconditional jump.

    The paper (§5.2) attributes leftovers to indirect jumps, infinite
    loops, and interactions treated conservatively; this reports which.
    """
    records: List[JumpRecord] = []
    for name, func in program.functions.items():
        for block in func.blocks:
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            try:
                target = func.block_by_label(term.target)
            except KeyError:
                records.append(JumpRecord(name, block.label, term.target, "other"))
                continue
            if target is block:
                category = "self-loop"
            elif target.ends_in_indirect_jump():
                category = "to-indirect"
            elif term.no_replicate:
                category = "flagged"
            else:
                category = "other"
            records.append(JumpRecord(name, block.label, term.target, category))
    return records


def loop_census(program: Program) -> List[Tuple[str, str, int, bool]]:
    """(function, header label, member count, contains-jump) per loop."""
    rows = []
    for name, func in program.functions.items():
        info = get_analyses(func).loops()
        for loop in info.loops:
            has_jump = any(block.ends_in_jump() for block in loop.blocks)
            rows.append((name, loop.header.label, len(loop.blocks), has_jump))
    return rows
