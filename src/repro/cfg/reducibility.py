"""Flow-graph reducibility via T1/T2 interval collapsing.

Step 6 of the paper's JUMPS algorithm requires checking whether the flow
graph is still reducible after a replication; if not, the replication is
rolled back.  The classic test: repeatedly apply

* **T1** — remove a self edge ``n -> n``;
* **T2** — if node ``n`` (other than the entry) has exactly one
  predecessor ``p``, merge ``n`` into ``p``;

the graph is reducible iff it collapses to a single node.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .block import Function
from .graph import reachable_blocks

__all__ = ["is_reducible", "collapse"]


def collapse(succs: Dict[int, Set[int]], entry: int) -> int:
    """Apply T1/T2 until fixpoint; return the number of remaining nodes.

    ``succs`` maps node id -> set of successor ids and is modified in place.
    """
    preds: Dict[int, Set[int]] = {node: set() for node in succs}
    for node, targets in succs.items():
        for target in targets:
            preds[target].add(node)

    worklist: List[int] = list(succs)
    in_worklist: Set[int] = set(worklist)
    while worklist:
        node = worklist.pop()
        in_worklist.discard(node)
        if node not in succs:
            continue
        # T1: remove self edges.
        if node in succs[node]:
            succs[node].discard(node)
            preds[node].discard(node)
        # T2: merge into a unique predecessor.
        if node != entry and len(preds[node]) == 1:
            (parent,) = preds[node]
            # Redirect node's out-edges to come from parent.
            succs[parent].discard(node)
            for target in succs[node]:
                preds[target].discard(node)
                if target != node:
                    succs[parent].add(target)
                    preds[target].add(parent)
            del succs[node]
            del preds[node]
            if parent not in in_worklist:
                worklist.append(parent)
                in_worklist.add(parent)
            # Parent's successors may now be T2 candidates.
            for target in list(succs[parent]):
                if target not in in_worklist:
                    worklist.append(target)
                    in_worklist.add(target)
    return len(succs)


def is_reducible(func: Function) -> bool:
    """True when the reachable flow graph of ``func`` is reducible."""
    reachable = reachable_blocks(func)
    succs: Dict[int, Set[int]] = {
        id(block): {id(s) for s in block.succs if s in reachable}
        for block in reachable
    }
    if not succs:
        return True
    return collapse(succs, id(func.entry)) == 1
