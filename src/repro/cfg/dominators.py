"""Dominator computation.

Implements the classic iterative dataflow algorithm (Cooper/Harvey/Kennedy
style, using reverse postorder and intersection of immediate dominators).
Unreachable blocks are not assigned dominators; callers run dead-code
elimination first or must tolerate missing entries.
"""

from __future__ import annotations

from typing import Dict, Optional

from .block import BasicBlock, Function
from .traversal import reverse_postorder

__all__ = ["compute_dominators", "dominates", "DominatorTree"]


class DominatorTree:
    """Immediate-dominator mapping with a `dominates` query."""

    def __init__(self, idom: Dict[BasicBlock, Optional[BasicBlock]]) -> None:
        self._idom = idom

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate dominator of ``block`` (``None`` for the entry block)."""
        return self._idom.get(block)

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self._idom

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self._idom.get(node)
        return False


def compute_dominators(func: Function) -> DominatorTree:
    """Compute the dominator tree for the reachable part of ``func``."""
    order = reverse_postorder(func)
    index = {block: i for i, block in enumerate(order)}
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {func.entry: None}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block is func.entry:
                continue
            processed = [p for p in block.preds if p in idom and p in index]
            if not processed:
                continue
            new_idom = processed[0]
            for pred in processed[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True
    return DominatorTree(idom)


def dominates(func: Function, a: BasicBlock, b: BasicBlock) -> bool:
    """Convenience one-shot dominance query.

    .. deprecated:: delegates to the per-function :class:`AnalysisManager`
       (see :mod:`repro.cfg.analyses`), which caches the dominator tree
       until the CFG actually changes.  Prefer
       ``get_analyses(func).dominates(a, b)`` — kept for source
       compatibility with existing callers.
    """
    from .analyses import get_analyses

    return get_analyses(func).dominates(a, b)
