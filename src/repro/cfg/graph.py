"""Control-flow graph construction and maintenance.

Two entry points matter to the rest of the system:

* :func:`build_function` splits a flat ``(label, insn)`` listing into basic
  blocks (used by the front-end and by the RTL parser based tests).
* :func:`compute_flow` (re)computes predecessor/successor edges from the
  block terminators and the positional layout.  Passes call it after any
  structural change; it is cheap and keeps edge state authoritative.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rtl.insn import CondBranch, IndirectJump, Insn, Jump, Return
from .block import BasicBlock, Function

__all__ = [
    "build_function",
    "compute_flow",
    "check_function",
    "reachable_blocks",
    "split_into_blocks",
]


def split_into_blocks(
    pairs: Sequence[Tuple[Optional[str], Insn]], make_label
) -> List[BasicBlock]:
    """Split a labelled instruction listing into basic blocks.

    A new block starts at every label and after every control transfer.
    Blocks without an explicit label receive one from ``make_label``.
    """
    blocks: List[BasicBlock] = []
    current: Optional[BasicBlock] = None
    for label, insn in pairs:
        if label is not None or current is None:
            current = BasicBlock(label if label is not None else make_label())
            blocks.append(current)
        current.insns.append(insn)
        if insn.is_transfer():
            current = None
    return blocks


def build_function(
    name: str,
    pairs: Sequence[Tuple[Optional[str], Insn]],
    params: Optional[Sequence[str]] = None,
) -> Function:
    """Build a :class:`Function` from a labelled instruction listing."""
    func = Function(name, params)
    # Two-phase labelling: we need fresh labels that do not clash with the
    # listing's own labels, so collect those first.
    used = {label for label, _ in pairs if label is not None}
    counter = [0]

    def make_label() -> str:
        while True:
            counter[0] += 1
            candidate = f"B{counter[0]}"
            if candidate not in used:
                return candidate

    func.blocks = split_into_blocks(pairs, make_label)
    compute_flow(func)
    return func


def compute_flow(func: Function) -> None:
    """Recompute predecessor/successor edges of every block in ``func``.

    Bumps ``func.cfg_edition`` when the block list or any successor list
    actually changed, which is what invalidates the cached analyses of
    :mod:`repro.cfg.analyses`.  A recomputation that reproduces the
    existing edges exactly (the common case for passes that only touch
    straight-line code) leaves the edition — and the caches — intact.
    """
    old_shape = [(id(block), block.succs) for block in func.blocks]
    by_label: Dict[str, BasicBlock] = {}
    for block in func.blocks:
        by_label[block.label] = block
        block.preds = []
        block.succs = []

    for index, block in enumerate(func.blocks):
        nxt = func.blocks[index + 1] if index + 1 < len(func.blocks) else None
        term = block.terminator
        succs: List[BasicBlock] = []
        if isinstance(term, Jump):
            succs.append(_lookup(by_label, term.target, func, block))
        elif isinstance(term, CondBranch):
            # Fall-through edge first, branch-taken edge second.
            if nxt is None:
                raise ValueError(
                    f"{func.name}: block {block.label} ends in a conditional "
                    "branch but has no fall-through block"
                )
            succs.append(nxt)
            succs.append(_lookup(by_label, term.target, func, block))
        elif isinstance(term, Return):
            pass
        elif isinstance(term, IndirectJump):
            for target in term.targets:
                succs.append(_lookup(by_label, target, func, block))
        else:
            if nxt is not None:
                succs.append(nxt)
        block.succs = succs
        for succ in succs:
            succ.preds.append(block)

    changed = len(old_shape) != len(func.blocks) or any(
        ident != id(block)
        or len(old_succs) != len(block.succs)
        or any(a is not b for a, b in zip(old_succs, block.succs))
        for (ident, old_succs), block in zip(old_shape, func.blocks)
    )
    if changed:
        func.cfg_edition += 1


def _lookup(
    by_label: Dict[str, BasicBlock], label: str, func: Function, src: BasicBlock
) -> BasicBlock:
    try:
        return by_label[label]
    except KeyError:
        raise KeyError(
            f"{func.name}: block {src.label} targets unknown label {label!r}"
        ) from None


def reachable_blocks(func: Function) -> Set[BasicBlock]:
    """The set of blocks reachable from the entry (ids, not labels)."""
    seen: Set[int] = set()
    result: Set[BasicBlock] = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        result.add(block)
        stack.extend(block.succs)
    return result


def check_function(func: Function) -> None:
    """Validate structural invariants; raise ``AssertionError`` on violation.

    Used by tests and (cheaply) by passes in debug scenarios:

    * labels are unique,
    * only the final instruction of a block is a transfer,
    * the final block does not fall off the end of the function,
    * edge sets are consistent with a fresh :func:`compute_flow`.
    """
    labels = [block.label for block in func.blocks]
    assert len(labels) == len(set(labels)), f"duplicate labels in {func.name}"
    for block in func.blocks:
        for insn in block.insns[:-1]:
            assert not insn.is_transfer(), (
                f"{func.name}/{block.label}: transfer {insn!r} not at block end"
            )
    if func.blocks:
        last = func.blocks[-1]
        assert not last.falls_through(), (
            f"{func.name}: final block {last.label} falls off the function end"
        )
    snapshot = {
        block.label: ([p.label for p in block.preds], [s.label for s in block.succs])
        for block in func.blocks
    }
    compute_flow(func)
    for block in func.blocks:
        fresh = ([p.label for p in block.preds], [s.label for s in block.succs])
        assert snapshot[block.label] == fresh, (
            f"{func.name}/{block.label}: stale edges {snapshot[block.label]} "
            f"vs {fresh}"
        )
