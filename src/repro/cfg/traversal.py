"""Graph traversals over the CFG."""

from __future__ import annotations

from typing import Dict, List

from .block import BasicBlock, Function

__all__ = ["dfs_preorder", "reverse_postorder", "postorder"]


def dfs_preorder(func: Function) -> List[BasicBlock]:
    """Depth-first preorder from the entry block (reachable blocks only)."""
    seen: Dict[int, bool] = {}
    order: List[BasicBlock] = []
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen[id(block)] = True
        order.append(block)
        # Push successors in reverse so the first successor is visited first.
        stack.extend(reversed(block.succs))
    return order


def postorder(func: Function) -> List[BasicBlock]:
    """Depth-first postorder from the entry block (iterative)."""
    seen: Dict[int, bool] = {}
    order: List[BasicBlock] = []
    # Each stack entry is (block, next successor index to visit).
    stack: List[List] = [[func.entry, 0]]
    seen[id(func.entry)] = True
    while stack:
        block, index = stack[-1]
        if index < len(block.succs):
            stack[-1][1] += 1
            succ = block.succs[index]
            if id(succ) not in seen:
                seen[id(succ)] = True
                stack.append([succ, 0])
        else:
            stack.pop()
            order.append(block)
    return order


def reverse_postorder(func: Function) -> List[BasicBlock]:
    """Reverse postorder — the canonical iteration order for forward dataflow."""
    return list(reversed(postorder(func)))
