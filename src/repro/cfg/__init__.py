"""Control-flow analysis: blocks, CFG, dominators, loops, reducibility."""

from .analyses import AnalysisManager, get_analyses
from .block import BasicBlock, Function, GlobalData, Program
from .dominators import DominatorTree, compute_dominators, dominates
from .graph import (
    build_function,
    check_function,
    compute_flow,
    reachable_blocks,
)
from .loops import Loop, LoopInfo, find_loops
from .reducibility import is_reducible
from .traversal import dfs_preorder, postorder, reverse_postorder

__all__ = [
    "AnalysisManager",
    "get_analyses",
    "BasicBlock",
    "Function",
    "GlobalData",
    "Program",
    "DominatorTree",
    "compute_dominators",
    "dominates",
    "build_function",
    "check_function",
    "compute_flow",
    "reachable_blocks",
    "Loop",
    "LoopInfo",
    "find_loops",
    "is_reducible",
    "dfs_preorder",
    "postorder",
    "reverse_postorder",
]
