"""Control-flow analysis: blocks, CFG, dominators, loops, reducibility."""

from .block import BasicBlock, Function, GlobalData, Program
from .dominators import DominatorTree, compute_dominators, dominates
from .graph import (
    build_function,
    check_function,
    compute_flow,
    reachable_blocks,
)
from .loops import Loop, LoopInfo, find_loops
from .reducibility import is_reducible
from .traversal import dfs_preorder, postorder, reverse_postorder

__all__ = [
    "BasicBlock",
    "Function",
    "GlobalData",
    "Program",
    "DominatorTree",
    "compute_dominators",
    "dominates",
    "build_function",
    "check_function",
    "compute_flow",
    "reachable_blocks",
    "Loop",
    "LoopInfo",
    "find_loops",
    "is_reducible",
    "dfs_preorder",
    "postorder",
    "reverse_postorder",
]
