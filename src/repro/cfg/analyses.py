"""Cached CFG analyses with explicit edition-based invalidation.

Dominator trees, natural loops, reverse postorder and the reducibility
verdict are pure functions of the flow graph's *structure*, yet the seed
code base recomputed them from scratch at every use — once per candidate
jump inside a replication sweep, once per optimizer pass that needs loop
or dominance information.  :class:`AnalysisManager` caches them per
function, keyed on ``Function.cfg_edition``: :func:`repro.cfg.graph.compute_flow`
bumps that counter whenever the block list or any edge actually changes
(and every structural transformation in this code base calls
``compute_flow`` afterwards — the system-wide invariant the CFG
validator enforces), so a cached result is served exactly until the
graph really changed.

Usage::

    from repro.cfg.analyses import get_analyses

    am = get_analyses(func)
    loops = am.loops()          # cached until the CFG mutates
    if am.reducible():
        ...
    am.dominates(a, b)          # cached dominator tree

Cache traffic is visible through the ambient observer as the
``analysis.cache.hit`` / ``analysis.cache.miss`` counters (plus
per-analysis ``analysis.cache.{hit,miss}.<kind>`` breakdowns).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..obs import active as _active_observer
from .block import BasicBlock, Function
from .dominators import DominatorTree, compute_dominators
from .loops import LoopInfo, find_loops
from .reducibility import is_reducible
from .traversal import reverse_postorder

__all__ = ["AnalysisManager", "get_analyses"]


class AnalysisManager:
    """Per-function cache of structure-derived CFG analyses."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self._edition = -1
        self._cache: Dict[str, object] = {}

    # --- cache plumbing -------------------------------------------------------

    def invalidate(self) -> None:
        """Force recomputation of every analysis on next use.

        Normally unnecessary — ``compute_flow`` advances the edition for
        any real structural change — but available for callers that
        mutate edges behind the graph module's back.
        """
        self.func.cfg_edition += 1

    def _get(self, kind: str, compute: Callable[[], object]) -> object:
        edition = self.func.cfg_edition
        if edition != self._edition:
            self._cache.clear()
            self._edition = edition
        obs = _active_observer()
        if kind in self._cache:
            if obs is not None:
                obs.metrics.inc("analysis.cache.hit")
                obs.metrics.inc(f"analysis.cache.hit.{kind}")
            return self._cache[kind]
        if obs is not None:
            obs.metrics.inc("analysis.cache.miss")
            obs.metrics.inc(f"analysis.cache.miss.{kind}")
        result = compute()
        self._cache[kind] = result
        return result

    # --- the analyses ---------------------------------------------------------

    def dominators(self) -> DominatorTree:
        """The dominator tree of the reachable part of the function."""
        return self._get("dominators", lambda: compute_dominators(self.func))

    def loops(self) -> LoopInfo:
        """All natural loops (reuses the cached dominator tree)."""
        return self._get(
            "loops", lambda: find_loops(self.func, self.dominators())
        )

    def reverse_postorder(self) -> List[BasicBlock]:
        """Reverse postorder of the reachable blocks."""
        return self._get("rpo", lambda: reverse_postorder(self.func))

    def reducible(self) -> bool:
        """Whether the reachable flow graph is reducible (T1/T2 test)."""
        return self._get("reducible", lambda: is_reducible(self.func))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b``, off the cached tree."""
        return self.dominators().dominates(a, b)


def get_analyses(func: Function) -> AnalysisManager:
    """The (lazily created) analysis manager attached to ``func``."""
    manager: Optional[AnalysisManager] = getattr(func, "_analysis_manager", None)
    if manager is None:
        manager = AnalysisManager(func)
        func._analysis_manager = manager
    return manager
