"""Basic blocks, functions and whole programs.

The *positional order* of blocks within :attr:`Function.blocks` is
significant: control falls through from each block to its positional
successor unless the block ends in an unconditional transfer.  The paper's
replication algorithm depends on this ("the last block to be replicated will
fall through to the next block"), so every structural transformation in this
code base maintains the invariant that the block list is the layout order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..rtl.insn import CondBranch, IndirectJump, Insn, Jump, Return

__all__ = ["BasicBlock", "Function", "GlobalData", "Program"]


#: Shared empty ancestry — most blocks are never replicated, so they all
#: point at one immutable frozenset instead of allocating per block.
_NO_ANCESTRY: frozenset = frozenset()


class BasicBlock:
    """A maximal straight-line sequence of RTLs with a unique label."""

    __slots__ = ("label", "insns", "preds", "succs", "replica_origin", "replica_ancestry")

    def __init__(self, label: str, insns: Optional[List[Insn]] = None) -> None:
        self.label = label
        self.insns: List[Insn] = insns if insns is not None else []
        self.preds: List["BasicBlock"] = []
        self.succs: List["BasicBlock"] = []
        #: Replication provenance.  ``replica_origin`` is the label of the
        #: *ultimate* original this block is a copy of (``None`` for blocks
        #: the front end created), and ``replica_ancestry`` is the frozen
        #: set of jump identities — ``(origin(jump block), origin(target))``
        #: label pairs — whose replication events this block's existence
        #: transitively depends on.  The replication engine's convergence
        #: guard refuses to re-replicate a jump whose identity already
        #: appears in its own block's ancestry: that is the "replication ad
        #: infinitum" self-similarity of §5.2 (see
        #: :class:`repro.core.replication.CodeReplicator`).
        self.replica_origin: Optional[str] = None
        self.replica_ancestry: frozenset = _NO_ANCESTRY

    @property
    def origin_label(self) -> str:
        """The label identifying this block across replication copies."""
        return self.replica_origin if self.replica_origin is not None else self.label

    # --- terminator helpers -------------------------------------------------

    @property
    def terminator(self) -> Optional[Insn]:
        """The final instruction if it is a control transfer, else ``None``."""
        if self.insns and self.insns[-1].is_transfer():
            return self.insns[-1]
        return None

    def ends_in_jump(self) -> bool:
        return isinstance(self.terminator, Jump)

    def ends_in_return(self) -> bool:
        return isinstance(self.terminator, Return)

    def ends_in_cond_branch(self) -> bool:
        return isinstance(self.terminator, CondBranch)

    def ends_in_indirect_jump(self) -> bool:
        return isinstance(self.terminator, IndirectJump)

    def falls_through(self) -> bool:
        """True when control may continue to the positional successor."""
        term = self.terminator
        return not isinstance(term, (Jump, Return, IndirectJump))

    def size(self) -> int:
        """The number of RTLs in the block (the paper's path weight)."""
        return len(self.insns)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.insns)} insns)>"


@dataclass
class GlobalData:
    """A global variable or constant data item (e.g. a string literal)."""

    name: str
    size: int
    init: bytes = b""
    # Element width for debugging/pretty output; storage is byte-addressed.
    width: str = "B"
    # Relocations: (byte offset, symbol name) pairs — the address of the
    # symbol is patched into the 4 bytes at the offset at load time (used
    # by pointer globals initialized with strings or other globals).
    relocs: List[Tuple[int, str]] = field(default_factory=list)


class Function:
    """A function: parameters, a frame layout, and blocks in layout order."""

    def __init__(self, name: str, params: Optional[Sequence[str]] = None) -> None:
        self.name = name
        self.params: List[str] = list(params or [])
        self.blocks: List[BasicBlock] = []
        # Frame layout: local name -> (byte offset, byte size).
        self.frame: Dict[str, Tuple[int, int]] = {}
        self.frame_size = 0
        # Plain int rather than an ``itertools.count`` so a structural
        # clone (see ``repro.core.replication.clone_function``) can copy
        # the counter state — deterministic replays (the translation
        # validator's pass bisection) depend on clones generating the
        # same fresh labels as the original run.
        self._next_label = 1000
        #: Monotonic CFG-structure counter.  :func:`repro.cfg.graph.compute_flow`
        #: bumps it whenever the block list or any edge actually changed;
        #: cached analyses (see :mod:`repro.cfg.analyses`) key off it.
        self.cfg_edition = 0

    # --- frame management ---------------------------------------------------

    def add_local(self, name: str, size: int) -> None:
        """Reserve ``size`` bytes of frame space for local ``name``."""
        if name in self.frame:
            raise ValueError(f"duplicate local {name!r} in {self.name}")
        # Keep every slot 4-byte aligned; the interpreter relies on it.
        offset = (self.frame_size + 3) & ~3
        self.frame[name] = (offset, size)
        self.frame_size = offset + size

    # --- label and block management ------------------------------------------

    def new_label(self) -> str:
        """Return a label not used by any block of this function."""
        existing = {block.label for block in self.blocks}
        while True:
            label = f"L{self._next_label}"
            self._next_label += 1
            if label not in existing:
                return label

    def block_by_label(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(f"no block labelled {label!r} in {self.name}")

    def block_index(self, block: BasicBlock) -> int:
        for index, candidate in enumerate(self.blocks):
            if candidate is block:
                return index
        raise ValueError(f"block {block.label} not in function {self.name}")

    def next_block(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The positional successor of ``block`` (fall-through target)."""
        index = self.block_index(block)
        if index + 1 < len(self.blocks):
            return self.blocks[index + 1]
        return None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    # --- whole-function helpers ----------------------------------------------

    def insns(self) -> Iterable[Insn]:
        for block in self.blocks:
            for insn in block.insns:
                yield insn

    def insn_count(self) -> int:
        return sum(len(block.insns) for block in self.blocks)

    def jump_count(self) -> int:
        """Number of unconditional jump instructions (the paper's metric)."""
        return sum(1 for insn in self.insns() if isinstance(insn, Jump))

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Program:
    """A compiled program: functions plus global data."""

    def __init__(self) -> None:
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalData] = {}
        self._string_counter = itertools.count()

    def add_function(self, func: Function) -> None:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def add_global(self, data: GlobalData) -> None:
        if data.name in self.globals:
            raise ValueError(f"duplicate global {data.name!r}")
        self.globals[data.name] = data

    def intern_string(self, text: str) -> str:
        """Store a NUL-terminated string literal; return its symbol name."""
        payload = text.encode("latin-1") + b"\x00"
        for data in self.globals.values():
            if data.init == payload and data.name.startswith("_str"):
                return data.name
        name = f"_str{next(self._string_counter)}"
        self.add_global(GlobalData(name, len(payload), payload))
        return name

    def insn_count(self) -> int:
        """Static instruction count over all functions."""
        return sum(func.insn_count() for func in self.functions.values())

    def jump_count(self) -> int:
        return sum(func.jump_count() for func in self.functions.values())

    def __repr__(self) -> str:
        return f"<Program {sorted(self.functions)}>"
