"""Natural-loop detection.

A back edge is an edge ``t -> h`` where ``h`` dominates ``t``.  The natural
loop of that edge is ``h`` plus every block that can reach ``t`` without
passing through ``h``.  Loops sharing a header are merged, following the
usual convention (and the paper's: "all blocks inside this loop").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .block import BasicBlock, Function
from .dominators import DominatorTree, compute_dominators

__all__ = ["Loop", "LoopInfo", "find_loops"]


class Loop:
    """A natural loop: its header and the set of member blocks."""

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.back_edges: List[Tuple[BasicBlock, BasicBlock]] = []

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def members_in_layout_order(self, func: Function) -> List[BasicBlock]:
        """Loop members sorted by their position in the function layout."""
        positions = {id(block): i for i, block in enumerate(func.blocks)}
        return sorted(self.blocks, key=lambda b: positions[id(b)])

    def exits(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges leaving the loop, as (inside block, outside successor)."""
        edges = []
        for block in self.blocks:
            for succ in block.succs:
                if succ not in self.blocks:
                    edges.append((block, succ))
        return edges

    def __repr__(self) -> str:
        labels = sorted(block.label for block in self.blocks)
        return f"<Loop header={self.header.label} blocks={labels}>"


class LoopInfo:
    """All natural loops of a function, with membership queries."""

    def __init__(self, loops: List[Loop], dom: DominatorTree) -> None:
        self.loops = loops
        self.dom = dom
        self._header_map: Dict[BasicBlock, Loop] = {
            loop.header: loop for loop in loops
        }

    def loop_with_header(self, block: BasicBlock) -> Optional[Loop]:
        return self._header_map.get(block)

    def is_header(self, block: BasicBlock) -> bool:
        return block in self._header_map

    def innermost_loop_of(self, block: BasicBlock) -> Optional[Loop]:
        """The smallest loop containing ``block`` (``None`` if not in a loop)."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if block in loop and (best is None or len(loop.blocks) < len(best.blocks)):
                best = loop
        return best

    def loops_containing(self, block: BasicBlock) -> List[Loop]:
        return [loop for loop in self.loops if block in loop]


def find_loops(func: Function, dom: Optional[DominatorTree] = None) -> LoopInfo:
    """Detect all natural loops of ``func`` (reachable part only)."""
    if dom is None:
        dom = compute_dominators(func)
    loops: Dict[BasicBlock, Loop] = {}
    for block in func.blocks:
        if block not in dom:
            continue  # unreachable
        for succ in block.succs:
            if succ in dom and dom.dominates(succ, block):
                loop = loops.setdefault(succ, Loop(succ))
                loop.back_edges.append((block, succ))
                _collect(loop, block, dom)
    return LoopInfo(list(loops.values()), dom)


def _collect(loop: Loop, tail: BasicBlock, dom: DominatorTree) -> None:
    """Add to ``loop`` every block reaching ``tail`` without passing the header."""
    stack = [tail]
    while stack:
        block = stack.pop()
        if block in loop.blocks or block not in dom:
            continue
        loop.blocks.add(block)
        stack.extend(block.preds)
