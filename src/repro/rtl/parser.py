"""Parsing the textual RTL notation back into instruction objects.

The accepted syntax is the one produced by :mod:`repro.rtl.printer` (which
itself follows the paper's listings), with labels written ``Lname:`` on a
line of their own::

    L15:
      d[0]=d[1];
      NZ=d[0]?L[_n];
      PC=NZ>=0,L16;
      B[a[0]]=B[a[0]+1];
      PC=L15;

This makes it possible to write tests and examples directly in the paper's
notation and round-trip them through the printer.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from .insn import (
    RELATIONS,
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Nop,
    Return,
)

__all__ = [
    "parse_expr",
    "parse_insn",
    "parse_insns",
    "parse_function_text",
    "RTLSyntaxError",
]


class RTLSyntaxError(ValueError):
    """Raised when the textual RTL cannot be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>\d+)"
    r"|(?P<name>[A-Za-z_]\w*)"
    r"|(?P<op><<|>>|[-+*/%&|^~()\[\],.?=;:<>!])"
    r")"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remaining = text[pos:].strip()
            if not remaining:
                break
            raise RTLSyntaxError(f"cannot tokenize {remaining!r}")
        pos = match.end()
        token = match.group("num") or match.group("name") or match.group("op")
        if token is not None:
            tokens.append(token)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Optional[str]:
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise RTLSyntaxError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise RTLSyntaxError(f"expected {token!r}, got {got!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # --- expression grammar (precedence climbing) --------------------------

    def parse_expr(self, min_prec: int = 1) -> Expr:
        left = self.parse_unary()
        while True:
            op = self.peek()
            prec = _BIN_PREC.get(op or "", 0)
            if prec < min_prec:
                return left
            self.next()
            right = self.parse_expr(prec + 1)
            left = BinOp(op, left, right)  # type: ignore[arg-type]

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token == "-":
            self.next()
            operand = self.parse_unary()
            if isinstance(operand, Const):
                return Const(-operand.value)
            return UnOp("-", operand)
        if token == "~":
            self.next()
            return UnOp("~", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.next()
        if token == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.isdigit():
            return Const(int(token))
        if token in ("B", "W", "L") and self.peek() == "[":
            self.next()
            addr = self.parse_expr()
            self.expect("]")
            return Mem(addr, token)
        if token == "NZ":
            return Reg("cc", 0)
        if token == "FP" and self.peek() == "+":
            # FP+name. is the printed form of a Local
            self.next()
            name = self.next()
            self.expect(".")
            return Local(name)
        if re.fullmatch(r"[A-Za-z_]\w*", token):
            if self.peek() == "[":
                self.next()
                index_token = self.next()
                if not index_token.isdigit():
                    raise RTLSyntaxError(f"register index must be a number: {index_token!r}")
                self.expect("]")
                return Reg(token, int(index_token))
            if self.peek() == ".":
                self.next()
                return Sym(token)
            raise RTLSyntaxError(f"bare name {token!r} (globals need a trailing dot)")
        raise RTLSyntaxError(f"unexpected token {token!r}")


_BIN_PREC = {
    "|": 1,
    "^": 2,
    "&": 3,
    "<<": 4,
    ">>": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def parse_expr(text: str) -> Expr:
    """Parse a single expression, e.g. ``"L[a[6]+4]"`` or ``"d[0]+1"``."""
    parser = _Parser(_tokenize(text))
    expr = parser.parse_expr()
    if not parser.at_end():
        raise RTLSyntaxError(f"trailing tokens after expression in {text!r}")
    return expr


def _parse_relation(parser: _Parser) -> str:
    token = parser.next()
    if token in ("<", ">") and parser.peek() == "=":
        parser.next()
        token += "="
    elif token == "=" and parser.peek() == "=":
        parser.next()
        token = "=="
    elif token == "!" and parser.peek() == "=":
        parser.next()
        token = "!="
    if token not in RELATIONS:
        raise RTLSyntaxError(f"bad relation {token!r}")
    return token


def parse_insn(text: str) -> Insn:
    """Parse one instruction written in the paper's notation."""
    text = text.strip()
    if text.endswith(";"):
        text = text[:-1]
    parser = _Parser(_tokenize(text))
    insn = _parse_insn(parser)
    if not parser.at_end():
        raise RTLSyntaxError(f"trailing tokens in {text!r}")
    return insn


def _parse_insn(parser: _Parser) -> Insn:
    token = parser.peek()
    if token == "NOP":
        parser.next()
        return Nop()
    if token == "CALL":
        parser.next()
        name = parser.next()
        if name.startswith("_"):
            name = name[1:]
        nargs = 0
        if parser.peek() == ",":
            parser.next()
            nargs = int(parser.next())
        return Call(name, nargs)
    if token == "NZ":
        parser.next()
        parser.expect("=")
        left = parser.parse_expr()
        parser.expect("?")
        right = parser.parse_expr()
        return Compare(left, right)
    if token == "PC":
        parser.next()
        parser.expect("=")
        nxt = parser.peek()
        if nxt == "RT":
            parser.next()
            return Return()
        if nxt == "NZ":
            parser.next()
            rel = _parse_relation(parser)
            zero = parser.next()
            if zero != "0":
                raise RTLSyntaxError("conditional branches compare NZ against 0")
            parser.expect(",")
            return CondBranch(rel, parser.next())
        if nxt == "L" and parser.peek(1) == "[":
            parser.next()
            parser.next()
            addr = parser.parse_expr()
            parser.expect("]")
            targets: List[str] = []
            if parser.peek() == "<":
                parser.next()
                while parser.peek() != ">":
                    name = parser.next()
                    if name != ",":
                        targets.append(name)
                parser.expect(">")
            return IndirectJump(addr, targets)
        return Jump(parser.next())
    # Otherwise: an assignment "lvalue = expr"
    dst = parser.parse_primary()
    if not isinstance(dst, (Reg, Mem)):
        raise RTLSyntaxError(f"bad assignment destination {dst!r}")
    parser.expect("=")
    src = parser.parse_expr()
    return Assign(dst, src)


def parse_insns(text: str) -> List[Tuple[Optional[str], Insn]]:
    """Parse a multi-line listing into ``(label, insn)`` pairs.

    A label line ``Lname:`` attaches the label to the *next* instruction.
    """
    result: List[Tuple[Optional[str], Insn]] = []
    pending_label: Optional[str] = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":") and re.fullmatch(r"[A-Za-z_]\w*:", line):
            if pending_label is not None:
                raise RTLSyntaxError(f"two consecutive labels before an instruction: {line!r}")
            pending_label = line[:-1]
            continue
        # Several instructions may share a line, separated by ';'.
        for piece in filter(None, (p.strip() for p in line.split(";"))):
            result.append((pending_label, parse_insn(piece)))
            pending_label = None
    if pending_label is not None:
        raise RTLSyntaxError(f"label {pending_label!r} at end of input")
    return result


def parse_function_text(text: str):
    """Parse a whole listing as printed by ``format_function``.

    The first non-empty line must be ``function name(params...)``; the
    rest is a labelled instruction listing.  Returns a
    :class:`~repro.cfg.block.Function` (imported lazily to avoid an import
    cycle), so ``parse_function_text(format_function(f))`` round-trips.
    """
    from ..cfg.graph import build_function

    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise RTLSyntaxError("empty function listing")
    header = lines[0].strip()
    match = re.fullmatch(r"function\s+(\w+)\((.*)\)", header)
    if not match:
        raise RTLSyntaxError(f"bad function header {header!r}")
    name = match.group(1)
    params = [p.strip() for p in match.group(2).split(",") if p.strip()]
    pairs = parse_insns("\n".join(lines[1:]))
    return build_function(name, pairs, params)
