"""Printing RTLs in the paper's textual notation.

Examples of output (compare Tables 1 and 2 of the paper)::

    d[1]=1;
    NZ=d[0]?L[_n];
    PC=NZ>=0,L16;
    B[a[0]]=B[a[0]+1];
    PC=L15;
    PC=RT;
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .expr import BinOp, Const, Expr, Local, Mem, Reg, Sym, UnOp
from .insn import (
    Assign,
    Call,
    Compare,
    CondBranch,
    IndirectJump,
    Insn,
    Jump,
    Nop,
    Return,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..cfg.block import BasicBlock, Function

import re

_INT_LITERAL = re.compile(r"-?\d+")

__all__ = ["format_expr", "format_insn", "format_block", "format_function"]

# Precedence levels used to decide where parentheses are required.
_PRECEDENCE = {
    "|": 1,
    "^": 2,
    "&": 3,
    "<<": 4,
    ">>": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression in the paper's notation."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Sym):
        return f"{expr.name}."
    if isinstance(expr, Local):
        # Locals are frame-pointer-relative; the generic frame pointer is
        # rendered as FP (targets print a[6] or r[30] in their listings).
        return f"FP+{expr.name}."
    if isinstance(expr, Reg):
        if expr.bank == "cc":
            return "NZ"
        return f"{expr.bank}[{expr.index}]"
    if isinstance(expr, Mem):
        return f"{expr.width}[{format_expr(expr.addr)}]"
    if isinstance(expr, UnOp):
        inner = format_expr(expr.operand, 10)
        if expr.op == "-" and _INT_LITERAL.fullmatch(inner):
            # Print as a plain (negated) constant so that the parser's
            # constant folding of unary minus round-trips (covers nested
            # negations of constants too).
            return str(-int(inner))
        return f"{expr.op}{inner}"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, prec)
        # Right operand needs a higher threshold for non-associative ops.
        right = format_expr(expr.right, prec + 1)
        text = f"{left}{expr.op}{right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression {expr!r}")


def format_insn(insn: Insn) -> str:
    """Render one instruction in the paper's notation."""
    if isinstance(insn, Assign):
        return f"{format_expr(insn.dst)}={format_expr(insn.src)};"
    if isinstance(insn, Compare):
        return f"NZ={format_expr(insn.left)}?{format_expr(insn.right)};"
    if isinstance(insn, CondBranch):
        return f"PC=NZ{insn.rel}0,{insn.target};"
    if isinstance(insn, Jump):
        return f"PC={insn.target};"
    if isinstance(insn, IndirectJump):
        targets = ",".join(insn.targets)
        return f"PC=L[{format_expr(insn.addr)}]<{targets}>;"
    if isinstance(insn, Call):
        return f"CALL _{insn.func},{insn.nargs};"
    if isinstance(insn, Return):
        return "PC=RT;"
    if isinstance(insn, Nop):
        return "NOP;"
    raise TypeError(f"unknown instruction {insn!r}")


def format_block(block: "BasicBlock") -> str:
    """Render a basic block: label line followed by indented instructions."""
    lines = [f"{block.label}:"]
    for insn in block.insns:
        lines.append(f"  {format_insn(insn)}")
    return "\n".join(lines)


def format_function(func: "Function") -> str:
    """Render a whole function in positional block order."""
    header = f"function {func.name}({', '.join(func.params)})"
    parts = [header]
    for block in func.blocks:
        parts.append(format_block(block))
    return "\n".join(parts)
