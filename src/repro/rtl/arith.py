"""32-bit two's-complement arithmetic shared by the constant folder and the
RTL interpreter.

Semantics follow C on the modelled machines: 32-bit wrap-around for
add/sub/mul, truncation toward zero for division and remainder, shift
counts masked to 5 bits.

Shift-count model
-----------------
Shift counts are reduced modulo 32 (``count & SHIFT_MASK``) before the
shift — the SPARC's 32-bit shift semantics, and what every x86-family
machine does too.  ``x << 32 == x``, ``x << 33 == x << 1``, and a
negative count is first wrapped (``-1 & 31 == 31``).  This single model
is shared by *every* consumer of :func:`eval_binop` — the front-end's
literal folder, ``const_fold``, CSE's value numbering, and the EASE
interpreter — so compile-time folding and run-time evaluation agree by
construction and can never be a translation-validation divergence.

The real MC68020 masks shift counts modulo 64 instead, so ``x << 32``
is 0 there; C leaves over-wide shifts undefined, so a C compiler may
pick either.  This repro deliberately models mod-32 *uniformly* —
machine descriptions declare the model via ``Machine.shift_mask`` and a
cross-check test pins them to this module — because a target-dependent
fold would make optimized programs behaviorally target-dependent, which
the paper's measurements (and our differential oracle) assume away.
"""

from __future__ import annotations

__all__ = ["wrap32", "eval_binop", "eval_unop", "compare_relation", "SHIFT_MASK"]

_MASK = 0xFFFFFFFF

#: Shift counts are reduced ``count & SHIFT_MASK`` (the mod-32 model).
SHIFT_MASK = 31


def wrap32(value: int) -> int:
    """Wrap a Python int to signed 32-bit two's complement."""
    value &= _MASK
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def _div_trunc(a: int, b: int) -> int:
    """C-style integer division (truncation toward zero)."""
    if b == 0:
        raise ZeroDivisionError("RTL division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q


def _rem_trunc(a: int, b: int) -> int:
    """C-style remainder: a - (a/b)*b."""
    return a - _div_trunc(a, b) * b


def eval_binop(op: str, a: int, b: int) -> int:
    """Evaluate a binary RTL operator on 32-bit values."""
    if op == "+":
        return wrap32(a + b)
    if op == "-":
        return wrap32(a - b)
    if op == "*":
        return wrap32(a * b)
    if op == "/":
        return wrap32(_div_trunc(a, b))
    if op == "%":
        return wrap32(_rem_trunc(a, b))
    if op == "&":
        return wrap32(a & b)
    if op == "|":
        return wrap32(a | b)
    if op == "^":
        return wrap32(a ^ b)
    if op == "<<":
        return wrap32(a << (b & SHIFT_MASK))
    if op == ">>":
        # Arithmetic shift right (the values are signed).
        return wrap32(a >> (b & SHIFT_MASK))
    raise ValueError(f"unknown binary operator {op!r}")


def eval_unop(op: str, a: int) -> int:
    """Evaluate a unary RTL operator on a 32-bit value."""
    if op == "-":
        return wrap32(-a)
    if op == "~":
        return wrap32(~a)
    raise ValueError(f"unknown unary operator {op!r}")


def compare_relation(rel: str, a: int, b: int) -> bool:
    """Evaluate ``a rel b`` for a branch relation."""
    if rel == "<":
        return a < b
    if rel == "<=":
        return a <= b
    if rel == ">":
        return a > b
    if rel == ">=":
        return a >= b
    if rel == "==":
        return a == b
    if rel == "!=":
        return a != b
    raise ValueError(f"unknown relation {rel!r}")
