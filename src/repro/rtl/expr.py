"""RTL expression trees.

Expressions are immutable (frozen dataclasses) so that they can be hashed,
compared structurally, and shared freely between instructions.  This mirrors
the register transfer lists (RTLs) of VPO, where an instruction is an
assignment of an expression to a register or memory cell.

The vocabulary follows the paper's notation:

* ``d[0]``, ``a[6]``, ``r[8]`` ... machine registers (:class:`Reg`)
* ``x.``                        ... address of global symbol ``x`` (:class:`Sym`)
* ``a[6]+i.``                   ... address of local ``i`` (:class:`Local`)
* ``L[addr]`` / ``B[addr]``     ... memory reference (:class:`Mem`)
* constants, binary and unary operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "Local",
    "Reg",
    "Mem",
    "BinOp",
    "UnOp",
    "walk",
    "subst",
    "regs_in",
    "mems_in",
    "locals_in",
    "map_expr",
]

# Widths of memory references, in bytes.  The letters follow the paper's
# notation for the 68020: B = byte, W = 16-bit word, L = 32-bit long.
WIDTH_BYTES: Dict[str, int] = {"B": 1, "W": 2, "L": 4}

# Binary operators understood by the RTL language.  Comparison is not an
# operator here: it is expressed by the Compare instruction that sets NZ.
BINARY_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
UNARY_OPS = ("-", "~")


class Expr:
    """Base class of all RTL expressions."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """An integer constant."""

    value: int

    def __repr__(self) -> str:
        return f"Const({self.value})"


@dataclass(frozen=True)
class Sym(Expr):
    """The address of a global symbol (printed ``name.`` as in the paper)."""

    name: str

    def __repr__(self) -> str:
        return f"Sym({self.name!r})"


@dataclass(frozen=True)
class Local(Expr):
    """The address of a local (frame) slot.

    The paper prints locals as frame-pointer relative addresses such as
    ``a[6]+i.``; we keep the slot symbolic so that the frame layout can be
    assigned late (by the code generator) and resolved by the interpreter.
    """

    name: str

    def __repr__(self) -> str:
        return f"Local({self.name!r})"


@dataclass(frozen=True)
class Reg(Expr):
    """A register: ``bank`` selects the register file, ``index`` the member.

    Banks in use:

    * ``"v"``   -- virtual registers produced by the front-end (unbounded)
    * ``"d"``   -- 68020 data registers
    * ``"a"``   -- 68020 address registers
    * ``"r"``   -- SPARC integer registers
    * ``"arg"`` -- argument-passing registers of the calling convention
    * ``"rv"``  -- the return-value register
    * ``"cc"``  -- the condition-code register (printed ``NZ``)
    """

    bank: str
    index: int

    def __repr__(self) -> str:
        return f"Reg({self.bank!r},{self.index})"


@dataclass(frozen=True)
class Mem(Expr):
    """A memory reference of the given width whose address is ``addr``."""

    addr: Expr
    width: str  # "B", "W" or "L"

    def children(self) -> Tuple[Expr, ...]:
        return (self.addr,)

    def __repr__(self) -> str:
        return f"Mem({self.addr!r},{self.width!r})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"BinOp({self.op!r},{self.left!r},{self.right!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"UnOp({self.op!r},{self.operand!r})"


# The condition-code register used by Compare / CondBranch.
NZ = Reg("cc", 0)


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def regs_in(expr: Expr) -> Iterator[Reg]:
    """Yield every register occurring in ``expr``."""
    for node in walk(expr):
        if isinstance(node, Reg):
            yield node


def mems_in(expr: Expr) -> Iterator[Mem]:
    """Yield every memory reference occurring in ``expr``."""
    for node in walk(expr):
        if isinstance(node, Mem):
            yield node


def locals_in(expr: Expr) -> Iterator[Local]:
    """Yield every local-address leaf occurring in ``expr``."""
    for node in walk(expr):
        if isinstance(node, Local):
            yield node


def map_expr(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives each node *after* its children have been rewritten and
    may return a replacement node (or the node unchanged).
    """
    if isinstance(expr, Mem):
        rebuilt: Expr = Mem(map_expr(expr.addr, fn), expr.width)
    elif isinstance(expr, BinOp):
        rebuilt = BinOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, UnOp):
        rebuilt = UnOp(expr.op, map_expr(expr.operand, fn))
    else:
        rebuilt = expr
    return fn(rebuilt)


def subst(expr: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    """Replace occurrences of keys of ``mapping`` in ``expr`` by their values.

    Matching is performed bottom-up and structurally, so substituting
    ``{Reg('v', 1): Const(3)}`` rewrites every use of the virtual register.
    """

    def replace(node: Expr) -> Expr:
        return mapping.get(node, node)

    return map_expr(expr, replace)
