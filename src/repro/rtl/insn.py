"""RTL instructions.

Each instruction corresponds to one machine instruction of the target, as in
VPO (one RTL = one instruction).  Instructions are mutable: optimizer passes
rewrite them in place, while the expressions they hold are immutable.

Instruction kinds and their textual forms (the paper's notation):

=================  =============================  =========================
Class              Meaning                        Printed form
=================  =============================  =========================
:class:`Assign`    register or memory assignment  ``d[0]=d[0]+1;``
:class:`Compare`   set condition codes            ``NZ=d[0]?L[_n];``
:class:`CondBranch` conditional branch on NZ      ``PC=NZ>=0,L16;``
:class:`Jump`      unconditional jump             ``PC=L15;``
:class:`IndirectJump` jump through a table        ``PC=L[...];``
:class:`Call`      subroutine call                ``CALL _f;``
:class:`Return`    return from subroutine         ``PC=RT;``
:class:`Nop`       no-operation (delay slots)     ``NOP;``
=================  =============================  =========================
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from .expr import NZ, Expr, Mem, Reg, regs_in, subst

__all__ = [
    "Insn",
    "Assign",
    "Compare",
    "CondBranch",
    "Jump",
    "IndirectJump",
    "Call",
    "Return",
    "Nop",
    "REVERSED_RELATION",
    "reverse_relation",
    "RELATIONS",
]

# Relations usable in a conditional branch, and their logical negations.
RELATIONS = ("<", "<=", ">", ">=", "==", "!=")
REVERSED_RELATION: Dict[str, str] = {
    "<": ">=",
    ">=": "<",
    ">": "<=",
    "<=": ">",
    "==": "!=",
    "!=": "==",
}

_uid_counter = itertools.count(1)


def reverse_relation(rel: str) -> str:
    """Return the logical negation of a branch relation."""
    return REVERSED_RELATION[rel]


class Insn:
    """Base class of all RTL instructions."""

    __slots__ = ("uid",)

    def __init__(self) -> None:
        # A unique id, stable across copies of the *same* object but fresh
        # for clones; used by measurement and bookkeeping.
        self.uid = next(_uid_counter)

    # --- dataflow interface -------------------------------------------------

    def defined_reg(self) -> Optional[Reg]:
        """The register this instruction writes, if any."""
        return None

    def used_exprs(self) -> Tuple[Expr, ...]:
        """Expressions read by this instruction."""
        return ()

    def used_regs(self) -> Set[Reg]:
        used: Set[Reg] = set()
        for expr in self.used_exprs():
            used.update(regs_in(expr))
        return used

    def stores_mem(self) -> bool:
        return False

    # --- control-flow interface ---------------------------------------------

    def is_transfer(self) -> bool:
        """True for instructions that may transfer control."""
        return False

    def branch_targets(self) -> Tuple[str, ...]:
        return ()

    def retarget(self, old: str, new: str) -> None:
        """Replace branch target ``old`` by ``new`` (no-op if absent)."""

    # --- structural interface -------------------------------------------------

    def clone(self) -> "Insn":
        raise NotImplementedError

    def substitute(self, mapping: Dict[Expr, Expr]) -> None:
        """Rewrite *used* expressions through ``mapping`` (not definitions)."""


class Assign(Insn):
    """``dst = src`` where ``dst`` is a register or a memory reference."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Union[Reg, Mem], src: Expr) -> None:
        super().__init__()
        if not isinstance(dst, (Reg, Mem)):
            raise TypeError(f"Assign destination must be Reg or Mem, got {dst!r}")
        self.dst = dst
        self.src = src

    def defined_reg(self) -> Optional[Reg]:
        return self.dst if isinstance(self.dst, Reg) else None

    def used_exprs(self) -> Tuple[Expr, ...]:
        if isinstance(self.dst, Mem):
            # The address of the destination is *read*; the cell is written.
            return (self.dst.addr, self.src)
        return (self.src,)

    def stores_mem(self) -> bool:
        return isinstance(self.dst, Mem)

    def clone(self) -> "Assign":
        return Assign(self.dst, self.src)

    def substitute(self, mapping: Dict[Expr, Expr]) -> None:
        self.src = subst(self.src, mapping)
        if isinstance(self.dst, Mem):
            self.dst = Mem(subst(self.dst.addr, mapping), self.dst.width)

    def __repr__(self) -> str:
        return f"Assign({self.dst!r}, {self.src!r})"


class Compare(Insn):
    """``NZ = left ? right`` -- set condition codes from ``left - right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def defined_reg(self) -> Optional[Reg]:
        return NZ

    def used_exprs(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def clone(self) -> "Compare":
        return Compare(self.left, self.right)

    def substitute(self, mapping: Dict[Expr, Expr]) -> None:
        self.left = subst(self.left, mapping)
        self.right = subst(self.right, mapping)

    def __repr__(self) -> str:
        return f"Compare({self.left!r}, {self.right!r})"


class CondBranch(Insn):
    """``PC = NZ rel 0, target`` -- branch to ``target`` if the relation holds."""

    __slots__ = ("rel", "target")

    def __init__(self, rel: str, target: str) -> None:
        super().__init__()
        if rel not in RELATIONS:
            raise ValueError(f"bad relation {rel!r}")
        self.rel = rel
        self.target = target

    def used_exprs(self) -> Tuple[Expr, ...]:
        return (NZ,)

    def is_transfer(self) -> bool:
        return True

    def branch_targets(self) -> Tuple[str, ...]:
        return (self.target,)

    def retarget(self, old: str, new: str) -> None:
        if self.target == old:
            self.target = new

    def reverse(self, new_target: str) -> None:
        """Negate the relation and branch to ``new_target`` instead."""
        self.rel = reverse_relation(self.rel)
        self.target = new_target

    def clone(self) -> "CondBranch":
        return CondBranch(self.rel, self.target)

    def __repr__(self) -> str:
        return f"CondBranch({self.rel!r}, {self.target!r})"


class Jump(Insn):
    """``PC = target`` -- the unconditional jump this paper eliminates."""

    __slots__ = ("target", "no_replicate")

    def __init__(self, target: str) -> None:
        super().__init__()
        self.target = target
        # Set when the replication engine decided this jump must stay
        # (irreducibility, indirect paths); consulted to avoid retrying.
        self.no_replicate = False

    def is_transfer(self) -> bool:
        return True

    def branch_targets(self) -> Tuple[str, ...]:
        return (self.target,)

    def retarget(self, old: str, new: str) -> None:
        if self.target == old:
            self.target = new

    def clone(self) -> "Jump":
        return Jump(self.target)

    def __repr__(self) -> str:
        return f"Jump({self.target!r})"


class IndirectJump(Insn):
    """``PC = L[addr]`` -- jump through a table; targets are the table entries."""

    __slots__ = ("addr", "targets")

    def __init__(self, addr: Expr, targets: Iterable[str]) -> None:
        super().__init__()
        self.addr = addr
        self.targets: List[str] = list(targets)

    def used_exprs(self) -> Tuple[Expr, ...]:
        return (self.addr,)

    def is_transfer(self) -> bool:
        return True

    def branch_targets(self) -> Tuple[str, ...]:
        return tuple(self.targets)

    def retarget(self, old: str, new: str) -> None:
        self.targets = [new if t == old else t for t in self.targets]

    def clone(self) -> "IndirectJump":
        return IndirectJump(self.addr, list(self.targets))

    def substitute(self, mapping: Dict[Expr, Expr]) -> None:
        self.addr = subst(self.addr, mapping)

    def __repr__(self) -> str:
        return f"IndirectJump({self.addr!r}, {self.targets!r})"


class Call(Insn):
    """``CALL name`` -- call a function; arguments were placed in arg regs."""

    __slots__ = ("func", "nargs")

    def __init__(self, func: str, nargs: int = 0) -> None:
        super().__init__()
        self.func = func
        self.nargs = nargs

    def used_exprs(self) -> Tuple[Expr, ...]:
        return tuple(Reg("arg", i) for i in range(self.nargs))

    def defined_reg(self) -> Optional[Reg]:
        return Reg("rv", 0)

    def stores_mem(self) -> bool:
        # Conservatively assume the callee may write memory.
        return True

    def clone(self) -> "Call":
        return Call(self.func, self.nargs)

    def __repr__(self) -> str:
        return f"Call({self.func!r}, {self.nargs})"


class Return(Insn):
    """``PC = RT`` -- return from the current function."""

    __slots__ = ()

    def is_transfer(self) -> bool:
        return True

    def used_exprs(self) -> Tuple[Expr, ...]:
        return (Reg("rv", 0),)

    def clone(self) -> "Return":
        return Return()

    def __repr__(self) -> str:
        return "Return()"


class Nop(Insn):
    """A no-operation, used to fill RISC delay slots."""

    __slots__ = ()

    def clone(self) -> "Nop":
        return Nop()

    def __repr__(self) -> str:
        return "Nop()"
