"""Pickle-safe work units for the parallel execution layer.

A :class:`CellSpec` names one cell of the evaluation matrix — one
(program × target × configuration) point of the paper's Tables 4–6 —
plus the knobs that change what a run produces (tracing, the JUMPS
policy, the §6 RTL bound, or skipping optimization entirely for the
differential-testing reference).  A :class:`CellResult` is the envelope
a worker process ships back: the measurement, replication statistics,
per-pass instrumentation and timings on success, or a captured traceback
on failure.  Both sides are plain data so they cross process boundaries
and live in the on-disk result cache unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..ease.measure import Measurement

__all__ = ["CellSpec", "CellResult", "CACHE_SCHEMA_VERSION"]

#: Bump whenever the envelope layout or the meaning of a measurement
#: changes; old cache entries become unreachable (different keys).
#: v2: CellSpec grew ``observe``; CellResult grew ``obs`` (the
#: observability snapshot: spans, metrics, replication decision log).
#: v3: CellSpec grew ``spm_engine`` (the step-1 shortest-path engine).
#: v4: traced measurements carry an RLE ``CompressedTrace`` instead of
#: the raw ``List[int]`` (the streaming dynamic-measurement pipeline);
#: old raw-list envelopes must not shadow compressed ones, and the
#: Table-6 engines (reference / multi) consume the new records.
#: v5: CellSpec grew ``verify`` and CellResult grew ``verification``
#: (the translation-validation subsystem); verified runs bypass the
#: cache entirely, but old envelopes lacking the new fields must not
#: resurface.
#: v6: CellSpec grew ``ease_engine`` (the measurement execution engine)
#: and measurements carry an ``ease_engine`` provenance field; the
#: engines are parity-gated but differ in timing, so pre-engine
#: envelopes must not shadow engine-tagged ones.
#: v7: CellSpec grew ``tuned`` (per-function replication overrides from
#: the autotuner) and the replication engine gained the §5.2 convergence
#: guard, which can change replication results on cascading shapes;
#: guard-less envelopes must not shadow guarded ones.
CACHE_SCHEMA_VERSION = 7


@dataclass(frozen=True)
class CellSpec:
    """One cell of the (program × target × configuration) matrix."""

    #: A Table-3 benchmark name (e.g. ``"wc"``) or mini-C source text.
    program: str
    target: str = "sparc"
    replication: str = "none"
    policy: str = "shortest"
    max_rtls: Optional[int] = None
    #: Record the block trace (needed by the Table-6 cache simulations).
    trace: bool = False
    #: ``False`` runs the raw front-end output — the differential-test
    #: semantic reference.
    optimize: bool = True
    #: Standard input override; ``None`` uses the benchmark's workload.
    stdin: Optional[bytes] = None
    #: Debug: validate CFG invariants after every optimizer pass.  Does
    #: not change the result, so it is excluded from the cache key.
    validate_cfg: bool = False
    #: Collect tracer spans while executing the cell (metrics and the
    #: replication decision log are always collected).  Observability
    #: does not change the result, so this too is excluded from the
    #: cache key — a cached cell may carry a sparser snapshot than a
    #: fresh observed run would produce.
    observe: bool = False
    #: Step-1 shortest-path engine ("lazy" / "dense"; ``None`` = default).
    #: Decision parity makes the *result* engine-independent, but the
    #: engines differ in timing/metrics, so the engine is part of the
    #: cache key — a dense differential run never shadows a lazy one.
    spm_engine: Optional[str] = None
    #: Measurement execution engine ("compiled" / "interp"; ``None`` =
    #: default, i.e. ``REPRO_EASE_ENGINE`` or compiled).  Engine parity
    #: makes the *counts* engine-independent, but the engines differ in
    #: wall time (``measure_seconds``), so the engine is part of the
    #: cache key — an interpreter differential run never shadows a
    #: compiled one.
    ease_engine: Optional[str] = None
    #: Translation-validation mode ("off" / "sanitize" / "full");
    #: ``None`` defers to ``REPRO_VERIFY``.  A cell whose effective mode
    #: is not "off" bypasses the result cache in both directions: a
    #: verified run must actually *run* (a cache hit would validate
    #: nothing), and its timings are poisoned by oracle overhead, so it
    #: must not shadow a clean run either.
    verify: Optional[str] = None
    #: Per-function replication overrides from the autotuner: sorted
    #: ``(function, policy, max_rtls, order)`` tuples (hashable, so the
    #: spec stays frozen/picklable).  ``None`` — the common case — means
    #: the global policy/max_rtls above apply to every function; a tuned
    #: candidate identical to the global setting must be normalized to
    #: ``None`` by the caller so it shares the baseline's cache entry.
    tuned: Optional[Tuple[Tuple[str, str, Optional[int], str], ...]] = None

    def resolve(self) -> Tuple[str, bytes]:
        """The (source text, stdin bytes) this cell actually runs."""
        from ..benchsuite.programs import PROGRAMS

        if self.program in PROGRAMS:
            bench = PROGRAMS[self.program]
            stdin = bench.stdin if self.stdin is None else self.stdin
            return bench.source, stdin
        return self.program, self.stdin if self.stdin is not None else b""

    @property
    def label(self) -> str:
        """Short human-readable cell id for progress and error reports."""
        name = self.program if "\n" not in self.program else "<source>"
        config = self.replication if self.optimize else "reference"
        suffix = "+trace" if self.trace else ""
        return f"{name}/{self.target}/{config}{suffix}"

    def with_trace(self, trace: bool = True) -> "CellSpec":
        return replace(self, trace=trace)


@dataclass
class CellResult:
    """What one executed cell produced (or how it failed)."""

    spec: CellSpec
    measurement: Optional[Measurement] = None
    #: ``ReplicationStats`` flattened to a plain dict (stable to pickle).
    replication_stats: Optional[dict] = None
    #: Per-pass instrumentation records as plain dicts
    #: (see :class:`repro.opt.instrument.PassRecord`).
    passes: List[dict] = field(default_factory=list)
    #: Observability snapshot (``repro.obs.Observer.snapshot()``): spans
    #: (when the spec asked for them), metrics, replication decisions.
    obs: Optional[dict] = None
    compile_seconds: float = 0.0
    optimize_seconds: float = 0.0
    measure_seconds: float = 0.0
    #: Translation-validation report (``None`` when verification was off).
    verification: Optional[dict] = None
    #: Captured traceback text when the cell crashed; ``None`` on success.
    error: Optional[str] = None
    #: Filled in by the runner: whether this came from the result cache.
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.optimize_seconds + self.measure_seconds

    def summary(self) -> str:
        if not self.ok:
            first = (self.error or "").strip().splitlines()
            return f"{self.spec.label}: FAILED ({first[-1] if first else 'unknown'})"
        m = self.measurement
        return (
            f"{self.spec.label}: static={m.static_insns} dynamic={m.dynamic_insns} "
            f"jumps={m.dynamic_jumps} ({self.total_seconds:.2f}s"
            f"{', cached' if self.cache_hit else ''})"
        )
