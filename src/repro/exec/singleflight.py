"""Cross-process single-flight for the on-disk result cache.

Two ``repro bench`` processes racing on the same cold cache key used to
*both* compute the cell — correct (last atomic write wins) but wasteful:
the matrix cells are seconds each, and concurrent CI shards or a daemon
plus a stray CLI invocation duplicate the whole cold set.  This module
adds the classic lock-file sentinel protocol around a cell computation:

* the first process to create ``<entry>.lock`` (``O_CREAT | O_EXCL``,
  atomic on every POSIX filesystem) owns the computation; it computes,
  publishes the envelope through the cache's atomic write, and removes
  the lock;
* every other process *waits*, polling for the published entry, instead
  of recomputing;
* a lock whose mtime exceeds the **staleness timeout** is presumed
  abandoned (owner crashed or was SIGKILLed between create and unlink)
  and is broken: the waiter deletes it and computes itself.  The
  envelope write stays atomic, so the worst case of a mis-judged "stale"
  lock is the duplicated work we had before, never a torn entry.

The protocol is advisory and crash-tolerant by construction — nothing
ever blocks on a kernel lock, and correctness never depends on the lock
(only deduplication does).

Metrics: ``exec.singleflight.{acquired,waited,stale_broken,recomputed}``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Optional, Tuple

from .cache import ResultCache
from .envelope import CellResult, CellSpec

__all__ = ["SingleFlight", "single_flight"]

#: A lock older than this is presumed abandoned and may be broken.
DEFAULT_STALE_AFTER = 300.0
#: How long a waiter polls before giving up and computing anyway.
DEFAULT_WAIT_TIMEOUT = 900.0
#: Poll interval while waiting on another process's computation.
DEFAULT_POLL = 0.05


def _observer():
    from ..obs import active

    return active()


class SingleFlight:
    """Lock-file dedup of cell computations against one :class:`ResultCache`."""

    def __init__(
        self,
        cache: ResultCache,
        stale_after: float = DEFAULT_STALE_AFTER,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
        poll: float = DEFAULT_POLL,
    ) -> None:
        self.cache = cache
        self.stale_after = stale_after
        self.wait_timeout = wait_timeout
        self.poll = poll

    # --- lock primitives ------------------------------------------------------

    def _lock_path(self, key: str) -> Path:
        return self.cache._path(key).with_suffix(".lock")

    def try_acquire(self, key: str) -> bool:
        """Claim the computation for ``key``; ``False`` if someone owns it.

        A stale lock (mtime older than ``stale_after``) is broken first;
        breaking and re-creating is not atomic, so after a break the
        claim is retried once — losing that race just means waiting.
        """
        path = self._lock_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in (0, 1):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt == 0 and self._is_stale(path):
                    self._break_stale(path)
                    continue
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()} {time.time():.3f}\n")
            obs = _observer()
            if obs is not None:
                obs.metrics.inc("exec.singleflight.acquired")
            return True
        return False

    def release(self, key: str) -> None:
        """Drop the lock (idempotent; missing lock is fine)."""
        try:
            self._lock_path(key).unlink()
        except OSError:
            pass

    def holder_active(self, key: str) -> bool:
        """True while a fresh (non-stale) lock exists for ``key``."""
        path = self._lock_path(key)
        return path.exists() and not self._is_stale(path)

    def _is_stale(self, path: Path) -> bool:
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False  # gone already — not ours to break
        return age > self.stale_after

    def _break_stale(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        obs = _observer()
        if obs is not None:
            obs.metrics.inc("exec.singleflight.stale_broken")

    # --- waiting --------------------------------------------------------------

    def wait_for(self, key: str, timeout: Optional[float] = None) -> Optional[CellResult]:
        """Wait for another process to publish ``key``; ``None`` = compute.

        Returns the published envelope as soon as it appears.  Returns
        ``None`` when the owner's lock goes stale or vanishes without a
        published entry, or when ``timeout`` elapses — the caller should
        then compute the cell itself (counted as ``recomputed``).
        """
        deadline = time.monotonic() + (
            self.wait_timeout if timeout is None else timeout
        )
        obs = _observer()
        if obs is not None:
            obs.metrics.inc("exec.singleflight.waited")
        entry_path = self.cache._path(key)
        result = self.cache.get(key)  # the whole wait counts as one miss
        if result is not None:
            return result
        while True:
            # Probe the entry file cheaply; deserialize (and touch the
            # hit/miss counters) only once it appears, so a long wait
            # doesn't inflate the cache's miss stats once per poll.
            if entry_path.exists():
                result = self.cache.get(key)
                if result is not None:
                    return result
            path = self._lock_path(key)
            if not path.exists():
                # Owner finished (or crashed) without a usable entry.
                recheck = self.cache.get(key)
                if recheck is None and obs is not None:
                    obs.metrics.inc("exec.singleflight.recomputed")
                return recheck
            if self._is_stale(path):
                self._break_stale(path)
                if obs is not None:
                    obs.metrics.inc("exec.singleflight.recomputed")
                return None
            if time.monotonic() >= deadline:
                if obs is not None:
                    obs.metrics.inc("exec.singleflight.recomputed")
                return None
            time.sleep(self.poll)


def single_flight(
    cache: Optional[ResultCache],
    spec: CellSpec,
    compute: Callable[[CellSpec], CellResult],
    flight: Optional[SingleFlight] = None,
) -> Tuple[CellResult, bool]:
    """Compute ``spec`` through the single-flight protocol.

    Returns ``(result, fresh)`` — ``fresh`` is ``False`` when the
    envelope was published by a concurrent process we waited on.  With
    no cache there is nothing to coordinate on; just compute.  Failed
    computations are returned but never published, and the lock is
    always released.
    """
    if cache is None:
        return compute(spec), True
    sf = flight if flight is not None else SingleFlight(cache)
    key = cache.key(spec)
    owned = sf.try_acquire(key)
    if owned:
        # Double-check under the lock: the previous owner may have
        # published and released between our cache miss and our claim.
        published = cache.get(key)
        if published is not None and published.ok:
            sf.release(key)
            published.cache_hit = True
            return published, False
    else:
        waited = sf.wait_for(key)
        if waited is not None and waited.ok:
            waited.cache_hit = True
            return waited, False
        # Owner died or published garbage: fall through and compute,
        # claiming the lock if possible (losing this race is harmless —
        # but never release a lock some third process now owns).
        owned = sf.try_acquire(key)
    try:
        result = compute(spec)
        if result.ok:
            cache.put(key, result)
        return result, True
    finally:
        if owned:
            sf.release(key)
