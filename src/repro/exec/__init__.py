"""Parallel, persistently-cached execution of the evaluation matrix.

The paper's evaluation is a cross-product — 14 programs × 2 targets ×
3 configurations — and everything downstream (Tables 4–6, differential
tests, ablations) re-measures cells of that matrix.  This package makes
the matrix the unit of work:

* :class:`CellSpec` / :class:`CellResult` — pickle-safe work units;
* :class:`ResultCache` — content-addressed on-disk result cache;
* :class:`ParallelRunner` — process-pool fan-out with graceful per-cell
  failure capture.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .envelope import CACHE_SCHEMA_VERSION, CellResult, CellSpec
from .runner import ParallelRunner, default_worker_count, execute_cell, warm_worker
from .singleflight import SingleFlight, single_flight

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "CellResult",
    "CellSpec",
    "ParallelRunner",
    "ResultCache",
    "SingleFlight",
    "default_worker_count",
    "execute_cell",
    "single_flight",
    "warm_worker",
]
