"""Content-addressed on-disk cache for measured matrix cells.

Layout (under the cache root, default ``.repro-cache/``)::

    .repro-cache/
        v1/                   # CACHE_SCHEMA_VERSION namespace
            3f/               # first two hex digits of the key
                3fa4...e2.pkl # pickled CellResult

A key is the SHA-256 over a canonical rendering of everything that
determines a cell's outcome: the *resolved* program source and stdin
bytes (so a benchmark rename or source edit changes the key), the target
name, the full optimization configuration, the trace flag, and the cache
schema version.  Editing any of those makes old entries unreachable —
there is no invalidation protocol to get wrong.

Robustness properties, each covered by unit tests:

* **corrupted entries** (truncated/garbage pickle) are evicted on read
  and treated as a miss;
* **concurrent writers** are safe: entries are written to a unique
  temporary file and published with an atomic ``os.replace``, so readers
  only ever see complete entries;
* hit/miss/eviction/write counters are kept per instance for reporting.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from .envelope import CACHE_SCHEMA_VERSION, CellResult, CellSpec

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Persistent (process-shared) cache of :class:`CellResult` envelopes."""

    def __init__(
        self,
        root: os.PathLike = DEFAULT_CACHE_DIR,
        schema_version: int = CACHE_SCHEMA_VERSION,
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0

    # --- keying ---------------------------------------------------------------

    def key(self, spec: CellSpec) -> str:
        """Content hash of everything that determines the cell's result."""
        from ..ease.compile import resolve_ease_engine

        source, stdin = spec.resolve()
        # Key on the *resolved* engine: a spec left at the default must
        # not serve an envelope produced under a different
        # REPRO_EASE_ENGINE (the counts agree, the timings do not).
        try:
            ease_engine = resolve_ease_engine(spec.ease_engine)
        except ValueError:
            ease_engine = f"<invalid:{spec.ease_engine}>"
        hasher = hashlib.sha256()
        for part in (
            f"schema={self.schema_version}",
            f"target={spec.target}",
            f"replication={spec.replication if spec.optimize else '<reference>'}",
            f"policy={spec.policy}",
            f"max_rtls={spec.max_rtls}",
            # Per-function autotuner overrides: already a sorted tuple of
            # (function, policy, max_rtls, order) rows, so the repr is
            # canonical; ``None`` (the untuned common case) keys the same
            # as before the field existed within this schema version.
            f"tuned={spec.tuned}",
            f"trace={spec.trace}",
            f"optimize={spec.optimize}",
            f"spm_engine={spec.spm_engine}",
            f"ease_engine={ease_engine}",
            f"source={source}",
        ):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x00")
        hasher.update(stdin)
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"v{self.schema_version}" / key[:2] / f"{key}.pkl"

    # --- read/write -----------------------------------------------------------

    def get(self, key: str) -> Optional[CellResult]:
        """The cached envelope for ``key``, or ``None`` (counted as a miss).

        A corrupted entry is deleted (counted as an eviction) and reported
        as a miss, so the caller recomputes and heals the cache.
        """
        from ..obs import active as _active_observer

        obs = _active_observer()
        path = self._path(key)
        try:
            blob = path.read_bytes()
            result = pickle.loads(blob)
            if not isinstance(result, CellResult):
                raise pickle.UnpicklingError(f"expected CellResult, got {type(result)}")
        except FileNotFoundError:
            self.misses += 1
            if obs is not None:
                obs.metrics.inc("exec.cache.misses")
            return None
        except Exception:
            # Truncated write, foreign object, unpicklable garbage: evict.
            self.evictions += 1
            self.misses += 1
            if obs is not None:
                obs.metrics.inc("exec.cache.evictions")
                obs.metrics.inc("exec.cache.misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        if obs is not None:
            obs.metrics.inc("exec.cache.hits")
        return result

    def put(self, key: str, result: CellResult) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        from ..obs import active as _active_observer

        obs = _active_observer()
        if obs is not None:
            obs.metrics.inc("exec.cache.writes")

    def get_spec(self, spec: CellSpec) -> Optional[CellResult]:
        return self.get(self.key(spec))

    def put_spec(self, spec: CellSpec, result: CellResult) -> None:
        self.put(self.key(spec), result)

    # --- maintenance ----------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        version_dir = self.root / f"v{self.schema_version}"
        if not version_dir.is_dir():
            return
        yield from sorted(version_dir.glob("*/*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry of this schema version; return the count."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "schema_version": self.schema_version,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writes": self.writes,
        }

    # --- garbage collection ---------------------------------------------------

    def _all_entries(self) -> Iterator[Path]:
        """Every entry across *all* schema versions (gc sweeps old ones too)."""
        if not self.root.is_dir():
            return
        for version_dir in sorted(self.root.glob("v*")):
            if version_dir.is_dir():
                yield from sorted(version_dir.glob("*/*.pkl"))

    def disk_stats(self) -> dict:
        """On-disk census: entries, bytes and age range, per schema version.

        Unstatable files (racing gc, permissions) are skipped, never
        fatal — the cache directory is shared with concurrent writers.
        """
        per_version: dict = {}
        total_bytes = 0
        total_entries = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for path in self._all_entries():
            try:
                info = path.stat()
            except OSError:
                continue
            version = path.parent.parent.name
            bucket = per_version.setdefault(version, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += info.st_size
            total_entries += 1
            total_bytes += info.st_size
            oldest = info.st_mtime if oldest is None else min(oldest, info.st_mtime)
            newest = info.st_mtime if newest is None else max(newest, info.st_mtime)
        return {
            "root": str(self.root),
            "schema_version": self.schema_version,
            "entries": total_entries,
            "bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "versions": per_version,
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> dict:
        """LRU-by-mtime eviction over the whole cache directory.

        Two independent policies, either or both:

        * ``max_age`` (seconds): every entry older than this goes;
        * ``max_bytes``: after the age sweep, the oldest surviving
          entries go until the total fits the budget.

        mtime is the recency signal (entries are write-once; a re-write
        of the same key refreshes it), so eviction order is
        oldest-first.  Stale ``.tmp`` droppings from crashed writers and
        unreadable/undeletable entries are tolerated: failures are
        counted, never raised.  Returns a report dict.
        """
        clock = time.time() if now is None else now
        entries = []
        for path in self._all_entries():
            try:
                info = path.stat()
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
        entries.sort()  # oldest first

        removed = []
        failed = 0
        survivors_bytes = sum(size for _, size, _ in entries)

        def _evict(mtime: float, size: int, path: Path, reason: str) -> int:
            nonlocal failed
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    failed += 1
                    return 0
            removed.append({"path": str(path), "bytes": size, "reason": reason})
            return size

        survivors = []
        for mtime, size, path in entries:
            if max_age is not None and clock - mtime > max_age:
                survivors_bytes -= _evict(mtime, size, path, "age")
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            for mtime, size, path in survivors:
                if survivors_bytes <= max_bytes:
                    break
                survivors_bytes -= _evict(mtime, size, path, "bytes")

        # Orphaned temporary files: a writer that died between mkstemp
        # and os.replace leaves a .tmp behind; anything older than an
        # hour cannot still be in flight.
        tmp_removed = 0
        if self.root.is_dir():
            for tmp in self.root.glob("v*/*/.*.tmp"):
                try:
                    if clock - tmp.stat().st_mtime > 3600:
                        if not dry_run:
                            tmp.unlink()
                        tmp_removed += 1
                except OSError:
                    failed += 1
        freed = sum(item["bytes"] for item in removed)
        if removed and not dry_run:
            self.evictions += len(removed)
        return {
            "examined": len(entries),
            "removed": len(removed),
            "freed_bytes": freed,
            "remaining_entries": len(entries) - len(removed),
            "remaining_bytes": survivors_bytes,
            "tmp_removed": tmp_removed,
            "unlink_failures": failed,
            "dry_run": dry_run,
            "entries": removed,
        }
