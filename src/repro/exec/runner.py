"""Parallel, cached execution of the evaluation matrix.

:func:`execute_cell` is the single-cell pipeline — compile, optimize
(instrumented), interpret, measure — with every exception captured into
the result envelope instead of propagating.  :class:`ParallelRunner`
fans a list of :class:`CellSpec` out over a ``ProcessPoolExecutor``,
short-circuiting cells already present in the on-disk
:class:`~repro.exec.cache.ResultCache` and writing fresh results back.

A crashing cell reports (``result.error`` carries the traceback); it
never kills the run.  ``workers <= 1`` executes inline in the calling
process — the same code path, minus the pool — which is what the test
suite uses and what keeps single-core machines overhead-free.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from .cache import ResultCache
from .envelope import CellResult, CellSpec

__all__ = [
    "ParallelRunner",
    "execute_cell",
    "default_worker_count",
    "warm_worker",
]


def default_worker_count() -> int:
    """Worker count when none is requested: one per available core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def warm_worker(target_names: Sequence[str] = ("sparc", "m68020")) -> None:
    """Process-pool initializer: pre-construct per-worker shared state.

    Runs once per worker process, not once per cell: machine
    descriptions are built here and memoized (every later
    ``get_target`` in this worker is a ``targets.machine.reused`` hit),
    and the import of the full toolchain — front end, optimizer, EASE
    engines — is paid before the first job instead of inside it.
    """
    from ..ease.measure import measure_program  # noqa: F401 (import warm-up)
    from ..frontend.codegen import compile_c  # noqa: F401
    from ..opt.driver import optimize_program  # noqa: F401
    from ..targets.machine import get_target

    for name in target_names:
        get_target(name)


def _effective_verify_mode(spec: CellSpec) -> str:
    """The cell's resolved translation-validation mode.

    An unparseable ``REPRO_VERIFY`` counts as active ("bypass the
    cache"): the configuration error must surface from an actual run,
    not be papered over by a stale cache hit.
    """
    from ..verify.verifier import resolve_mode

    try:
        return resolve_mode(spec.verify)
    except ValueError:
        return "invalid"


def execute_cell(spec: CellSpec) -> CellResult:
    """Run one matrix cell; never raises — failures land in the envelope.

    Every cell runs under its own :class:`repro.obs.Observer` (spans only
    when ``spec.observe`` asks for them, or when the calling process is
    itself tracing; metrics and the replication decision log always).
    The snapshot ships back in ``result.obs`` so the parent process can
    fold worker observations into its ambient observer.
    """
    from ..obs import Observer, active, deactivate, install

    result = CellResult(spec=spec)
    verifier = None
    previous = active()
    observer = Observer(
        spans=spec.observe or (previous is not None and previous.tracer.enabled)
    )
    install(observer)
    try:
        from dataclasses import asdict

        from ..ease.measure import measure_program
        from ..frontend.codegen import compile_c
        from ..opt.driver import OptimizationConfig, optimize_program
        from ..opt.instrument import PassInstrumentation
        from ..targets.machine import get_target

        with observer.span("exec.cell", label=spec.label):
            source, stdin = spec.resolve()
            target = get_target(spec.target)

            start = perf_counter()
            program = compile_c(source)
            result.compile_seconds = perf_counter() - start

            if spec.optimize:
                from ..api import POLICIES
                from ..opt.driver import FunctionTuning

                overrides = {}
                if spec.tuned:
                    for function, policy_name, max_rtls, order in spec.tuned:
                        overrides[function] = FunctionTuning(
                            policy=POLICIES[policy_name],
                            max_rtls=max_rtls,
                            order=order,
                        )
                config = OptimizationConfig(
                    replication=spec.replication,
                    policy=POLICIES[spec.policy],
                    max_rtls=spec.max_rtls,
                    validate_cfg=spec.validate_cfg,
                    spm_engine=spec.spm_engine,
                    overrides=overrides,
                )
                from ..verify.verifier import Verifier, resolve_mode

                verify_mode = resolve_mode(spec.verify)
                if verify_mode != "off":
                    verifier = Verifier(verify_mode, inputs=[stdin])
                instrumentation = PassInstrumentation()
                start = perf_counter()
                stats = optimize_program(
                    program, target, config, instrumentation, verifier=verifier
                )
                result.optimize_seconds = perf_counter() - start
                result.replication_stats = stats.as_dict()
                result.passes = [asdict(rec) for rec in instrumentation.records]

            start = perf_counter()
            result.measurement = measure_program(
                program,
                target,
                stdin=stdin,
                trace=spec.trace,
                engine=spec.ease_engine,
            )
            result.measure_seconds = perf_counter() - start
    except BaseException:
        result.error = traceback.format_exc()
        result.measurement = None
    finally:
        if previous is not None:
            install(previous)
        else:
            deactivate()
        result.obs = observer.snapshot()
        if verifier is not None:
            # Attach the report even when verification *failed* — the
            # error envelope then carries the bisection verdict too.
            result.verification = verifier.report()
    return result


class ParallelRunner:
    """Fan the matrix out over worker processes, through the result cache."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.workers = default_worker_count() if workers is None else max(1, workers)
        self.cache = cache

    def run(
        self,
        specs: Sequence[CellSpec],
        on_result: Optional[Callable[[CellResult], None]] = None,
    ) -> List[CellResult]:
        """Execute every spec; results come back in input order.

        ``on_result`` (if given) is called once per finished cell, in
        completion order — useful for progress reporting.
        """
        from dataclasses import replace

        from ..obs import active as _active_observer

        # When this process is tracing, ask the cells for spans too —
        # worker processes have no ambient observer, so the intent must
        # travel inside the spec (it is excluded from the cache key).
        ambient = _active_observer()
        if ambient is not None and ambient.tracer.enabled:
            specs = [
                spec if spec.observe else replace(spec, observe=True)
                for spec in specs
            ]

        results: List[Optional[CellResult]] = [None] * len(specs)
        pending: List[int] = []

        # Pass 1: serve what the cache already has.  Cells running under
        # translation validation never read the cache — a hit would skip
        # the verified pipeline run, which is the entire point.
        for index, spec in enumerate(specs):
            if self.cache is not None and _effective_verify_mode(spec) == "off":
                cached = self.cache.get_spec(spec)
                if cached is not None and cached.ok:
                    cached.cache_hit = True
                    results[index] = cached
                    if on_result is not None:
                        on_result(cached)
                    continue
            pending.append(index)

        # Pass 1.5: cross-process single-flight.  A cold key another
        # process is already computing (lock-file sentinel next to the
        # cache entry) is *parked* — we wait for that process's
        # published envelope instead of duplicating seconds of work.
        # Verified cells never participate: they must actually run.
        from .singleflight import SingleFlight

        flight = SingleFlight(self.cache) if self.cache is not None else None
        owned_locks: Dict[int, str] = {}
        parked: List[tuple] = []
        compute_now: List[int] = []
        for index in pending:
            spec = specs[index]
            if flight is None or _effective_verify_mode(spec) != "off":
                compute_now.append(index)
                continue
            key = self.cache.key(spec)
            if flight.try_acquire(key):
                owned_locks[index] = key
                compute_now.append(index)
            else:
                parked.append((index, key))

        # Pass 2: compute the misses (in a pool, or inline for workers<=1).
        def finish(index: int, result: CellResult) -> None:
            # Verified runs also never *write* the cache: their timings
            # carry oracle overhead and would poison clean-run entries.
            try:
                if (
                    self.cache is not None
                    and result.ok
                    and _effective_verify_mode(specs[index]) == "off"
                ):
                    self.cache.put_spec(specs[index], result)
            finally:
                # Publish-then-release: a waiter that sees the lock gone
                # re-checks the cache, so the entry must land first.
                lock_key = owned_locks.pop(index, None)
                if lock_key is not None and flight is not None:
                    flight.release(lock_key)
            results[index] = result
            # Fold the cell's observability snapshot into this process's
            # ambient observer.  execute_cell always records into its own
            # per-cell observer (even inline), so this is the single merge
            # point for both pool and inline execution.  Only fresh
            # results: a cache hit's snapshot describes work an *earlier*
            # run performed.
            observer = _active_observer()
            if observer is not None and result.obs is not None:
                observer.merge_snapshot(result.obs)
            if on_result is not None:
                on_result(result)

        try:
            if self.workers <= 1 or len(compute_now) <= 1:
                for index in compute_now:
                    finish(index, execute_cell(specs[index]))
            else:
                targets = tuple(sorted({specs[i].target for i in compute_now}))
                with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=warm_worker,
                    initargs=(targets,),
                ) as pool:
                    futures = {
                        pool.submit(execute_cell, specs[index]): index
                        for index in compute_now
                    }
                    remaining = set(futures)
                    while remaining:
                        done, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            index = futures[future]
                            try:
                                result = future.result()
                            except BaseException:
                                # A worker died mid-cell (OOM kill,
                                # interpreter crash): report the cell,
                                # keep the run alive.
                                result = CellResult(
                                    spec=specs[index],
                                    error=traceback.format_exc(),
                                )
                            finish(index, result)

            # Pass 3: collect the parked cells.  Normally the concurrent
            # owner publishes and we adopt its envelope as a cache hit;
            # if it died or timed out, compute locally after all.
            for index, key in parked:
                waited = flight.wait_for(key) if flight is not None else None
                if waited is not None and waited.ok:
                    waited.cache_hit = True
                    results[index] = waited
                    if on_result is not None:
                        on_result(waited)
                    continue
                if flight is not None and flight.try_acquire(key):
                    owned_locks[index] = key
                finish(index, execute_cell(specs[index]))
        finally:
            # A crash above must not leave lock files pinning other
            # processes into their staleness timeout.
            if flight is not None:
                for lock_key in owned_locks.values():
                    flight.release(lock_key)
            owned_locks.clear()

        return [result for result in results if result is not None]

    def run_indexed(
        self,
        specs: Sequence[CellSpec],
        on_result: Optional[Callable[[CellResult], None]] = None,
    ) -> Dict[CellSpec, CellResult]:
        """Like :meth:`run`, keyed by spec for random-access consumers."""
        return {res.spec: res for res in self.run(specs, on_result)}
